//! Cost estimation for expiration-time query plans (paper Section 3.1:
//! "In a DBMS, the cost estimation mechanisms can be made use of to
//! estimate the impact of a rewrite-rule application").
//!
//! Two quantities matter for plan choice in this setting:
//!
//! * **work** — the classic cardinality-based evaluation cost; and
//! * **fragility** — an estimate of how often the materialised plan will
//!   need recomputation: differences contribute their estimated critical
//!   sets (`{t | t ∈ R ∧ t ∈ S ∧ texp_R(t) > texp_S(t)}`, the set the
//!   paper says "causes recomputations to happen"), and aggregations
//!   contribute their input sizes (each expiry may change a value).
//!
//! [`Stats`] summarises a catalog (live cardinalities and per-attribute
//! distinct counts); [`estimate`] folds an expression over it;
//! [`choose`] picks the best of several equivalent plans, fragility
//! first. The estimator uses the textbook independence/containment
//! heuristics — it is deliberately simple, deterministic, and fast.

use crate::algebra::Expr;
use crate::catalog::Catalog;
use crate::predicate::{CmpOp, Operand, Predicate};
use crate::time::Time;
use std::collections::{HashMap, HashSet};

/// Default selectivity of a non-equality comparison.
const RANGE_SELECTIVITY: f64 = 1.0 / 3.0;
/// Assumed fraction of shared tuples whose `texp_R > texp_S` (critical).
const CRITICAL_FRACTION: f64 = 0.5;

/// Per-relation statistics: live cardinality and per-attribute number of
/// distinct values (NDV).
#[derive(Debug, Clone)]
pub struct TableStats {
    /// Live rows at the statistics snapshot time.
    pub rows: f64,
    /// Distinct values per attribute position.
    pub ndv: Vec<f64>,
}

/// Catalog-level statistics snapshot.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    tables: HashMap<String, TableStats>,
}

impl Stats {
    /// Collects statistics from a catalog at time `τ` (one scan per
    /// relation).
    #[must_use]
    pub fn collect(catalog: &Catalog, tau: Time) -> Stats {
        let mut tables = HashMap::new();
        for (name, rel) in catalog.iter() {
            let mut distinct: Vec<HashSet<&crate::value::Value>> =
                (0..rel.arity()).map(|_| HashSet::new()).collect();
            let mut rows = 0usize;
            for (t, _) in rel.iter_at(tau) {
                rows += 1;
                for (i, set) in distinct.iter_mut().enumerate() {
                    set.insert(t.attr(i));
                }
            }
            tables.insert(
                name.to_ascii_lowercase(),
                TableStats {
                    rows: rows as f64,
                    ndv: distinct.iter().map(|s| s.len().max(1) as f64).collect(),
                },
            );
        }
        Stats { tables }
    }

    fn table(&self, name: &str) -> Option<&TableStats> {
        self.tables.get(&name.to_ascii_lowercase())
    }
}

/// The estimated cost of a plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanCost {
    /// Estimated output cardinality.
    pub out_rows: f64,
    /// Estimated total rows produced across all operators (work proxy).
    pub work: f64,
    /// Estimated recomputation pressure: Σ critical-set estimates over
    /// differences + Σ input sizes over aggregations. Zero for monotonic
    /// plans (Theorem 1: they never recompute).
    pub fragility: f64,
}

/// A node-level estimate: output rows plus per-attribute NDVs, threaded
/// bottom-up.
struct NodeEst {
    rows: f64,
    ndv: Vec<f64>,
}

fn predicate_selectivity(p: &Predicate, ndv: &[f64]) -> f64 {
    match p {
        Predicate::True => 1.0,
        Predicate::False => 0.0,
        Predicate::Cmp { left, op, right } => {
            let distinct = |o: &Operand| match o {
                Operand::Attr(i) => ndv.get(*i).copied().unwrap_or(1.0),
                Operand::Const(_) => 1.0,
            };
            match op {
                CmpOp::Eq => 1.0 / distinct(left).max(distinct(right)),
                CmpOp::Ne => 1.0 - 1.0 / distinct(left).max(distinct(right)),
                _ => RANGE_SELECTIVITY,
            }
        }
        Predicate::And(a, b) => predicate_selectivity(a, ndv) * predicate_selectivity(b, ndv),
        Predicate::Or(a, b) => {
            let (sa, sb) = (predicate_selectivity(a, ndv), predicate_selectivity(b, ndv));
            (sa + sb - sa * sb).min(1.0)
        }
        Predicate::Not(a) => 1.0 - predicate_selectivity(a, ndv),
    }
}

fn scale_ndv(ndv: &[f64], factor: f64) -> Vec<f64> {
    // Distinct counts shrink sublinearly with cardinality; the common
    // min(ndv, rows') approximation.
    ndv.iter().map(|d| (d * factor.sqrt()).max(1.0)).collect()
}

fn estimate_rec(expr: &Expr, stats: &Stats, acc: &mut PlanCost) -> NodeEst {
    let node = match expr {
        Expr::Base(name) => match stats.table(name) {
            Some(t) => NodeEst {
                rows: t.rows,
                ndv: t.ndv.clone(),
            },
            None => NodeEst {
                rows: 1.0,
                ndv: vec![1.0],
            },
        },
        Expr::Select { input, predicate } => {
            let i = estimate_rec(input, stats, acc);
            let sel = predicate_selectivity(predicate, &i.ndv);
            NodeEst {
                rows: i.rows * sel,
                ndv: scale_ndv(&i.ndv, sel),
            }
        }
        Expr::Project { input, positions } => {
            let i = estimate_rec(input, stats, acc);
            let ndv: Vec<f64> = positions
                .iter()
                .map(|&j| i.ndv.get(j).copied().unwrap_or(1.0))
                .collect();
            // Set semantics: output bounded by the product of kept NDVs.
            let distinct_bound: f64 = ndv.iter().product::<f64>().max(1.0);
            NodeEst {
                rows: i.rows.min(distinct_bound),
                ndv,
            }
        }
        Expr::Product { left, right } => {
            let l = estimate_rec(left, stats, acc);
            let r = estimate_rec(right, stats, acc);
            let mut ndv = l.ndv.clone();
            ndv.extend_from_slice(&r.ndv);
            NodeEst {
                rows: l.rows * r.rows,
                ndv,
            }
        }
        Expr::Join {
            left,
            right,
            predicate,
        } => {
            let l = estimate_rec(left, stats, acc);
            let r = estimate_rec(right, stats, acc);
            let mut ndv = l.ndv.clone();
            ndv.extend_from_slice(&r.ndv);
            let sel = predicate_selectivity(predicate, &ndv);
            let rows = l.rows * r.rows * sel;
            NodeEst {
                rows,
                ndv: scale_ndv(&ndv, sel),
            }
        }
        Expr::Union { left, right } => {
            let l = estimate_rec(left, stats, acc);
            let r = estimate_rec(right, stats, acc);
            let ndv = l
                .ndv
                .iter()
                .zip(r.ndv.iter())
                .map(|(a, b)| a.max(*b))
                .collect();
            NodeEst {
                rows: l.rows + r.rows,
                ndv,
            }
        }
        Expr::Intersect { left, right } => {
            let l = estimate_rec(left, stats, acc);
            let r = estimate_rec(right, stats, acc);
            let ndv = l
                .ndv
                .iter()
                .zip(r.ndv.iter())
                .map(|(a, b)| a.min(*b))
                .collect();
            NodeEst {
                rows: l.rows.min(r.rows) / 2.0,
                ndv,
            }
        }
        Expr::Difference { left, right } => {
            let l = estimate_rec(left, stats, acc);
            let r = estimate_rec(right, stats, acc);
            // Containment assumption: the overlap is about half the
            // smaller side; half of it is critical.
            let overlap = l.rows.min(r.rows) / 2.0;
            acc.fragility += overlap * CRITICAL_FRACTION;
            NodeEst {
                rows: (l.rows - overlap).max(0.0),
                ndv: l.ndv,
            }
        }
        Expr::Aggregate {
            input, group_by, ..
        } => {
            let i = estimate_rec(input, stats, acc);
            // Every input expiry can change a value.
            acc.fragility += i.rows;
            let group_ndv: f64 = group_by
                .iter()
                .map(|&j| i.ndv.get(j).copied().unwrap_or(1.0))
                .product::<f64>()
                .max(1.0);
            let mut ndv = i.ndv.clone();
            ndv.push(i.rows.min(group_ndv)); // the aggregate column
            NodeEst {
                // Klug-style output keeps every input tuple.
                rows: i.rows,
                ndv,
            }
        }
    };
    acc.work += node.rows;
    node
}

/// Estimates a plan against statistics.
#[must_use]
pub fn estimate(expr: &Expr, stats: &Stats) -> PlanCost {
    let mut acc = PlanCost {
        out_rows: 0.0,
        work: 0.0,
        fragility: 0.0,
    };
    let node = estimate_rec(expr, stats, &mut acc);
    acc.out_rows = node.rows;
    acc
}

/// Picks the cheapest of several semantically equivalent plans:
/// fragility first (recomputation is the dominant cost in loosely-coupled
/// deployments — paper Section 1), work as the tiebreaker.
///
/// # Panics
///
/// Panics on an empty candidate slice.
#[must_use]
pub fn choose<'a>(candidates: &'a [Expr], stats: &Stats) -> &'a Expr {
    assert!(!candidates.is_empty(), "choose needs at least one plan");
    candidates
        .iter()
        .min_by(|a, b| {
            let ca = estimate(a, stats);
            let cb = estimate(b, stats);
            ca.fragility
                .total_cmp(&cb.fragility)
                .then(ca.work.total_cmp(&cb.work))
        })
        .expect("non-empty")
}

/// Rewrites `expr` and keeps the rewritten plan only if the cost model
/// prefers it — Section 3.1's "estimate the impact of a rewrite-rule
/// application" made concrete. (The rewriter is semantics-preserving, so
/// this is purely a cost decision; with pushed-down selections the
/// rewritten plan is nearly always at most as fragile.)
#[must_use]
pub fn optimize(expr: &Expr, catalog: &Catalog, tau: Time) -> Expr {
    let stats = Stats::collect(catalog, tau);
    let rewritten = crate::rewrite::rewrite(expr);
    let candidates = [expr.clone(), rewritten];
    choose(&candidates, &stats).clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::eval;
    use crate::algebra::EvalOptions;
    use crate::relation::Relation;
    use crate::schema::Schema;
    use crate::tuple;
    use crate::value::ValueType;

    fn catalog(rows_r: usize, rows_s: usize) -> Catalog {
        let schema = Schema::of(&[("k", ValueType::Int), ("v", ValueType::Int)]);
        let mut c = Catalog::new();
        let mut r = Relation::new(schema.clone());
        for i in 0..rows_r {
            r.insert(tuple![i as i64, (i % 10) as i64], Time::new(100 + i as u64))
                .unwrap();
        }
        let mut s = Relation::new(schema);
        for i in 0..rows_s {
            s.insert(tuple![i as i64, (i % 10) as i64], Time::new(1 + i as u64))
                .unwrap();
        }
        c.register("r", r);
        c.register("s", s);
        c
    }

    #[test]
    fn stats_collection() {
        let c = catalog(100, 40);
        let stats = Stats::collect(&c, Time::ZERO);
        let r = stats.table("R").unwrap();
        assert_eq!(r.rows, 100.0);
        assert_eq!(r.ndv[0], 100.0, "k is unique");
        assert_eq!(r.ndv[1], 10.0, "v has 10 distinct values");
        assert!(stats.table("missing").is_none());
        // Stats respect τ: at time 20 some s rows have expired.
        let later = Stats::collect(&c, Time::new(20));
        assert!(later.table("s").unwrap().rows < 40.0);
    }

    #[test]
    fn selection_estimates_track_reality_in_order() {
        let c = catalog(1000, 10);
        let stats = Stats::collect(&c, Time::ZERO);
        let eq_unique = Expr::base("r").select(Predicate::attr_eq_const(0, 5));
        let eq_coarse = Expr::base("r").select(Predicate::attr_eq_const(1, 5));
        let range = Expr::base("r").select(Predicate::attr_cmp_const(0, CmpOp::Lt, 500));
        let all = Expr::base("r");
        let est = |e: &Expr| estimate(e, &stats).out_rows;
        // Ordering (not absolute accuracy) is what plan choice needs.
        assert!(est(&eq_unique) < est(&eq_coarse));
        assert!(est(&eq_coarse) < est(&range));
        assert!(est(&range) < est(&all));
        // Sanity on magnitudes.
        assert!((est(&eq_unique) - 1.0).abs() < 0.5);
        assert!((est(&eq_coarse) - 100.0).abs() < 1.0);
    }

    #[test]
    fn monotonic_plans_have_zero_fragility() {
        let c = catalog(100, 100);
        let stats = Stats::collect(&c, Time::ZERO);
        let plan = Expr::base("r")
            .join(Expr::base("s"), Predicate::attr_eq_attr(0, 2))
            .project([0, 1])
            .union(Expr::base("r"));
        assert!(plan.is_monotonic());
        assert_eq!(estimate(&plan, &stats).fragility, 0.0);
    }

    #[test]
    fn non_monotonic_plans_accumulate_fragility() {
        let c = catalog(100, 100);
        let stats = Stats::collect(&c, Time::ZERO);
        let diff = Expr::base("r").difference(Expr::base("s"));
        let agg = Expr::base("r").aggregate([1], crate::aggregate::AggFunc::Count);
        let both = diff.clone().union(agg.clone());
        let f = |e: &Expr| estimate(e, &stats).fragility;
        assert!(f(&diff) > 0.0);
        assert!(f(&agg) > 0.0);
        assert!((f(&both) - (f(&diff) + f(&agg))).abs() < 1e-9);
    }

    #[test]
    fn pushed_down_selection_is_less_fragile() {
        let c = catalog(1000, 1000);
        let stats = Stats::collect(&c, Time::ZERO);
        let original = Expr::base("r")
            .difference(Expr::base("s"))
            .select(Predicate::attr_eq_const(1, 3));
        let rewritten = crate::rewrite::rewrite(&original);
        let co = estimate(&original, &stats);
        let cr = estimate(&rewritten, &stats);
        assert!(
            cr.fragility < co.fragility,
            "pushed-down: {} < {}",
            cr.fragility,
            co.fragility
        );
        assert_eq!(choose(&[original, rewritten.clone()], &stats), &rewritten);
    }

    #[test]
    fn optimize_keeps_semantics_and_prefers_the_rewrite() {
        let c = catalog(200, 200);
        let original = Expr::base("r")
            .difference(Expr::base("s"))
            .select(Predicate::attr_eq_const(1, 3));
        let chosen = optimize(&original, &c, Time::ZERO);
        assert_ne!(chosen, original, "rewrite preferred");
        for tau in [0u64, 5, 50] {
            let a = eval(&original, &c, Time::new(tau), &EvalOptions::default()).unwrap();
            let b = eval(&chosen, &c, Time::new(tau), &EvalOptions::default()).unwrap();
            assert!(a.rel.set_eq(&b.rel), "at {tau}");
        }
    }

    #[test]
    fn optimize_is_identity_when_nothing_improves() {
        let c = catalog(50, 50);
        let plan = Expr::base("r").join(Expr::base("s"), Predicate::attr_eq_attr(0, 2));
        assert_eq!(optimize(&plan, &c, Time::ZERO), plan);
    }

    use crate::predicate::CmpOp;
}
