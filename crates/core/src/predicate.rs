//! Selection predicates.
//!
//! The paper's selection (Equation 1) allows predicates of the form `j = k`
//! (a *correlated* comparison of two attributes of one tuple) or `j = a`
//! (an *uncorrelated* comparison with a constant `a ∈ D`), closed under
//! `∧` and `∨`. For practical use the library also supports the other
//! comparison operators and negation; [`Predicate::is_paper_fragment`]
//! reports whether a predicate stays inside the paper's fragment.
//!
//! Predicates never look at expiration times — `texp` is not an attribute
//! (the paper typesets it outside the relation schema precisely because it
//! is not user-accessible in queries).

use crate::error::{Error, Result};
use crate::tuple::Tuple;
use crate::value::Value;
use std::cmp::Ordering;
use std::fmt;

/// A comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Applies the operator to an [`Ordering`].
    #[must_use]
    pub fn matches(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }

    /// The operator with its arguments swapped (`a op b ≡ b op.flip() a`).
    #[must_use]
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// One side of a comparison: a zero-based attribute position or a constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Attribute at zero-based position.
    Attr(usize),
    /// Constant from the domain `D`.
    Const(Value),
}

impl Operand {
    fn eval<'a>(&'a self, t: &'a Tuple) -> &'a Value {
        match self {
            Operand::Attr(i) => t.attr(*i),
            Operand::Const(v) => v,
        }
    }

    fn shifted(&self, by: usize) -> Operand {
        match self {
            Operand::Attr(i) => Operand::Attr(i + by),
            c => c.clone(),
        }
    }

    fn max_attr(&self) -> Option<usize> {
        match self {
            Operand::Attr(i) => Some(*i),
            Operand::Const(_) => None,
        }
    }
}

/// A selection predicate over a single tuple.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Predicate {
    /// Always true (the identity selection).
    True,
    /// Always false (selects nothing).
    False,
    /// `left op right`.
    Cmp {
        /// Left operand.
        left: Operand,
        /// Comparison operator.
        op: CmpOp,
        /// Right operand.
        right: Operand,
    },
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation (outside the paper's fragment).
    Not(Box<Predicate>),
}

impl Predicate {
    /// The paper's correlated predicate `j = k` (zero-based positions).
    #[must_use]
    pub fn attr_eq_attr(j: usize, k: usize) -> Predicate {
        Predicate::Cmp {
            left: Operand::Attr(j),
            op: CmpOp::Eq,
            right: Operand::Attr(k),
        }
    }

    /// The paper's uncorrelated predicate `j = a`.
    #[must_use]
    pub fn attr_eq_const(j: usize, a: impl Into<Value>) -> Predicate {
        Predicate::Cmp {
            left: Operand::Attr(j),
            op: CmpOp::Eq,
            right: Operand::Const(a.into()),
        }
    }

    /// General comparison of an attribute against a constant.
    #[must_use]
    pub fn attr_cmp_const(j: usize, op: CmpOp, a: impl Into<Value>) -> Predicate {
        Predicate::Cmp {
            left: Operand::Attr(j),
            op,
            right: Operand::Const(a.into()),
        }
    }

    /// General comparison of two attributes.
    #[must_use]
    pub fn attr_cmp_attr(j: usize, op: CmpOp, k: usize) -> Predicate {
        Predicate::Cmp {
            left: Operand::Attr(j),
            op,
            right: Operand::Attr(k),
        }
    }

    /// `self ∧ other`.
    #[must_use]
    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// `self ∨ other`.
    #[must_use]
    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// `¬self`.
    #[must_use]
    #[allow(clippy::should_implement_trait)] // builder-style, mirrors and/or
    pub fn not(self) -> Predicate {
        Predicate::Not(Box::new(self))
    }

    /// Evaluates the predicate on a tuple. Comparison across types uses the
    /// total order of [`Value::total_cmp`], so evaluation never fails.
    #[must_use]
    pub fn eval(&self, t: &Tuple) -> bool {
        match self {
            Predicate::True => true,
            Predicate::False => false,
            Predicate::Cmp { left, op, right } => op.matches(left.eval(t).total_cmp(right.eval(t))),
            Predicate::And(a, b) => a.eval(t) && b.eval(t),
            Predicate::Or(a, b) => a.eval(t) || b.eval(t),
            Predicate::Not(a) => !a.eval(t),
        }
    }

    /// The largest attribute position referenced, if any.
    #[must_use]
    pub fn max_attr(&self) -> Option<usize> {
        match self {
            Predicate::True | Predicate::False => None,
            Predicate::Cmp { left, right, .. } => match (left.max_attr(), right.max_attr()) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            },
            Predicate::And(a, b) | Predicate::Or(a, b) => match (a.max_attr(), b.max_attr()) {
                (Some(x), Some(y)) => Some(x.max(y)),
                (x, y) => x.or(y),
            },
            Predicate::Not(a) => a.max_attr(),
        }
    }

    /// The smallest attribute position referenced, if any.
    #[must_use]
    pub fn min_attr(&self) -> Option<usize> {
        match self {
            Predicate::True | Predicate::False => None,
            Predicate::Cmp { left, right, .. } => match (left.max_attr(), right.max_attr()) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            },
            Predicate::And(a, b) | Predicate::Or(a, b) => match (a.min_attr(), b.min_attr()) {
                (Some(x), Some(y)) => Some(x.min(y)),
                (x, y) => x.or(y),
            },
            Predicate::Not(a) => a.min_attr(),
        }
    }

    /// Validates the predicate against a relation arity.
    ///
    /// # Errors
    ///
    /// Returns [`Error::AttributeOutOfRange`] if an attribute position is
    /// `≥ arity`.
    pub fn validate(&self, arity: usize) -> Result<()> {
        if let Some(m) = self.max_attr() {
            if m >= arity {
                return Err(Error::AttributeOutOfRange { index: m, arity });
            }
        }
        Ok(())
    }

    /// Shifts every attribute position up by `by`. Used to turn a join
    /// predicate `p` on the attributes of `S` into the "semantic equivalent
    /// `p′` on `R ×exp S`" of Equation 5.
    #[must_use]
    pub fn shift_attrs(&self, by: usize) -> Predicate {
        match self {
            Predicate::True => Predicate::True,
            Predicate::False => Predicate::False,
            Predicate::Cmp { left, op, right } => Predicate::Cmp {
                left: left.shifted(by),
                op: *op,
                right: right.shifted(by),
            },
            Predicate::And(a, b) => {
                Predicate::And(Box::new(a.shift_attrs(by)), Box::new(b.shift_attrs(by)))
            }
            Predicate::Or(a, b) => {
                Predicate::Or(Box::new(a.shift_attrs(by)), Box::new(b.shift_attrs(by)))
            }
            Predicate::Not(a) => Predicate::Not(Box::new(a.shift_attrs(by))),
        }
    }

    /// Whether the predicate stays in the paper's fragment: equality
    /// comparisons only, combined with `∧`/`∨` (no `¬`, no inequalities).
    #[must_use]
    pub fn is_paper_fragment(&self) -> bool {
        match self {
            Predicate::True | Predicate::False => true,
            Predicate::Cmp { op, .. } => *op == CmpOp::Eq,
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                a.is_paper_fragment() && b.is_paper_fragment()
            }
            Predicate::Not(_) => false,
        }
    }

    /// Whether the predicate references only attributes `< split` (i.e. only
    /// left-side attributes of a product of left arity `split`). The query
    /// rewriter uses this to decide push-down safety.
    #[must_use]
    pub fn only_refs_below(&self, split: usize) -> bool {
        self.max_attr().map_or(true, |m| m < split)
    }

    /// Whether the predicate references only attributes `>= split`.
    #[must_use]
    pub fn only_refs_at_or_above(&self, split: usize) -> bool {
        self.min_attr().map_or(true, |m| m >= split)
    }

    /// Rewrites attribute positions through a projection: attribute `i` in
    /// the projected relation corresponds to `positions[i]` in the input.
    /// Returns `None` if the predicate references an attribute the
    /// projection dropped — then it cannot be pushed below the projection.
    #[must_use]
    pub fn unproject(&self, positions: &[usize]) -> Option<Predicate> {
        let remap = |o: &Operand| -> Option<Operand> {
            match o {
                Operand::Attr(i) => positions.get(*i).map(|&j| Operand::Attr(j)),
                c => Some(c.clone()),
            }
        };
        match self {
            Predicate::True => Some(Predicate::True),
            Predicate::False => Some(Predicate::False),
            Predicate::Cmp { left, op, right } => Some(Predicate::Cmp {
                left: remap(left)?,
                op: *op,
                right: remap(right)?,
            }),
            Predicate::And(a, b) => Some(Predicate::And(
                Box::new(a.unproject(positions)?),
                Box::new(b.unproject(positions)?),
            )),
            Predicate::Or(a, b) => Some(Predicate::Or(
                Box::new(a.unproject(positions)?),
                Box::new(b.unproject(positions)?),
            )),
            Predicate::Not(a) => Some(Predicate::Not(Box::new(a.unproject(positions)?))),
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::True => write!(f, "true"),
            Predicate::False => write!(f, "false"),
            Predicate::Cmp { left, op, right } => {
                let fmt_op = |o: &Operand, f: &mut fmt::Formatter<'_>| match o {
                    Operand::Attr(i) => write!(f, "#{}", i + 1),
                    Operand::Const(v) => write!(f, "{v:?}"),
                };
                fmt_op(left, f)?;
                write!(f, " {op} ")?;
                fmt_op(right, f)
            }
            Predicate::And(a, b) => write!(f, "({a} ∧ {b})"),
            Predicate::Or(a, b) => write!(f, "({a} ∨ {b})"),
            Predicate::Not(a) => write!(f, "¬{a}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn cmp_op_semantics() {
        use Ordering::{Equal, Greater, Less};
        assert!(CmpOp::Eq.matches(Equal) && !CmpOp::Eq.matches(Less));
        assert!(CmpOp::Ne.matches(Less) && !CmpOp::Ne.matches(Equal));
        assert!(CmpOp::Lt.matches(Less) && !CmpOp::Lt.matches(Equal));
        assert!(CmpOp::Le.matches(Equal) && !CmpOp::Le.matches(Greater));
        assert!(CmpOp::Gt.matches(Greater) && !CmpOp::Gt.matches(Equal));
        assert!(CmpOp::Ge.matches(Equal) && !CmpOp::Ge.matches(Less));
    }

    #[test]
    fn cmp_op_flip_roundtrip() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_eq!(op.flip().flip(), op);
        }
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
    }

    #[test]
    fn paper_predicates_evaluate() {
        let t = tuple![1, 25, 1, 75];
        assert!(Predicate::attr_eq_attr(0, 2).eval(&t));
        assert!(!Predicate::attr_eq_attr(1, 3).eval(&t));
        assert!(Predicate::attr_eq_const(1, 25).eval(&t));
        assert!(!Predicate::attr_eq_const(1, 26).eval(&t));
    }

    #[test]
    fn boolean_connectives() {
        let t = tuple![1, 2];
        let p = Predicate::attr_eq_const(0, 1);
        let q = Predicate::attr_eq_const(1, 99);
        assert!(!p.clone().and(q.clone()).eval(&t));
        assert!(p.clone().or(q.clone()).eval(&t));
        assert!(q.clone().not().eval(&t));
        assert!(Predicate::True.eval(&t));
        assert!(!Predicate::False.eval(&t));
    }

    #[test]
    fn inequalities_use_total_order() {
        let t = tuple![5, 2.5];
        assert!(Predicate::attr_cmp_const(0, CmpOp::Gt, 4).eval(&t));
        assert!(Predicate::attr_cmp_const(1, CmpOp::Lt, 3.0).eval(&t));
        // Cross-type numeric comparison.
        assert!(Predicate::attr_cmp_attr(1, CmpOp::Lt, 0).eval(&t));
    }

    #[test]
    fn attr_range_tracking_and_validation() {
        let p = Predicate::attr_eq_attr(0, 3).and(Predicate::attr_eq_const(1, 5));
        assert_eq!(p.max_attr(), Some(3));
        assert_eq!(p.min_attr(), Some(0));
        assert!(p.validate(4).is_ok());
        assert!(matches!(
            p.validate(3),
            Err(Error::AttributeOutOfRange { index: 3, arity: 3 })
        ));
        assert_eq!(Predicate::True.max_attr(), None);
        assert!(Predicate::True.validate(0).is_ok());
    }

    #[test]
    fn shift_attrs_moves_references() {
        let p = Predicate::attr_eq_attr(0, 1).shift_attrs(2);
        assert!(p.eval(&tuple![9, 9, 7, 7]));
        assert!(!p.eval(&tuple![7, 7, 9, 8]));
        assert_eq!(
            Predicate::attr_eq_const(0, 1).shift_attrs(3).max_attr(),
            Some(3)
        );
    }

    #[test]
    fn paper_fragment_detection() {
        assert!(Predicate::attr_eq_attr(0, 1)
            .and(Predicate::attr_eq_const(0, 3))
            .is_paper_fragment());
        assert!(!Predicate::attr_cmp_const(0, CmpOp::Lt, 3).is_paper_fragment());
        assert!(!Predicate::attr_eq_const(0, 3).not().is_paper_fragment());
    }

    #[test]
    fn side_locality() {
        let left_only = Predicate::attr_eq_const(1, 5);
        let right_only = Predicate::attr_eq_const(3, 5);
        let both = Predicate::attr_eq_attr(0, 3);
        assert!(left_only.only_refs_below(2));
        assert!(!right_only.only_refs_below(2));
        assert!(right_only.only_refs_at_or_above(2));
        assert!(!both.only_refs_below(2));
        assert!(!both.only_refs_at_or_above(2));
        assert!(Predicate::True.only_refs_below(0));
    }

    #[test]
    fn unproject_through_projection() {
        // Projection keeps input attrs [2, 0]; predicate on projected #0
        // refers to input #2.
        let p = Predicate::attr_eq_const(0, 7);
        let up = p.unproject(&[2, 0]).unwrap();
        assert_eq!(up, Predicate::attr_eq_const(2, 7));
        // Reference past the projection width cannot be pushed down.
        assert!(Predicate::attr_eq_const(5, 7).unproject(&[2, 0]).is_none());
        // Connectives recurse.
        let c = Predicate::attr_eq_attr(0, 1).or(Predicate::True);
        assert_eq!(
            c.unproject(&[4, 2]).unwrap(),
            Predicate::attr_eq_attr(4, 2).or(Predicate::True)
        );
    }

    #[test]
    fn display_renders_one_based() {
        let p = Predicate::attr_eq_attr(0, 2).and(Predicate::attr_eq_const(1, 25));
        assert_eq!(p.to_string(), "(#1 = #3 ∧ #2 = 25)");
        assert_eq!(
            Predicate::attr_cmp_const(0, CmpOp::Ge, 5).not().to_string(),
            "¬#1 >= 5"
        );
    }
}
