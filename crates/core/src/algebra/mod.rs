//! The expiration-time relational algebra (paper Section 2).
//!
//! * [`ops`] — relation-level operator implementations (Equations 1–6, 8,
//!   10) and the expression-level metadata of the non-monotonic operators.
//! * [`expr`] — the composable expression AST with schema inference,
//!   monotonicity classification (Section 2.5), and a paper-style renderer.
//! * [`mod@eval`] — the evaluator: materialises an expression at a time `τ`,
//!   producing the result relation, the expression expiration time
//!   `texp(e)`, the Schrödinger validity intervals `I(e)` (Section 3.4),
//!   and optionally a difference patch queue (Theorem 3).

pub mod eval;
pub mod expr;
pub mod ops;
pub mod profile;

pub use eval::{eval, EvalOptions, Materialized};
pub use expr::Expr;
pub use profile::{eval_profiled, PlanProfile};
