//! `EXPLAIN ANALYZE` support: a profiled evaluator that mirrors
//! [`eval`](crate::algebra::eval::eval) while recording, per operator,
//! rows in/out, expiration-filtered rows, per-node `texp`, and elapsed
//! wall time.
//!
//! This is deliberately a *separate* recursion from the hot-path
//! evaluator: profiling must cost nothing when not requested, and the
//! paper's operators are cheap enough that a per-node `Instant` pair in
//! the hot path would be measurable. The two functions are kept
//! structurally parallel — any semantic change to `eval_rec` belongs in
//! both.

use std::time::{Duration, Instant};

use crate::algebra::eval::{eval_patched_root, EvalOptions, Materialized};
use crate::algebra::expr::Expr;
use crate::algebra::ops;
use crate::catalog::Catalog;
use crate::error::Result;
use crate::interval::IntervalSet;
use crate::relation::Relation;
use crate::time::Time;

/// One operator's worth of `EXPLAIN ANALYZE` output, with its children.
#[derive(Debug, Clone)]
pub struct PlanProfile {
    /// Short operator label, e.g. `σ[deg = 25]` or `Base(Pol)`.
    pub label: String,
    /// Rows produced by this operator (visible at `τ`).
    pub rows_out: u64,
    /// Rows this operator dropped because their expiration time had
    /// passed (`texp ≤ τ`). Non-zero at `Base` leaves, where stored
    /// tuples are first filtered to the current instant.
    pub expired_filtered: u64,
    /// This node's expression expiration time `texp(e)`.
    pub texp: Time,
    /// Wall time spent in this operator *including* children.
    pub elapsed: Duration,
    /// Input subplans (0 for leaves, 1 for unary, 2 for binary operators).
    pub children: Vec<PlanProfile>,
}

impl PlanProfile {
    /// Rows flowing into this operator: the sum of child outputs.
    #[must_use]
    pub fn rows_in(&self) -> u64 {
        self.children.iter().map(|c| c.rows_out).sum()
    }

    /// Wall time spent in this operator *excluding* children.
    #[must_use]
    pub fn self_elapsed(&self) -> Duration {
        self.elapsed
            .checked_sub(self.children.iter().map(|c| c.elapsed).sum())
            .unwrap_or(Duration::ZERO)
    }

    /// Total operator count in the subtree (for summaries).
    #[must_use]
    pub fn node_count(&self) -> u64 {
        1 + self
            .children
            .iter()
            .map(PlanProfile::node_count)
            .sum::<u64>()
    }

    /// Renders the annotated plan tree, one operator per line.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        let texp = match self.texp.finite() {
            Some(t) => t.to_string(),
            None => "∞".to_string(),
        };
        out.push_str(&format!(
            "{}  rows={} (in {}, expired {})  texp={}  {:.1}µs\n",
            self.label,
            self.rows_out,
            self.rows_in(),
            self.expired_filtered,
            texp,
            self.self_elapsed().as_nanos() as f64 / 1_000.0,
        ));
        for child in &self.children {
            child.render_into(out, depth + 1);
        }
    }
}

fn label_of(expr: &Expr) -> String {
    match expr {
        Expr::Base(name) => format!("Base({name})"),
        Expr::Select { predicate, .. } => format!("σ[{predicate}]"),
        Expr::Project { positions, .. } => {
            let ps: Vec<String> = positions.iter().map(ToString::to_string).collect();
            format!("π[{}]", ps.join(","))
        }
        Expr::Product { .. } => "×".to_string(),
        Expr::Union { .. } => "∪".to_string(),
        Expr::Join { predicate, .. } => format!("⋈[{predicate}]"),
        Expr::Intersect { .. } => "∩".to_string(),
        Expr::Difference { .. } => "−".to_string(),
        Expr::Aggregate { group_by, func, .. } => {
            let gs: Vec<String> = group_by.iter().map(ToString::to_string).collect();
            format!("γ[{}; {func}]", gs.join(","))
        }
    }
}

struct ProfiledSub {
    rel: Relation,
    texp: Time,
    validity: IntervalSet,
    profile: PlanProfile,
}

fn node(
    expr: &Expr,
    started: Instant,
    rel: &Relation,
    expired_filtered: u64,
    texp: Time,
    children: Vec<PlanProfile>,
) -> PlanProfile {
    PlanProfile {
        label: label_of(expr),
        rows_out: rel.len() as u64,
        expired_filtered,
        texp,
        elapsed: started.elapsed(),
        children,
    }
}

#[allow(clippy::too_many_lines)] // parallel to eval_rec, one arm per operator
fn eval_rec_profiled(
    expr: &Expr,
    catalog: &Catalog,
    tau: Time,
    opts: &EvalOptions,
) -> Result<ProfiledSub> {
    let started = Instant::now();
    let full = IntervalSet::from_time(tau);
    Ok(match expr {
        Expr::Base(name) => {
            let stored = catalog.get(name)?;
            let rel = stored.exp(tau);
            let expired = (stored.len() - rel.len()) as u64;
            let profile = node(expr, started, &rel, expired, Time::INFINITY, vec![]);
            ProfiledSub {
                rel,
                texp: Time::INFINITY,
                validity: full,
                profile,
            }
        }
        Expr::Select { input, predicate } => {
            let i = eval_rec_profiled(input, catalog, tau, opts)?;
            let rel = ops::select(&i.rel, predicate, tau)?;
            let profile = node(expr, started, &rel, 0, i.texp, vec![i.profile]);
            ProfiledSub {
                rel,
                texp: i.texp,
                validity: i.validity,
                profile,
            }
        }
        Expr::Project { input, positions } => {
            let i = eval_rec_profiled(input, catalog, tau, opts)?;
            let rel = ops::project(&i.rel, positions, tau)?;
            let profile = node(expr, started, &rel, 0, i.texp, vec![i.profile]);
            ProfiledSub {
                rel,
                texp: i.texp,
                validity: i.validity,
                profile,
            }
        }
        Expr::Product { left, right } => {
            let l = eval_rec_profiled(left, catalog, tau, opts)?;
            let r = eval_rec_profiled(right, catalog, tau, opts)?;
            let rel = ops::product(&l.rel, &r.rel, tau)?;
            let texp = l.texp.min(r.texp);
            let profile = node(expr, started, &rel, 0, texp, vec![l.profile, r.profile]);
            ProfiledSub {
                rel,
                texp,
                validity: l.validity.intersect(&r.validity),
                profile,
            }
        }
        Expr::Union { left, right } => {
            let l = eval_rec_profiled(left, catalog, tau, opts)?;
            let r = eval_rec_profiled(right, catalog, tau, opts)?;
            let rel = ops::union(&l.rel, &r.rel, tau)?;
            let texp = l.texp.min(r.texp);
            let profile = node(expr, started, &rel, 0, texp, vec![l.profile, r.profile]);
            ProfiledSub {
                rel,
                texp,
                validity: l.validity.intersect(&r.validity),
                profile,
            }
        }
        Expr::Join {
            left,
            right,
            predicate,
        } => {
            let l = eval_rec_profiled(left, catalog, tau, opts)?;
            let r = eval_rec_profiled(right, catalog, tau, opts)?;
            let rel = ops::join(&l.rel, &r.rel, predicate, tau)?;
            let texp = l.texp.min(r.texp);
            let profile = node(expr, started, &rel, 0, texp, vec![l.profile, r.profile]);
            ProfiledSub {
                rel,
                texp,
                validity: l.validity.intersect(&r.validity),
                profile,
            }
        }
        Expr::Intersect { left, right } => {
            let l = eval_rec_profiled(left, catalog, tau, opts)?;
            let r = eval_rec_profiled(right, catalog, tau, opts)?;
            let rel = ops::intersect(&l.rel, &r.rel, tau)?;
            let texp = l.texp.min(r.texp);
            let profile = node(expr, started, &rel, 0, texp, vec![l.profile, r.profile]);
            ProfiledSub {
                rel,
                texp,
                validity: l.validity.intersect(&r.validity),
                profile,
            }
        }
        Expr::Difference { left, right } => {
            let l = eval_rec_profiled(left, catalog, tau, opts)?;
            let r = eval_rec_profiled(right, catalog, tau, opts)?;
            let meta = ops::difference_meta(&l.rel, &r.rel, tau);
            let own_validity = if opts.eq12_validity {
                meta.validity_eq12
            } else {
                meta.validity
            };
            let rel = ops::difference(&l.rel, &r.rel, tau)?;
            let texp = l.texp.min(r.texp).min(meta.texp);
            let profile = node(expr, started, &rel, 0, texp, vec![l.profile, r.profile]);
            ProfiledSub {
                rel,
                texp,
                validity: l.validity.intersect(&r.validity).intersect(&own_validity),
                profile,
            }
        }
        Expr::Aggregate {
            input,
            group_by,
            func,
        } => {
            let i = eval_rec_profiled(input, catalog, tau, opts)?;
            let meta = ops::aggregate_meta(&i.rel, group_by, *func, opts.agg_mode, tau)?;
            let rel = ops::aggregate(&i.rel, group_by, *func, opts.agg_mode, tau)?;
            let texp = i.texp.min(meta.texp);
            let profile = node(expr, started, &rel, 0, texp, vec![i.profile]);
            ProfiledSub {
                rel,
                texp,
                validity: i.validity.intersect(&meta.validity),
                profile,
            }
        }
    })
}

/// Materialises `expr` like [`eval`](crate::algebra::eval::eval) while
/// also producing an annotated per-operator [`PlanProfile`].
///
/// The returned materialisation is semantically identical to `eval`'s
/// (same relation, `texp`, validity, and patch queue behaviour).
///
/// # Errors
///
/// Returns the same errors as `eval`.
pub fn eval_profiled(
    expr: &Expr,
    catalog: &Catalog,
    tau: Time,
    opts: &EvalOptions,
) -> Result<(Materialized, PlanProfile)> {
    if opts.patch_root_difference {
        if let Expr::Difference { .. } = expr {
            // Theorem 3 root handling is not per-operator work; reuse the
            // hot-path implementation and profile the plan alongside it.
            let started = Instant::now();
            let m = eval_patched_root(expr, catalog, tau, opts)?;
            let mut profile = eval_rec_profiled(expr, catalog, tau, opts)?.profile;
            profile.texp = m.texp;
            profile.elapsed = started.elapsed();
            return Ok((m, profile));
        }
    }
    let sub = eval_rec_profiled(expr, catalog, tau, opts)?;
    Ok((
        Materialized {
            rel: sub.rel,
            at: tau,
            texp: sub.texp,
            validity: sub.validity,
            patches: None,
        },
        sub.profile,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::eval::eval;
    use crate::predicate::Predicate;
    use crate::schema::Schema;
    use crate::tuple;
    use crate::value::ValueType;

    fn t(v: u64) -> Time {
        Time::new(v)
    }

    fn catalog() -> Catalog {
        let schema = Schema::of(&[("uid", ValueType::Int), ("deg", ValueType::Int)]);
        let mut c = Catalog::new();
        c.register(
            "Pol",
            Relation::from_rows(
                schema.clone(),
                vec![
                    (tuple![1, 25], t(10)),
                    (tuple![2, 25], t(15)),
                    (tuple![3, 35], t(10)),
                ],
            )
            .unwrap(),
        );
        c.register(
            "El",
            Relation::from_rows(
                schema,
                vec![
                    (tuple![1, 75], t(5)),
                    (tuple![2, 85], t(3)),
                    (tuple![4, 90], t(2)),
                ],
            )
            .unwrap(),
        );
        c
    }

    #[test]
    fn profiled_eval_matches_plain_eval() {
        let c = catalog();
        let exprs = vec![
            Expr::base("Pol").select(Predicate::attr_eq_const(1, 25)),
            Expr::base("Pol")
                .project([0])
                .difference(Expr::base("El").project([0])),
            Expr::base("Pol")
                .join(Expr::base("El"), Predicate::attr_eq_attr(0, 2))
                .project([0, 1]),
            Expr::base("Pol").aggregate([1], crate::aggregate::AggFunc::Count),
        ];
        for e in exprs {
            for now in [0, 4, 11] {
                let plain = eval(&e, &c, t(now), &EvalOptions::default()).unwrap();
                let (prof, _) = eval_profiled(&e, &c, t(now), &EvalOptions::default()).unwrap();
                assert!(prof.rel.set_eq(&plain.rel), "{e} at {now}");
                assert_eq!(prof.texp, plain.texp, "{e} at {now}");
                assert_eq!(prof.validity, plain.validity, "{e} at {now}");
            }
        }
    }

    #[test]
    fn profile_counts_rows_and_expired() {
        let c = catalog();
        // At τ=4, El has lost ⟨2,85⟩@3 and ⟨4,90⟩@2 to expiration.
        let e = Expr::base("El").project([0]);
        let (_, p) = eval_profiled(&e, &c, t(4), &EvalOptions::default()).unwrap();
        assert_eq!(p.label, "π[0]");
        assert_eq!(p.rows_out, 1);
        assert_eq!(p.rows_in(), 1);
        assert_eq!(p.children.len(), 1);
        let base = &p.children[0];
        assert_eq!(base.label, "Base(El)");
        assert_eq!(base.rows_out, 1);
        assert_eq!(base.expired_filtered, 2);
        assert_eq!(p.node_count(), 2);
    }

    #[test]
    fn profile_tracks_per_node_texp() {
        let c = catalog();
        let e = Expr::base("Pol")
            .project([0])
            .difference(Expr::base("El").project([0]));
        let (m, p) = eval_profiled(&e, &c, Time::ZERO, &EvalOptions::default()).unwrap();
        assert_eq!(p.texp, t(3), "difference node carries Equation 11");
        assert_eq!(m.texp, t(3));
        assert!(p.children.iter().all(|c| c.texp.is_infinite()));
        let rendered = p.render();
        assert!(rendered.contains("−"), "{rendered}");
        assert!(rendered.contains("texp=3"), "{rendered}");
        assert!(rendered.contains("texp=∞"), "{rendered}");
    }

    #[test]
    fn profiled_patched_root_keeps_theorem_3() {
        let c = catalog();
        let e = Expr::base("Pol")
            .project([0])
            .difference(Expr::base("El").project([0]));
        let opts = EvalOptions {
            patch_root_difference: true,
            ..EvalOptions::default()
        };
        let (m, p) = eval_profiled(&e, &c, Time::ZERO, &opts).unwrap();
        assert_eq!(m.texp, Time::INFINITY, "Theorem 3");
        assert!(m.patches.is_some());
        assert_eq!(p.texp, Time::INFINITY, "profile reflects patched texp");
    }
}
