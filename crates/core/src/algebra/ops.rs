//! Relation-level implementations of the expiration-time algebra operators.
//!
//! Each function implements one operator of Section 2 of the paper, applied
//! at an explicit time `τ`: argument relations are implicitly replaced by
//! `expτ(R)` ("consider only tuples that have not yet expired at the time
//! the operator is applied"), result tuples carry the expiration times the
//! paper's equations assign, and the expression-level metadata (the
//! expiration time `texp(e)` of a whole materialised expression, and its
//! Schrödinger validity intervals) is provided by companion `*_meta`
//! functions for the non-monotonic operators.

use crate::aggregate::{self, AggFunc, AggMode};
use crate::error::{Error, Result};
use crate::interval::{Interval, IntervalSet};
use crate::predicate::Predicate;
use crate::relation::{DuplicatePolicy, Relation};
use crate::time::Time;
use crate::tuple::Tuple;

/// Selection `σexp_p(R)` (Equation 1): keeps unexpired tuples satisfying
/// `p`; result tuples retain their expiration times.
///
/// # Errors
///
/// Returns an error if `p` references attributes outside `R`'s arity.
pub fn select(r: &Relation, p: &Predicate, tau: Time) -> Result<Relation> {
    p.validate(r.arity())?;
    let mut out = Relation::new(r.schema().clone());
    for (t, e) in r.iter_at(tau) {
        if p.eval(t) {
            out.insert(t.clone(), e)?;
        }
    }
    Ok(out)
}

/// Projection `πexp_{j1,…,jn}(R)` (Equation 3): projects unexpired tuples
/// and, because projection eliminates duplicates, assigns each result tuple
/// the **maximum** expiration time of all tuples that coincide under the
/// projection.
///
/// # Errors
///
/// Returns an error on out-of-range positions.
pub fn project(r: &Relation, positions: &[usize], tau: Time) -> Result<Relation> {
    let schema = r.schema().project(positions)?;
    let mut out = Relation::new(schema);
    for (t, e) in r.iter_at(tau) {
        // KeepMax is exactly Equation 3's max over coinciding tuples.
        out.insert_with(t.project(positions), e, DuplicatePolicy::KeepMax)?;
    }
    Ok(out)
}

/// Cartesian product `R ×exp S` (Equation 2): concatenated tuples carry the
/// **minimum** of the participating expiration times.
///
/// # Errors
///
/// Propagates schema errors (none arise in practice; the product schema is
/// always valid).
pub fn product(r: &Relation, s: &Relation, tau: Time) -> Result<Relation> {
    let schema = r.schema().product(s.schema());
    let mut out = Relation::new(schema);
    for (rt, re) in r.iter_at(tau) {
        for (st, se) in s.iter_at(tau) {
            out.insert(rt.concat(st), re.min(se))?;
        }
    }
    Ok(out)
}

/// Union `R ∪exp S` (Equation 4): requires union compatibility; tuples in
/// both sides get the **maximum** of the two expiration times.
///
/// # Errors
///
/// Returns [`Error::NotUnionCompatible`] on schema mismatch.
pub fn union(r: &Relation, s: &Relation, tau: Time) -> Result<Relation> {
    r.check_union_compatible(s)?;
    let mut out = Relation::new(r.schema().clone());
    for (t, e) in r.iter_at(tau) {
        out.insert(t.clone(), e)?;
    }
    for (t, e) in s.iter_at(tau) {
        // KeepMax realises Equation 4's case analysis.
        out.insert_with(t.clone(), e, DuplicatePolicy::KeepMax)?;
    }
    Ok(out)
}

/// Join `R ⋈exp_p S` (Equation 5), rewritten as `σexp_{p}(R ×exp S)`; the
/// predicate addresses the concatenated attributes (left attributes at
/// `0..α(R)`, right at `α(R)..`).
///
/// Evaluation picks a physical strategy by predicate shape: cross-side
/// equality conjuncts drive a build-smaller/probe-larger hash join (the
/// full predicate is re-checked on candidates, so residual conjuncts are
/// honoured); anything else falls back to the literal nested loop
/// ([`join_nested_loop`]). Both are property-tested equivalent.
///
/// # Errors
///
/// Returns an error if `p` references attributes outside the product arity.
pub fn join(r: &Relation, s: &Relation, p: &Predicate, tau: Time) -> Result<Relation> {
    p.validate(r.arity() + s.arity())?;
    // Fast path: cross-side equality conjuncts drive a hash join; any
    // residual predicate filters the matches. Falls back to the literal
    // Equation 5 nested loop when no equi-key exists.
    let keys = equi_keys(p, r.arity());
    if keys.is_empty() {
        join_nested_loop(r, s, p, tau)
    } else {
        join_hash(r, s, p, &keys, tau)
    }
}

/// The literal Equation 5 evaluation: filtered nested loop over the
/// product. Kept public as the reference implementation (property-tested
/// against the hash path) and as the ablation baseline.
///
/// # Errors
///
/// Returns an error if `p` references attributes outside the product arity.
pub fn join_nested_loop(r: &Relation, s: &Relation, p: &Predicate, tau: Time) -> Result<Relation> {
    p.validate(r.arity() + s.arity())?;
    let schema = r.schema().product(s.schema());
    let mut out = Relation::new(schema);
    for (rt, re) in r.iter_at(tau) {
        for (st, se) in s.iter_at(tau) {
            let joined = rt.concat(st);
            if p.eval(&joined) {
                out.insert(joined, re.min(se))?;
            }
        }
    }
    Ok(out)
}

/// Extracts cross-side equality pairs `(left attr, right attr)` from the
/// top-level conjunction of `p`; right attributes are shifted down by
/// `left_arity`. Every result tuple must satisfy each top-level conjunct,
/// so probing only key-equal pairs is complete; `Or`/`Not` terms simply
/// contribute no keys and are handled by the residual re-check.
fn equi_keys(p: &Predicate, left_arity: usize) -> Vec<(usize, usize)> {
    fn conjuncts<'a>(p: &'a Predicate, out: &mut Vec<&'a Predicate>) {
        match p {
            Predicate::And(a, b) => {
                conjuncts(a, out);
                conjuncts(b, out);
            }
            other => out.push(other),
        }
    }
    let mut terms = Vec::new();
    conjuncts(p, &mut terms);
    let mut keys = Vec::new();
    for t in terms {
        if let Predicate::Cmp {
            left: crate::predicate::Operand::Attr(i),
            op: crate::predicate::CmpOp::Eq,
            right: crate::predicate::Operand::Attr(j),
        } = t
        {
            let (a, b) = (*i.min(j), *i.max(j));
            if a < left_arity && b >= left_arity {
                keys.push((a, b - left_arity));
            }
        }
    }
    keys
}

/// Hash join on the extracted equi-keys; the full predicate `p` is
/// re-checked on each candidate pair, so residual conjuncts (and repeated
/// keys) are honoured.
fn join_hash(
    r: &Relation,
    s: &Relation,
    p: &Predicate,
    keys: &[(usize, usize)],
    tau: Time,
) -> Result<Relation> {
    use std::collections::HashMap;
    let schema = r.schema().product(s.schema());
    let mut out = Relation::new(schema);
    // Build on the smaller side.
    let (build_right, probe_iter_len) = (s.count_unexpired(tau), r.count_unexpired(tau));
    if build_right <= probe_iter_len {
        let mut table: HashMap<Vec<&crate::value::Value>, Vec<(&Tuple, Time)>> = HashMap::new();
        for (st, se) in s.iter_at(tau) {
            let key: Vec<_> = keys.iter().map(|&(_, j)| st.attr(j)).collect();
            table.entry(key).or_default().push((st, se));
        }
        for (rt, re) in r.iter_at(tau) {
            let key: Vec<_> = keys.iter().map(|&(i, _)| rt.attr(i)).collect();
            if let Some(matches) = table.get(&key) {
                for &(st, se) in matches {
                    let joined = rt.concat(st);
                    if p.eval(&joined) {
                        out.insert(joined, re.min(se))?;
                    }
                }
            }
        }
    } else {
        let mut table: HashMap<Vec<&crate::value::Value>, Vec<(&Tuple, Time)>> = HashMap::new();
        for (rt, re) in r.iter_at(tau) {
            let key: Vec<_> = keys.iter().map(|&(i, _)| rt.attr(i)).collect();
            table.entry(key).or_default().push((rt, re));
        }
        for (st, se) in s.iter_at(tau) {
            let key: Vec<_> = keys.iter().map(|&(_, j)| st.attr(j)).collect();
            if let Some(matches) = table.get(&key) {
                for &(rt, re) in matches {
                    let joined = rt.concat(st);
                    if p.eval(&joined) {
                        out.insert(joined, re.min(se))?;
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Intersection `R ∩exp S` (Equation 6): tuples in both sides, with the
/// **minimum** of the two expiration times (the expiration flows through the
/// inner Cartesian product of the paper's rewrite).
///
/// # Errors
///
/// Returns [`Error::NotUnionCompatible`] on schema mismatch.
pub fn intersect(r: &Relation, s: &Relation, tau: Time) -> Result<Relation> {
    r.check_union_compatible(s)?;
    let mut out = Relation::new(r.schema().clone());
    for (t, re) in r.iter_at(tau) {
        if let Some(se) = s.texp(t) {
            if se > tau {
                out.insert(t.clone(), re.min(se))?;
            }
        }
    }
    Ok(out)
}

/// Difference `R −exp S` (Equation 10): unexpired `R`-tuples not unexpired
/// in `S`; result tuples retain `texp_R`.
///
/// # Errors
///
/// Returns [`Error::NotUnionCompatible`] on schema mismatch.
pub fn difference(r: &Relation, s: &Relation, tau: Time) -> Result<Relation> {
    r.check_union_compatible(s)?;
    let mut out = Relation::new(r.schema().clone());
    for (t, re) in r.iter_at(tau) {
        if !s.contains_at(t, tau) {
            out.insert(t.clone(), re)?;
        }
    }
    Ok(out)
}

/// A critical tuple of a difference (Table 2, case 3a): present and
/// unexpired in both arguments with `texp_R(t) > texp_S(t)`, so it must
/// *reappear* in the result when its `S`-copy expires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalTuple {
    /// The tuple itself.
    pub tuple: Tuple,
    /// When it reappears: `texp_S(t)`.
    pub appears_at: Time,
    /// When it disappears again: `texp_R(t)` (possibly `∞`).
    pub disappears_at: Time,
}

/// The critical tuples `{t | t ∈ R ∧ t ∈ S ∧ texp_R(t) > texp_S(t)}` of a
/// difference, evaluated over the unexpired portions at `τ`.
#[must_use]
pub fn critical_tuples(r: &Relation, s: &Relation, tau: Time) -> Vec<CriticalTuple> {
    let mut out = Vec::new();
    for (t, re) in r.iter_at(tau) {
        if let Some(se) = s.texp(t) {
            if se > tau && re > se {
                out.push(CriticalTuple {
                    tuple: t.clone(),
                    appears_at: se,
                    disappears_at: re,
                });
            }
        }
    }
    out
}

/// Expression-level metadata for a materialised difference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DifferenceMeta {
    /// `texp(R −exp S)` contribution from the arguments' contents: the
    /// minimum `texp_S(t)` over critical tuples (`τR` in Section 2.6.2);
    /// `∞` when no tuple is critical.
    ///
    /// Note: the paper's Equation 11 as printed takes `min{texp_R(t) | …}`,
    /// which contradicts its own derivation of `τR` (the result is invalid
    /// *from the moment the `S`-copy expires*, i.e. `texp_S(t)`) and
    /// Table 2's case 3a (`texp(e) = texp_S(t)`). We follow `τR`/Table 2 and
    /// treat Equation 11's subscript as a typo.
    pub texp: Time,
    /// The exact Schrödinger validity relative to query time `τ`:
    /// `[τ, ∞[ − ⋃_critical [texp_S(t), texp_R(t)[`. Each critical tuple is
    /// missing from the materialised result exactly on its own hole.
    pub validity: IntervalSet,
    /// The coarse validity of Equation 12:
    /// `[τ, ∞[ − [min texp_S(t), max texp_R(t)[` over critical tuples
    /// ("definitely valid until the first critical tuple should appear, and
    /// after all critical tuples have expired"). Always a subset of
    /// `validity`.
    pub validity_eq12: IntervalSet,
}

/// Computes [`DifferenceMeta`] at time `τ`.
#[must_use]
pub fn difference_meta(r: &Relation, s: &Relation, tau: Time) -> DifferenceMeta {
    let critical = critical_tuples(r, s, tau);
    let texp = Time::min_of(critical.iter().map(|c| c.appears_at)).unwrap_or(Time::INFINITY);
    let holes: Vec<Interval> = critical
        .iter()
        .map(|c| Interval::new(c.appears_at, c.disappears_at))
        .collect();
    let all = IntervalSet::from_time(tau);
    let validity = all.subtract(&IntervalSet::from_intervals(holes));
    let validity_eq12 = if critical.is_empty() {
        all
    } else {
        let lo = Time::min_of(critical.iter().map(|c| c.appears_at)).expect("non-empty");
        let hi = Time::max_of(critical.iter().map(|c| c.disappears_at)).expect("non-empty");
        all.subtract(&IntervalSet::single(Interval::new(lo, hi)))
    };
    DifferenceMeta {
        texp,
        validity,
        validity_eq12,
    }
}

/// Aggregation `aggexp_{j1,…,jn,f}(R)` (Equation 8, Klug-style): every
/// unexpired input tuple is extended with the aggregate value of its
/// partition; the expiration time of each result tuple is assigned
/// according to `mode` (Equation 8 naive, Table 1 contributing sets, or
/// Equation 9 exact).
///
/// # Errors
///
/// Returns errors on bad grouping positions or non-numeric aggregation.
pub fn aggregate(
    r: &Relation,
    group_by: &[usize],
    f: AggFunc,
    mode: AggMode,
    tau: Time,
) -> Result<Relation> {
    for &j in group_by {
        if j >= r.arity() {
            return Err(Error::AttributeOutOfRange {
                index: j,
                arity: r.arity(),
            });
        }
    }
    f.validate(r.arity())?;
    let input_ty = f.attribute().map(|i| r.schema().attr(i).ty);
    let schema = r.schema().append(&f.to_string(), f.result_type(input_ty));
    let mut out = Relation::new(schema);
    for (_, rows) in aggregate::partition(r, group_by, tau) {
        let value = f.apply(&rows)?.expect("partitions are non-empty");
        let texp = aggregate::result_texp(&rows, f, mode, tau)?;
        for (t, e) in &rows {
            // Equation 8 keeps the full input tuple and appends `a`. The
            // mode supplies one partition-level bound (Equation 9 assigns
            // "the same expiration time" to the partition), but a result
            // tuple can never outlive its own base tuple: a fresh
            // evaluation after texp_R(r) would not contain ⟨r, a⟩ at all,
            // so the per-tuple expiration is min(texp_R(r), bound). (For
            // Naive mode the bound is already ≤ every texp_R(r).)
            out.insert(t.append(value.clone()), texp.min(*e))?;
        }
    }
    Ok(out)
}

/// Expression-level metadata for a materialised aggregation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggregateMeta {
    /// `texp(aggexp(R))` contribution from the contents: the earliest time
    /// any partition's aggregate value changes *while the partition is
    /// still alive* (Section 2.6.1's two-case analysis — a change caused by
    /// the whole partition expiring does not invalidate the expression,
    /// because its tuples legitimately disappear).
    pub texp: Time,
    /// The Schrödinger validity relative to query time `τ`: the
    /// intersection over partitions of `[τ, cut[ ∪ [death, ∞[`, where the
    /// cut is the earlier of the first live value change and the
    /// mode-induced row loss (see [`aggregate_meta`]).
    ///
    /// Section 3.4.1 writes `I(e) = ⋂_t I_R(t)` over member tuples, with
    /// `I_R(t)` the intervals where the aggregate value equals its value
    /// at `τ`. Two adjustments keep that sound for a *materialised*
    /// result: (a) taken literally `I(e)` becomes empty once any
    /// partition dies, although the paper itself states the expression
    /// "remains correct and needs not expire" then — so instants after a
    /// partition's death are OK; (b) intervals where the value *returns*
    /// to its original after changing are NOT ok — the materialised
    /// result tuples expired at the first change and cannot come back
    /// (unlike the difference operator, where Theorem 3's queue re-adds
    /// tuples), so only the contiguous `[τ, first change[` prefix counts.
    pub validity: IntervalSet,
}

/// Computes [`AggregateMeta`] at time `τ` for a given tuple-expiration
/// `mode` — the mode matters because a conservative mode (Eq. 8 naive,
/// Table 1 contributing) removes result tuples from the materialisation
/// *before* their partition's value changes, and the expression is
/// invalid from the first instant a removed row's base still lives
/// (exactly why the paper's Figure 3(a) is invalid from time 10, the
/// Eq. 8 bound). Under [`AggMode::Exact`] the mode bound coincides with
/// the first live value change, so nothing extra triggers.
///
/// # Errors
///
/// Propagates aggregation errors.
pub fn aggregate_meta(
    r: &Relation,
    group_by: &[usize],
    f: AggFunc,
    mode: AggMode,
    tau: Time,
) -> Result<AggregateMeta> {
    let mut texp = Time::INFINITY;
    let mut validity = IntervalSet::from_time(tau);
    for (_, rows) in aggregate::partition(r, group_by, tau) {
        let mut apply = |p: &[aggregate::Row]| f.apply(p);
        let timeline = aggregate::nu::value_timeline(tau, &rows, &mut apply)?;
        // First change to a *live* value invalidates the expression.
        let mut cut = Time::INFINITY;
        if let Some((t, _)) = timeline.iter().skip(1).find(|(_, v)| v.is_some()) {
            cut = cut.min(*t);
        }
        // Mode-induced row loss: at the mode bound the partition's result
        // rows leave the materialisation; if any base row outlives the
        // bound, a recomputation still contains it → invalid from there.
        let bound = aggregate::result_texp(&rows, f, mode, tau)?;
        if rows.iter().any(|(_, e)| *e > bound) {
            cut = cut.min(bound);
        }
        texp = texp.min(cut);
        // Ok-set of this partition: the prefix before the cut, plus
        // everything after the partition has fully expired. (Value-return
        // intervals are not ok: the materialised tuples are gone and
        // cannot reappear — see `AggregateMeta::validity`.)
        let mut ok = if cut.is_finite() {
            if cut > tau {
                IntervalSet::single(Interval::new(tau, cut))
            } else {
                IntervalSet::empty()
            }
        } else {
            IntervalSet::from_time(tau)
        };
        if let Some(death) = aggregate::nu::partition_death(&rows) {
            if death.is_finite() {
                ok = ok.union(&IntervalSet::from_time(death));
            }
        }
        validity = validity.intersect(&ok);
    }
    Ok(AggregateMeta { texp, validity })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::tuple;
    use crate::value::{Value, ValueType};

    fn t(v: u64) -> Time {
        Time::new(v)
    }

    /// Figure 1(a): the politics table.
    pub(crate) fn pol() -> Relation {
        Relation::from_rows(
            Schema::of(&[("uid", ValueType::Int), ("deg", ValueType::Int)]),
            vec![
                (tuple![1, 25], t(10)),
                (tuple![2, 25], t(15)),
                (tuple![3, 35], t(10)),
            ],
        )
        .unwrap()
    }

    /// Figure 1(b): the elections table.
    pub(crate) fn el() -> Relation {
        Relation::from_rows(
            Schema::of(&[("uid", ValueType::Int), ("deg", ValueType::Int)]),
            vec![
                (tuple![1, 75], t(5)),
                (tuple![2, 85], t(3)),
                (tuple![4, 90], t(2)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn select_keeps_texp_and_filters_expired() {
        let r = select(&pol(), &Predicate::attr_eq_const(1, 25), Time::ZERO).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.texp(&tuple![1, 25]), Some(t(10)));
        // At τ = 10 the uid-1 row is expired before selection sees it.
        let r10 = select(&pol(), &Predicate::attr_eq_const(1, 25), t(10)).unwrap();
        assert_eq!(r10.len(), 1);
        assert_eq!(r10.texp(&tuple![2, 25]), Some(t(15)));
    }

    #[test]
    fn select_true_is_exp_tau() {
        let r = select(&pol(), &Predicate::True, t(10)).unwrap();
        assert!(r.set_eq(&pol().exp(t(10))));
    }

    #[test]
    fn project_takes_max_texp_of_duplicates_figure_2c() {
        // πexp_2(Pol) at time 0 = {⟨25⟩@15, ⟨35⟩@10}: ⟨1,25⟩@10 and
        // ⟨2,25⟩@15 coincide, the result inherits max = 15.
        let r = project(&pol(), &[1], Time::ZERO).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.texp(&tuple![25]), Some(t(15)));
        assert_eq!(r.texp(&tuple![35]), Some(t(10)));
    }

    #[test]
    fn project_at_time_10_matches_figure_2d() {
        let r = project(&pol(), &[1], t(10)).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.texp(&tuple![25]), Some(t(15)));
    }

    #[test]
    fn product_takes_min_texp() {
        let r = product(&pol(), &el(), Time::ZERO).unwrap();
        assert_eq!(r.len(), 9);
        assert_eq!(r.texp(&tuple![1, 25, 1, 75]), Some(t(5)));
        assert_eq!(r.texp(&tuple![2, 25, 4, 90]), Some(t(2)));
        assert_eq!(r.arity(), 4);
    }

    #[test]
    fn join_matches_figure_2e_to_2g() {
        // Pol ⋈exp_{1=3} El: uid = uid.
        let p = Predicate::attr_eq_attr(0, 2);
        let r0 = join(&pol(), &el(), &p, Time::ZERO).unwrap();
        assert_eq!(r0.len(), 2);
        assert_eq!(r0.texp(&tuple![1, 25, 1, 75]), Some(t(5)));
        assert_eq!(r0.texp(&tuple![2, 25, 2, 85]), Some(t(3)));

        let r3 = join(&pol(), &el(), &p, t(3)).unwrap();
        assert_eq!(r3.len(), 1);
        assert_eq!(r3.texp(&tuple![1, 25, 1, 75]), Some(t(5)));

        let r5 = join(&pol(), &el(), &p, t(5)).unwrap();
        assert!(r5.is_empty(), "Figure 2(g): the query is empty at time 5");
    }

    #[test]
    fn hash_join_equals_nested_loop_on_equi_and_mixed_predicates() {
        let preds = vec![
            Predicate::attr_eq_attr(0, 2),
            Predicate::attr_eq_attr(0, 2).and(Predicate::attr_cmp_const(
                1,
                crate::predicate::CmpOp::Ge,
                25,
            )),
            Predicate::attr_eq_attr(0, 2).and(Predicate::attr_eq_attr(1, 3)),
            // No extractable key: nested loop on both sides of the check.
            Predicate::attr_eq_attr(0, 2).or(Predicate::attr_eq_const(1, 35)),
            Predicate::attr_cmp_const(1, crate::predicate::CmpOp::Lt, 90),
            Predicate::True,
            Predicate::False,
        ];
        for p in preds {
            for tau in [0u64, 3, 5, 10] {
                let a = join(&pol(), &el(), &p, t(tau)).unwrap();
                let b = join_nested_loop(&pol(), &el(), &p, t(tau)).unwrap();
                assert!(a.set_eq(&b), "{p} at {tau}: {a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn equi_keys_extraction() {
        let k = equi_keys(&Predicate::attr_eq_attr(0, 2), 2);
        assert_eq!(k, vec![(0, 0)]);
        // Reversed operand order still extracts.
        let k = equi_keys(&Predicate::attr_eq_attr(3, 1), 2);
        assert_eq!(k, vec![(1, 1)]);
        // Same-side equality contributes nothing.
        assert!(equi_keys(&Predicate::attr_eq_attr(0, 1), 2).is_empty());
        // Or at top level contributes nothing.
        assert!(equi_keys(&Predicate::attr_eq_attr(0, 2).or(Predicate::True), 2).is_empty());
        // Conjunction collects multiple keys and skips residuals.
        let k = equi_keys(
            &Predicate::attr_eq_attr(0, 2)
                .and(Predicate::attr_eq_attr(1, 3))
                .and(Predicate::attr_cmp_const(0, crate::predicate::CmpOp::Lt, 9)),
            2,
        );
        assert_eq!(k, vec![(0, 0), (1, 1)]);
    }

    #[test]
    fn union_takes_max_for_shared_tuples() {
        let mut a = Relation::new(Schema::of(&[("x", ValueType::Int)]));
        a.insert(tuple![1], t(5)).unwrap();
        a.insert(tuple![2], t(9)).unwrap();
        let mut b = Relation::new(Schema::of(&[("y", ValueType::Int)]));
        b.insert(tuple![1], t(8)).unwrap();
        b.insert(tuple![3], t(4)).unwrap();
        let u = union(&a, &b, Time::ZERO).unwrap();
        assert_eq!(u.len(), 3);
        assert_eq!(u.texp(&tuple![1]), Some(t(8)), "max of 5 and 8");
        assert_eq!(u.texp(&tuple![2]), Some(t(9)));
        assert_eq!(u.texp(&tuple![3]), Some(t(4)));
    }

    #[test]
    fn union_requires_compatibility() {
        let a = Relation::new(Schema::of(&[("x", ValueType::Int)]));
        let b = Relation::new(Schema::of(&[("y", ValueType::Str)]));
        assert!(union(&a, &b, Time::ZERO).is_err());
        assert!(intersect(&a, &b, Time::ZERO).is_err());
        assert!(difference(&a, &b, Time::ZERO).is_err());
    }

    #[test]
    fn intersect_takes_min_for_shared_tuples() {
        let mut a = Relation::new(Schema::of(&[("x", ValueType::Int)]));
        a.insert(tuple![1], t(5)).unwrap();
        a.insert(tuple![2], t(9)).unwrap();
        let mut b = Relation::new(Schema::of(&[("x", ValueType::Int)]));
        b.insert(tuple![1], t(8)).unwrap();
        let i = intersect(&a, &b, Time::ZERO).unwrap();
        assert_eq!(i.len(), 1);
        assert_eq!(i.texp(&tuple![1]), Some(t(5)), "min of 5 and 8");
        // Expired S-copy excludes the tuple.
        let i8 = intersect(&a, &b, t(8)).unwrap();
        assert!(i8.is_empty());
    }

    #[test]
    fn difference_figure_3b_to_3d() {
        // πexp_1(Pol) −exp πexp_1(El): uids {1@10, 2@15, 3@10} − {1@5, 2@3, 4@2}.
        let pr = project(&pol(), &[0], Time::ZERO).unwrap();
        let er = project(&el(), &[0], Time::ZERO).unwrap();

        let d0 = difference(&pr, &er, Time::ZERO).unwrap();
        assert_eq!(d0.len(), 1, "Figure 3(b): only ⟨3⟩ at time 0");
        assert_eq!(d0.texp(&tuple![3]), Some(t(10)));

        let d3 = difference(&pr, &er, t(3)).unwrap();
        assert_eq!(d3.len(), 2, "Figure 3(c): ⟨2⟩, ⟨3⟩ at time 3");
        assert!(d3.contains(&tuple![2]) && d3.contains(&tuple![3]));

        let d5 = difference(&pr, &er, t(5)).unwrap();
        assert_eq!(d5.len(), 3, "Figure 3(d): ⟨1⟩, ⟨2⟩, ⟨3⟩ at time 5");
    }

    #[test]
    fn critical_tuples_of_figure_3() {
        let pr = project(&pol(), &[0], Time::ZERO).unwrap();
        let er = project(&el(), &[0], Time::ZERO).unwrap();
        let mut crit = critical_tuples(&pr, &er, Time::ZERO);
        crit.sort_by_key(|c| c.appears_at);
        assert_eq!(crit.len(), 2);
        assert_eq!(
            crit[0],
            CriticalTuple {
                tuple: tuple![2],
                appears_at: t(3),
                disappears_at: t(15),
            }
        );
        assert_eq!(
            crit[1],
            CriticalTuple {
                tuple: tuple![1],
                appears_at: t(5),
                disappears_at: t(10),
            }
        );
    }

    #[test]
    fn difference_meta_of_figure_3() {
        let pr = project(&pol(), &[0], Time::ZERO).unwrap();
        let er = project(&el(), &[0], Time::ZERO).unwrap();
        let meta = difference_meta(&pr, &er, Time::ZERO);
        // "the expression is invalid from time 3 onwards"
        assert_eq!(meta.texp, t(3));
        // Exact holes: [3, 15[ ∪ [5, 10[ = [3, 15[.
        assert!(meta.validity.contains(t(2)));
        assert!(!meta.validity.contains(t(3)));
        assert!(!meta.validity.contains(t(14)));
        assert!(meta.validity.contains(t(15)));
        // Equation 12 coarse: hole [3, 15[ — identical here.
        assert_eq!(meta.validity, meta.validity_eq12);
    }

    #[test]
    fn exact_validity_beats_eq12_on_disjoint_holes() {
        let mut r = Relation::new(Schema::of(&[("x", ValueType::Int)]));
        r.insert(tuple![1], t(4)).unwrap(); // hole [2, 4[
        r.insert(tuple![2], t(20)).unwrap(); // hole [10, 20[
        let mut s = Relation::new(Schema::of(&[("x", ValueType::Int)]));
        s.insert(tuple![1], t(2)).unwrap();
        s.insert(tuple![2], t(10)).unwrap();
        let meta = difference_meta(&r, &s, Time::ZERO);
        assert!(meta.validity.contains(t(5)), "exact: valid between holes");
        assert!(!meta.validity_eq12.contains(t(5)), "Eq 12 blankets [2, 20[");
        assert_eq!(meta.texp, t(2));
    }

    #[test]
    fn difference_meta_without_critical_tuples_is_eternal() {
        let pr = project(&pol(), &[0], Time::ZERO).unwrap();
        let empty = Relation::new(pr.schema().clone());
        let meta = difference_meta(&pr, &empty, Time::ZERO);
        assert_eq!(meta.texp, Time::INFINITY);
        assert!(meta.validity.contains(t(1_000)));
        assert_eq!(meta.validity, meta.validity_eq12);
    }

    #[test]
    fn aggregate_keeps_input_tuples_and_appends_value() {
        // aggexp_{{2},count}(Pol) at time 0 (paper Section 2.7 / Fig 3a
        // before the projection).
        let a = aggregate(&pol(), &[1], AggFunc::Count, AggMode::Naive, Time::ZERO).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a.arity(), 3);
        assert!(a.contains(&tuple![1, 25, 2]));
        assert!(a.contains(&tuple![2, 25, 2]));
        assert!(a.contains(&tuple![3, 35, 1]));
    }

    #[test]
    fn aggregate_naive_texp_matches_figure_3a() {
        // Under Equation 8, ⟨25,2⟩-rows expire at min(10,15) = 10 and the
        // projected histogram "⟨25, 2⟩ expires" at 10 — making the result
        // invalid from 10 (it should contain ⟨25, 1⟩).
        let a = aggregate(&pol(), &[1], AggFunc::Count, AggMode::Naive, Time::ZERO).unwrap();
        assert_eq!(a.texp(&tuple![1, 25, 2]), Some(t(10)));
        assert_eq!(a.texp(&tuple![2, 25, 2]), Some(t(10)));
        assert_eq!(a.texp(&tuple![3, 35, 1]), Some(t(10)));
        let hist = project(&a, &[1, 2], Time::ZERO).unwrap();
        assert_eq!(hist.len(), 2);
        assert_eq!(hist.texp(&tuple![25, 2]), Some(t(10)));
        assert_eq!(hist.texp(&tuple![35, 1]), Some(t(10)));
    }

    #[test]
    fn aggregate_exact_mode_same_texp_per_partition() {
        let a = aggregate(&pol(), &[1], AggFunc::Count, AggMode::Exact, Time::ZERO).unwrap();
        // Count of deg-25 partition changes at 10 (2 → 1): same as naive
        // here, but by the ν machinery.
        assert_eq!(a.texp(&tuple![1, 25, 2]), Some(t(10)));
        assert_eq!(a.texp(&tuple![2, 25, 2]), Some(t(10)));
    }

    #[test]
    fn aggregate_exact_outlives_naive_for_min() {
        // Partition: min 10 pinned until 20; short-lived larger value at 5.
        let mut r = Relation::new(Schema::of(&[("g", ValueType::Int), ("v", ValueType::Int)]));
        r.insert(tuple![1, 10], t(20)).unwrap();
        r.insert(tuple![1, 30], t(5)).unwrap();
        let naive = aggregate(&r, &[0], AggFunc::Min(1), AggMode::Naive, Time::ZERO).unwrap();
        let exact = aggregate(&r, &[0], AggFunc::Min(1), AggMode::Exact, Time::ZERO).unwrap();
        assert_eq!(naive.texp(&tuple![1, 10, 10]), Some(t(5)));
        assert_eq!(exact.texp(&tuple![1, 10, 10]), Some(t(20)));
    }

    #[test]
    fn aggregate_meta_partition_death_does_not_invalidate() {
        // Single-tuple partitions: every change is a death → expression
        // never invalidates.
        let mut r = Relation::new(Schema::of(&[("g", ValueType::Int)]));
        r.insert(tuple![1], t(4)).unwrap();
        r.insert(tuple![2], t(7)).unwrap();
        let meta = aggregate_meta(&r, &[0], AggFunc::Count, AggMode::Exact, Time::ZERO).unwrap();
        assert_eq!(meta.texp, Time::INFINITY);
        assert!(meta.validity.contains(t(100)));
    }

    #[test]
    fn aggregate_meta_live_change_invalidates() {
        // Figure 3(a): deg-25 partition's count changes at 10 while ⟨2,25⟩
        // is still alive → expression invalid from 10.
        let meta =
            aggregate_meta(&pol(), &[1], AggFunc::Count, AggMode::Exact, Time::ZERO).unwrap();
        assert_eq!(meta.texp, t(10));
        assert!(meta.validity.contains(t(9)));
        assert!(!meta.validity.contains(t(10)));
        // After 15 everything is dead → valid again (Schrödinger).
        assert!(meta.validity.contains(t(15)));
    }

    #[test]
    fn aggregate_result_rows_never_outlive_their_base() {
        // min = 0 pinned by a long-lived row: the partition bound (ν) is
        // the partition death at 20, but the short-lived row's result
        // must still die with its base at 5.
        let mut r = Relation::new(Schema::of(&[("g", ValueType::Int), ("v", ValueType::Int)]));
        r.insert(tuple![1, 0], t(20)).unwrap();
        r.insert(tuple![1, 3], t(5)).unwrap();
        for mode in [AggMode::Naive, AggMode::Contributing, AggMode::Exact] {
            let out = aggregate(&r, &[0], AggFunc::Min(1), mode, Time::ZERO).unwrap();
            let short = out.texp(&tuple![1, 3, 0]).unwrap();
            assert!(short <= t(5), "{mode:?}: result row outlives base: {short}");
        }
        // Exact mode: the long-lived row keeps the full ν lifetime.
        let out = aggregate(&r, &[0], AggFunc::Min(1), AggMode::Exact, Time::ZERO).unwrap();
        assert_eq!(out.texp(&tuple![1, 0, 0]), Some(t(20)));
        assert_eq!(out.texp(&tuple![1, 3, 0]), Some(t(5)));
        // Sweep: materialised (unprojected!) aggregate equals fresh
        // evaluation at every instant while texp(e) = ∞ (no live change).
        let meta = aggregate_meta(&r, &[0], AggFunc::Min(1), AggMode::Exact, Time::ZERO).unwrap();
        assert_eq!(meta.texp, Time::INFINITY);
        for now in 0..25 {
            let fresh = aggregate(&r, &[0], AggFunc::Min(1), AggMode::Exact, t(now)).unwrap();
            assert!(
                out.set_eq_at(&fresh, t(now)),
                "at {now}: {:?} vs {:?}",
                out.exp(t(now)),
                fresh
            );
        }
    }

    #[test]
    fn aggregate_meta_excludes_value_return_intervals() {
        // sum: 8 on [0,3[, 3 on [3,7[, 8 again on [7,9[, dead after 9.
        // The materialised rows expired at 3 and cannot come back, so the
        // return interval [7,9[ must NOT be claimed valid.
        let mut r = Relation::new(Schema::of(&[("g", ValueType::Int), ("v", ValueType::Int)]));
        r.insert(tuple![1, 5], t(3)).unwrap();
        r.insert(tuple![1, -5], t(7)).unwrap();
        r.insert(tuple![1, 8], t(9)).unwrap();
        let meta = aggregate_meta(&r, &[0], AggFunc::Sum(1), AggMode::Exact, Time::ZERO).unwrap();
        assert!(meta.validity.contains(t(2)));
        assert!(!meta.validity.contains(t(4)));
        assert!(
            !meta.validity.contains(t(7)),
            "value returned but rows are gone"
        );
        assert!(!meta.validity.contains(t(8)));
        assert!(
            meta.validity.contains(t(9)),
            "partition dead: both sides empty"
        );
        // And the claim is verified against reality.
        let out = aggregate(&r, &[0], AggFunc::Sum(1), AggMode::Exact, Time::ZERO).unwrap();
        for now in 0..12 {
            let fresh = aggregate(&r, &[0], AggFunc::Sum(1), AggMode::Exact, t(now)).unwrap();
            let agree = out.tuples_eq_at(&fresh, t(now));
            assert_eq!(
                meta.validity.contains(t(now)),
                agree,
                "validity claim wrong at {now}"
            );
        }
    }

    #[test]
    fn aggregate_sum_values() {
        let a = aggregate(&pol(), &[1], AggFunc::Sum(0), AggMode::Naive, Time::ZERO).unwrap();
        // deg=25 partition: uids 1+2 = 3; deg=35: uid 3.
        assert!(a.contains(&tuple![1, 25, 3]));
        assert!(a.contains(&tuple![3, 35, 3]));
    }

    #[test]
    fn aggregate_validates_positions() {
        assert!(matches!(
            aggregate(&pol(), &[9], AggFunc::Count, AggMode::Naive, Time::ZERO),
            Err(Error::AttributeOutOfRange { .. })
        ));
        assert!(aggregate(&pol(), &[0], AggFunc::Sum(9), AggMode::Naive, Time::ZERO).is_err());
    }

    #[test]
    fn empty_inputs_produce_empty_outputs() {
        let empty = Relation::new(pol().schema().clone());
        assert!(select(&empty, &Predicate::True, Time::ZERO)
            .unwrap()
            .is_empty());
        assert!(project(&empty, &[0], Time::ZERO).unwrap().is_empty());
        assert!(product(&empty, &pol(), Time::ZERO).unwrap().is_empty());
        assert!(union(&empty, &empty, Time::ZERO).unwrap().is_empty());
        assert!(difference(&empty, &pol(), Time::ZERO).unwrap().is_empty());
        assert!(
            aggregate(&empty, &[0], AggFunc::Count, AggMode::Naive, Time::ZERO)
                .unwrap()
                .is_empty()
        );
        let meta =
            aggregate_meta(&empty, &[0], AggFunc::Count, AggMode::Exact, Time::ZERO).unwrap();
        assert_eq!(meta.texp, Time::INFINITY);
    }

    #[test]
    fn all_infinite_texp_degenerates_to_textbook_algebra() {
        // "if all tuples are assigned expiration time ∞ then the algebra
        // operators work like their textbook equivalents."
        let mut r = Relation::new(Schema::of(&[("x", ValueType::Int)]));
        let mut s = Relation::new(Schema::of(&[("x", ValueType::Int)]));
        for i in 0..5 {
            r.insert(tuple![i], Time::INFINITY).unwrap();
        }
        for i in 3..8 {
            s.insert(tuple![i], Time::INFINITY).unwrap();
        }
        let far = t(1_000_000);
        let u = union(&r, &s, far).unwrap();
        assert_eq!(u.len(), 8);
        let i = intersect(&r, &s, far).unwrap();
        assert_eq!(i.len(), 2);
        let d = difference(&r, &s, far).unwrap();
        assert_eq!(d.len(), 3);
        for rel in [&u, &i, &d] {
            assert!(rel.iter().all(|(_, e)| e.is_infinite()));
        }
        let meta = difference_meta(&r, &s, far);
        assert_eq!(meta.texp, Time::INFINITY);
        assert_eq!(
            Value::Int(5),
            aggregate(&r, &[], AggFunc::Count, AggMode::Exact, far)
                .unwrap()
                .iter()
                .next()
                .unwrap()
                .0
                .attr(1)
                .clone()
        );
    }
}
