//! Evaluation of algebra expressions into materialised results.
//!
//! [`eval`] materialises an expression `e` against a [`Catalog`] at a time
//! `τ`, producing a [`Materialized`]:
//!
//! * the result relation, each tuple carrying the expiration time the
//!   paper's operator definitions assign;
//! * `texp(e)` — the expression's expiration time, "a lower bound on the
//!   time when the materialised expression is no longer correct due to
//!   expiration of underlying tuples" (Section 2.2). For monotonic
//!   expressions this is `∞` (Theorem 1); for aggregation and difference it
//!   follows Section 2.6;
//! * `I(e)` — the Schrödinger validity interval set (Section 3.4): the
//!   instants at which the materialised result, expired forward, equals a
//!   fresh recomputation;
//! * optionally a [`PatchQueue`] that makes a root-level difference
//!   eternally maintainable (Theorem 3).

use crate::aggregate::AggMode;
use crate::algebra::expr::Expr;
use crate::algebra::ops;
use crate::catalog::Catalog;
use crate::error::Result;
use crate::interval::IntervalSet;
use crate::patch::PatchQueue;
use crate::relation::Relation;
use crate::time::Time;

/// Options controlling evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalOptions {
    /// How aggregation result tuples get their expiration times
    /// (default [`AggMode::Exact`]).
    pub agg_mode: AggMode,
    /// If the expression's *root* is a difference, build the Theorem 3
    /// patch queue: the result then has `texp(e)` independent of critical
    /// tuples and is maintained by applying due patches instead of
    /// recomputation. (Patching an inner difference would require
    /// propagating insertions through the operators above it — classic
    /// incremental view maintenance, out of the paper's scope; the paper's
    /// Section 3.1 instead suggests *pulling up* non-monotonic operators,
    /// which the rewriter implements.)
    pub patch_root_difference: bool,
    /// Bound on the Theorem 3 patch queue. The paper (Section 3.4.2)
    /// notes that sizing the queue "is a classic trade-off decision
    /// between saving future communication and time/space": with a cap,
    /// only the `k` earliest-reappearing critical tuples are queued, and
    /// the expression's `texp(e)` is the reappearance time of the first
    /// critical tuple that did NOT fit — the view patches locally until
    /// then, then recomputes (rebuilding the queue). `None` queues
    /// everything (full Theorem 3: `texp(e)` independent of critical
    /// tuples).
    pub patch_queue_cap: Option<usize>,
    /// Use the coarse Equation 12 validity for differences instead of the
    /// exact per-tuple holes. The exact set is a superset; Equation 12 is
    /// kept for paper-faithful comparison (experiment E7).
    pub eq12_validity: bool,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            agg_mode: AggMode::Exact,
            patch_root_difference: false,
            patch_queue_cap: None,
            eq12_validity: false,
        }
    }
}

/// A materialised expression: the result of [`eval`].
#[derive(Debug, Clone)]
pub struct Materialized {
    /// The result relation with per-tuple expiration times.
    pub rel: Relation,
    /// The time `τ` at which the expression was materialised.
    pub at: Time,
    /// `texp(e)`: the expression expires — becomes potentially incorrect
    /// under pure expiration — at this time. `∞` for monotonic
    /// expressions.
    pub texp: Time,
    /// `I(e)`: the Schrödinger validity intervals, a subset of `[τ, ∞[`.
    /// `[τ, texp(e)[` is always covered.
    pub validity: IntervalSet,
    /// The Theorem 3 patch queue, present only when
    /// [`EvalOptions::patch_root_difference`] was set and the root is a
    /// difference.
    pub patches: Option<PatchQueue>,
}

impl Materialized {
    /// Whether the materialisation, expired forward, is still guaranteed
    /// correct at `t` under the single-expiration-time model
    /// (`t < texp(e)`).
    #[must_use]
    pub fn fresh_at(&self, t: Time) -> bool {
        t >= self.at && t < self.texp
    }

    /// Whether the materialisation is correct at `t` under Schrödinger
    /// semantics (validity intervals).
    #[must_use]
    pub fn valid_at(&self, t: Time) -> bool {
        self.validity.contains(t)
    }

    /// The result as seen at time `t ≥ at`: the unexpired portion, with
    /// due patches applied first if a patch queue is present.
    pub fn read_at(&mut self, t: Time) -> Relation {
        if let Some(q) = &mut self.patches {
            q.apply_due(&mut self.rel, t);
        }
        self.rel.exp(t)
    }
}

struct Sub {
    rel: Relation,
    texp: Time,
    validity: IntervalSet,
}

fn eval_rec(expr: &Expr, catalog: &Catalog, tau: Time, opts: &EvalOptions) -> Result<Sub> {
    let full = IntervalSet::from_time(tau);
    Ok(match expr {
        Expr::Base(name) => Sub {
            rel: catalog.get(name)?.exp(tau),
            // "The expiration time of a base relation is defined to be
            // infinity."
            texp: Time::INFINITY,
            validity: full,
        },
        Expr::Select { input, predicate } => {
            let i = eval_rec(input, catalog, tau, opts)?;
            Sub {
                rel: ops::select(&i.rel, predicate, tau)?,
                texp: i.texp,
                validity: i.validity,
            }
        }
        Expr::Project { input, positions } => {
            let i = eval_rec(input, catalog, tau, opts)?;
            Sub {
                rel: ops::project(&i.rel, positions, tau)?,
                texp: i.texp,
                validity: i.validity,
            }
        }
        Expr::Product { left, right } => {
            let l = eval_rec(left, catalog, tau, opts)?;
            let r = eval_rec(right, catalog, tau, opts)?;
            Sub {
                rel: ops::product(&l.rel, &r.rel, tau)?,
                texp: l.texp.min(r.texp),
                validity: l.validity.intersect(&r.validity),
            }
        }
        Expr::Union { left, right } => {
            let l = eval_rec(left, catalog, tau, opts)?;
            let r = eval_rec(right, catalog, tau, opts)?;
            Sub {
                rel: ops::union(&l.rel, &r.rel, tau)?,
                texp: l.texp.min(r.texp),
                validity: l.validity.intersect(&r.validity),
            }
        }
        Expr::Join {
            left,
            right,
            predicate,
        } => {
            let l = eval_rec(left, catalog, tau, opts)?;
            let r = eval_rec(right, catalog, tau, opts)?;
            Sub {
                rel: ops::join(&l.rel, &r.rel, predicate, tau)?,
                texp: l.texp.min(r.texp),
                validity: l.validity.intersect(&r.validity),
            }
        }
        Expr::Intersect { left, right } => {
            let l = eval_rec(left, catalog, tau, opts)?;
            let r = eval_rec(right, catalog, tau, opts)?;
            Sub {
                rel: ops::intersect(&l.rel, &r.rel, tau)?,
                texp: l.texp.min(r.texp),
                validity: l.validity.intersect(&r.validity),
            }
        }
        Expr::Difference { left, right } => {
            let l = eval_rec(left, catalog, tau, opts)?;
            let r = eval_rec(right, catalog, tau, opts)?;
            let meta = ops::difference_meta(&l.rel, &r.rel, tau);
            let own_validity = if opts.eq12_validity {
                meta.validity_eq12
            } else {
                meta.validity
            };
            Sub {
                rel: ops::difference(&l.rel, &r.rel, tau)?,
                // Equation 11 (with the texp_S reading; see
                // `DifferenceMeta::texp`): min of argument expirations and
                // the first critical reappearance.
                texp: l.texp.min(r.texp).min(meta.texp),
                validity: l.validity.intersect(&r.validity).intersect(&own_validity),
            }
        }
        Expr::Aggregate {
            input,
            group_by,
            func,
        } => {
            let i = eval_rec(input, catalog, tau, opts)?;
            let meta = ops::aggregate_meta(&i.rel, group_by, *func, opts.agg_mode, tau)?;
            Sub {
                rel: ops::aggregate(&i.rel, group_by, *func, opts.agg_mode, tau)?,
                texp: i.texp.min(meta.texp),
                validity: i.validity.intersect(&meta.validity),
            }
        }
    })
}

/// Theorem 3 root handling: materialises a root-level difference with a
/// patch queue, so the result never expires on account of critical tuples.
/// Shared by [`eval`] and the profiled evaluator
/// ([`crate::algebra::profile::eval_profiled`]).
///
/// # Panics
///
/// Debug-asserts that `expr` is a difference; callers match first.
pub(crate) fn eval_patched_root(
    expr: &Expr,
    catalog: &Catalog,
    tau: Time,
    opts: &EvalOptions,
) -> Result<Materialized> {
    let Expr::Difference { left, right } = expr else {
        unreachable!("eval_patched_root requires a root-level difference")
    };
    let l = eval_rec(left, catalog, tau, opts)?;
    let r = eval_rec(right, catalog, tau, opts)?;
    let rel = ops::difference(&l.rel, &r.rel, tau)?;
    let mut critical = ops::critical_tuples(&l.rel, &r.rel, tau);
    critical.sort_by_key(|c| c.appears_at);
    // Bounded queue: keep the k earliest reappearances; the first
    // dropped one caps texp(e) (the view must recompute then).
    let mut own_texp = Time::INFINITY;
    if let Some(cap) = opts.patch_queue_cap {
        if critical.len() > cap {
            own_texp = critical[cap].appears_at;
            critical.truncate(cap);
        }
    }
    let queue = PatchQueue::from_critical(critical);
    Ok(Materialized {
        rel,
        at: tau,
        texp: l.texp.min(r.texp).min(own_texp),
        validity: l.validity.intersect(&r.validity),
        patches: Some(queue),
    })
}

/// Materialises `expr` against `catalog` at time `τ`.
///
/// # Errors
///
/// Returns schema/type errors (unknown relations, bad positions,
/// incompatible schemas, non-numeric aggregation).
pub fn eval(expr: &Expr, catalog: &Catalog, tau: Time, opts: &EvalOptions) -> Result<Materialized> {
    // Theorem 3: a root-level difference with patching enabled keeps a
    // helper queue and never expires on account of critical tuples.
    if opts.patch_root_difference {
        if let Expr::Difference { .. } = expr {
            return eval_patched_root(expr, catalog, tau, opts);
        }
    }
    let sub = eval_rec(expr, catalog, tau, opts)?;
    Ok(Materialized {
        rel: sub.rel,
        at: tau,
        texp: sub.texp,
        validity: sub.validity,
        patches: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggFunc;
    use crate::predicate::Predicate;
    use crate::schema::Schema;
    use crate::tuple;
    use crate::value::ValueType;

    fn t(v: u64) -> Time {
        Time::new(v)
    }

    /// The Figure 1 catalog.
    fn catalog() -> Catalog {
        let schema = Schema::of(&[("uid", ValueType::Int), ("deg", ValueType::Int)]);
        let mut c = Catalog::new();
        c.register(
            "Pol",
            Relation::from_rows(
                schema.clone(),
                vec![
                    (tuple![1, 25], t(10)),
                    (tuple![2, 25], t(15)),
                    (tuple![3, 35], t(10)),
                ],
            )
            .unwrap(),
        );
        c.register(
            "El",
            Relation::from_rows(
                schema,
                vec![
                    (tuple![1, 75], t(5)),
                    (tuple![2, 85], t(3)),
                    (tuple![4, 90], t(2)),
                ],
            )
            .unwrap(),
        );
        c
    }

    #[test]
    fn monotonic_expressions_have_infinite_texp() {
        let c = catalog();
        let e = Expr::base("Pol")
            .join(Expr::base("El"), Predicate::attr_eq_attr(0, 2))
            .project([0, 1]);
        let m = eval(&e, &c, Time::ZERO, &EvalOptions::default()).unwrap();
        assert_eq!(m.texp, Time::INFINITY);
        assert!(m.valid_at(t(1_000_000)));
        assert!(m.fresh_at(t(42)));
    }

    #[test]
    fn theorem_1_join_sweep() {
        // expτ′(e) = expτ′(expτ(e)) for the Figure 2(e-g) join.
        let c = catalog();
        let e = Expr::base("Pol").join(Expr::base("El"), Predicate::attr_eq_attr(0, 2));
        let m0 = eval(&e, &c, Time::ZERO, &EvalOptions::default()).unwrap();
        for now in 0..20 {
            let now = t(now);
            let fresh = eval(&e, &c, now, &EvalOptions::default()).unwrap();
            assert!(
                m0.rel.set_eq_at(&fresh.rel, now),
                "Theorem 1 violated at {now}"
            );
        }
    }

    #[test]
    fn difference_texp_matches_figure_3() {
        let c = catalog();
        let e = Expr::base("Pol")
            .project([0])
            .difference(Expr::base("El").project([0]));
        let m = eval(&e, &c, Time::ZERO, &EvalOptions::default()).unwrap();
        assert_eq!(m.texp, t(3), "invalid from time 3 onwards");
        assert_eq!(m.rel.len(), 1);
        assert!(m.rel.contains(&tuple![3]));
        assert!(m.valid_at(t(2)));
        assert!(!m.valid_at(t(4)));
        assert!(m.valid_at(t(15)), "valid again after all criticals expire");
    }

    #[test]
    fn theorem_2_materialisation_valid_before_texp() {
        let c = catalog();
        let exprs = vec![
            Expr::base("Pol")
                .project([0])
                .difference(Expr::base("El").project([0])),
            Expr::base("Pol").aggregate([1], AggFunc::Count),
            Expr::base("Pol")
                .aggregate([1], AggFunc::Count)
                .project([1, 2]),
        ];
        for e in exprs {
            let m = eval(&e, &c, Time::ZERO, &EvalOptions::default()).unwrap();
            let mut now = Time::ZERO;
            while now < m.texp && now < t(30) {
                let fresh = eval(&e, &c, now, &EvalOptions::default()).unwrap();
                assert!(
                    m.rel.tuples_eq_at(&fresh.rel, now),
                    "Theorem 2 violated for {e} at {now}:\nmat {:?}\nfresh {:?}",
                    m.rel.exp(now),
                    fresh.rel.exp(now),
                );
                now = now.succ();
            }
        }
    }

    #[test]
    fn aggregate_texp_flows_into_expression() {
        let c = catalog();
        let e = Expr::base("Pol")
            .aggregate([1], AggFunc::Count)
            .project([1, 2]);
        let m = eval(&e, &c, Time::ZERO, &EvalOptions::default()).unwrap();
        // Figure 3(a): invalid from time 10 (count 25-group drops to 1).
        assert_eq!(m.texp, t(10));
        assert!(m.valid_at(t(9)));
        assert!(!m.valid_at(t(10)));
        assert!(m.valid_at(t(15)), "after total death, valid");
    }

    #[test]
    fn patched_root_difference_never_needs_recomputation() {
        let c = catalog();
        let e = Expr::base("Pol")
            .project([0])
            .difference(Expr::base("El").project([0]));
        let opts = EvalOptions {
            patch_root_difference: true,
            ..EvalOptions::default()
        };
        let mut m = eval(&e, &c, Time::ZERO, &opts).unwrap();
        assert_eq!(m.texp, Time::INFINITY, "Theorem 3");
        let q = m.patches.as_ref().expect("patch queue present");
        assert_eq!(q.len(), 2);
        // Sweep: read_at must equal fresh recomputation at every instant.
        for now in 0..20 {
            let now = t(now);
            let seen = m.read_at(now);
            let fresh = eval(&e, &c, now, &EvalOptions::default()).unwrap();
            assert!(
                seen.set_eq_at(&fresh.rel, now),
                "patched view wrong at {now}: {seen:?} vs {:?}",
                fresh.rel
            );
        }
    }

    #[test]
    fn eq12_validity_is_subset_of_exact() {
        let c = catalog();
        let e = Expr::base("Pol")
            .project([0])
            .difference(Expr::base("El").project([0]));
        let exact = eval(&e, &c, Time::ZERO, &EvalOptions::default()).unwrap();
        let coarse = eval(
            &e,
            &c,
            Time::ZERO,
            &EvalOptions {
                eq12_validity: true,
                ..EvalOptions::default()
            },
        )
        .unwrap();
        assert_eq!(
            coarse.validity.intersect(&exact.validity),
            coarse.validity,
            "Eq 12 ⊆ exact"
        );
    }

    #[test]
    fn validity_always_covers_up_to_texp() {
        let c = catalog();
        let exprs = vec![
            Expr::base("Pol")
                .project([0])
                .difference(Expr::base("El").project([0])),
            Expr::base("Pol").aggregate([1], AggFunc::Sum(0)),
            Expr::base("Pol").join(Expr::base("El"), Predicate::attr_eq_attr(0, 2)),
        ];
        for e in exprs {
            let m = eval(&e, &c, Time::ZERO, &EvalOptions::default()).unwrap();
            let mut now = Time::ZERO;
            while now < m.texp && now < t(40) {
                assert!(m.valid_at(now), "{e}: [τ, texp(e)[ must be valid at {now}");
                now = now.succ();
            }
        }
    }

    #[test]
    fn nested_non_monotonic_combines_texp() {
        let c = catalog();
        // (Pol − El-as-uid-rows) unioned with Pol: difference inside a
        // monotonic operator still caps the expression texp.
        let d = Expr::base("Pol")
            .project([0])
            .difference(Expr::base("El").project([0]));
        let e = d.union(Expr::base("Pol").project([0]));
        let m = eval(&e, &c, Time::ZERO, &EvalOptions::default()).unwrap();
        assert_eq!(m.texp, t(3));
    }

    #[test]
    fn errors_propagate() {
        let c = catalog();
        assert!(eval(
            &Expr::base("missing"),
            &c,
            Time::ZERO,
            &EvalOptions::default()
        )
        .is_err());
        assert!(eval(
            &Expr::base("Pol").project([9]),
            &c,
            Time::ZERO,
            &EvalOptions::default()
        )
        .is_err());
    }

    #[test]
    fn bounded_patch_queue_caps_texp_at_first_dropped_critical() {
        let c = catalog();
        let e = Expr::base("Pol")
            .project([0])
            .difference(Expr::base("El").project([0]));
        // Critical reappearances at 3 (⟨2⟩) and 5 (⟨1⟩). Cap 1 keeps the
        // earliest; texp(e) = 5, the dropped tuple's reappearance.
        let opts = EvalOptions {
            patch_root_difference: true,
            patch_queue_cap: Some(1),
            ..EvalOptions::default()
        };
        let m = eval(&e, &c, Time::ZERO, &opts).unwrap();
        assert_eq!(m.patches.as_ref().unwrap().len(), 1);
        assert_eq!(m.texp, t(5));
        // Cap 0: no queue benefit; texp(e) = 3, like the unpatched case.
        let opts = EvalOptions {
            patch_queue_cap: Some(0),
            ..opts
        };
        let m = eval(&e, &c, Time::ZERO, &opts).unwrap();
        assert_eq!(m.texp, t(3));
        // Cap ≥ |critical|: full Theorem 3.
        let opts = EvalOptions {
            patch_queue_cap: Some(10),
            ..opts
        };
        let m = eval(&e, &c, Time::ZERO, &opts).unwrap();
        assert_eq!(m.texp, Time::INFINITY);
    }

    #[test]
    fn bounded_patched_view_stays_correct_via_recompute_fallback() {
        let c = catalog();
        let e = Expr::base("Pol")
            .project([0])
            .difference(Expr::base("El").project([0]));
        let opts = EvalOptions {
            patch_root_difference: true,
            patch_queue_cap: Some(1),
            ..EvalOptions::default()
        };
        let mut view = crate::materialize::MaterializedView::new(
            e.clone(),
            &c,
            Time::ZERO,
            opts,
            crate::materialize::RefreshPolicy::Patch,
            crate::materialize::RemovalPolicy::Lazy,
        )
        .unwrap();
        for now in 0..20 {
            let got = view.read(&c, t(now)).unwrap();
            let fresh = eval(&e, &c, t(now), &EvalOptions::default()).unwrap();
            assert!(got.set_eq(&fresh.rel.exp(t(now))), "at {now}");
        }
        // Exactly one recomputation (at 5, when the un-queued critical
        // tuple reappeared); the queued one was patched for free.
        assert_eq!(view.stats().recomputations, 1);
        assert_eq!(view.stats().patches_applied, 1);
    }

    #[test]
    fn patch_option_ignored_for_non_difference_root() {
        let c = catalog();
        let e = Expr::base("Pol").project([0]);
        let opts = EvalOptions {
            patch_root_difference: true,
            ..EvalOptions::default()
        };
        let m = eval(&e, &c, Time::ZERO, &opts).unwrap();
        assert!(m.patches.is_none());
    }
}
