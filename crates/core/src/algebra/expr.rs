//! The algebra expression AST.
//!
//! An [`Expr`] is a query: a tree of expiration-time algebra operators over
//! named base relations. Expressions are built with a fluent API
//! (`Expr::base("Pol").select(p).project([1])`), type-checked against a
//! [`Catalog`] via [`Expr::schema`], classified as monotonic or
//! non-monotonic (Section 2.5), and evaluated with [`super::eval::eval`].

use crate::aggregate::AggFunc;
use crate::catalog::Catalog;
use crate::error::{Error, Result};
use crate::predicate::Predicate;
use crate::schema::Schema;
use std::fmt;

/// An expiration-time algebra expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A named base relation.
    Base(String),
    /// `σexp_p(input)` — Equation 1.
    Select {
        /// Input expression.
        input: Box<Expr>,
        /// Selection predicate.
        predicate: Predicate,
    },
    /// `πexp_{j1,…,jn}(input)` — Equation 3 (zero-based positions).
    Project {
        /// Input expression.
        input: Box<Expr>,
        /// Zero-based attribute positions to keep.
        positions: Vec<usize>,
    },
    /// `left ×exp right` — Equation 2.
    Product {
        /// Left input.
        left: Box<Expr>,
        /// Right input.
        right: Box<Expr>,
    },
    /// `left ∪exp right` — Equation 4.
    Union {
        /// Left input.
        left: Box<Expr>,
        /// Right input.
        right: Box<Expr>,
    },
    /// `left ⋈exp_p right` — Equation 5 (derived). The predicate addresses
    /// the concatenated attributes.
    Join {
        /// Left input.
        left: Box<Expr>,
        /// Right input.
        right: Box<Expr>,
        /// Join predicate over the concatenated attributes.
        predicate: Predicate,
    },
    /// `left ∩exp right` — Equation 6 (derived).
    Intersect {
        /// Left input.
        left: Box<Expr>,
        /// Right input.
        right: Box<Expr>,
    },
    /// `left −exp right` — Equation 10 (non-monotonic).
    Difference {
        /// Left input.
        left: Box<Expr>,
        /// Right input.
        right: Box<Expr>,
    },
    /// `aggexp_{j1,…,jn,f}(input)` — Equation 8 (non-monotonic).
    Aggregate {
        /// Input expression.
        input: Box<Expr>,
        /// Zero-based grouping attribute positions (SQL `GROUP BY`).
        group_by: Vec<usize>,
        /// The aggregate function.
        func: AggFunc,
    },
}

impl Expr {
    /// A base relation reference.
    #[must_use]
    pub fn base(name: impl Into<String>) -> Expr {
        Expr::Base(name.into())
    }

    /// `σexp_p(self)`.
    #[must_use]
    pub fn select(self, predicate: Predicate) -> Expr {
        Expr::Select {
            input: Box::new(self),
            predicate,
        }
    }

    /// `πexp_{positions}(self)` (zero-based).
    #[must_use]
    pub fn project(self, positions: impl Into<Vec<usize>>) -> Expr {
        Expr::Project {
            input: Box::new(self),
            positions: positions.into(),
        }
    }

    /// `self ×exp other`.
    #[must_use]
    pub fn product(self, other: Expr) -> Expr {
        Expr::Product {
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// `self ∪exp other`.
    #[must_use]
    pub fn union(self, other: Expr) -> Expr {
        Expr::Union {
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// `self ⋈exp_p other`.
    #[must_use]
    pub fn join(self, other: Expr, predicate: Predicate) -> Expr {
        Expr::Join {
            left: Box::new(self),
            right: Box::new(other),
            predicate,
        }
    }

    /// `self ∩exp other`.
    #[must_use]
    pub fn intersect(self, other: Expr) -> Expr {
        Expr::Intersect {
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// `self −exp other`.
    #[must_use]
    pub fn difference(self, other: Expr) -> Expr {
        Expr::Difference {
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// `aggexp_{group_by,func}(self)` (zero-based positions).
    #[must_use]
    pub fn aggregate(self, group_by: impl Into<Vec<usize>>, func: AggFunc) -> Expr {
        Expr::Aggregate {
            input: Box::new(self),
            group_by: group_by.into(),
            func,
        }
    }

    /// Infers and validates the result schema against a catalog. This is
    /// the static type check: every evaluation-time error except
    /// non-numeric aggregation data is caught here.
    ///
    /// # Errors
    ///
    /// Returns unknown-relation, out-of-range, or compatibility errors.
    pub fn schema(&self, catalog: &Catalog) -> Result<Schema> {
        match self {
            Expr::Base(name) => Ok(catalog.get(name)?.schema().clone()),
            Expr::Select { input, predicate } => {
                let s = input.schema(catalog)?;
                predicate.validate(s.arity())?;
                Ok(s)
            }
            Expr::Project { input, positions } => input.schema(catalog)?.project(positions),
            Expr::Product { left, right } => {
                Ok(left.schema(catalog)?.product(&right.schema(catalog)?))
            }
            Expr::Join {
                left,
                right,
                predicate,
            } => {
                let s = left.schema(catalog)?.product(&right.schema(catalog)?);
                predicate.validate(s.arity())?;
                Ok(s)
            }
            Expr::Union { left, right }
            | Expr::Intersect { left, right }
            | Expr::Difference { left, right } => {
                let l = left.schema(catalog)?;
                let r = right.schema(catalog)?;
                if l.union_compatible(&r) {
                    Ok(l)
                } else {
                    Err(Error::NotUnionCompatible {
                        left: format!("{l:?}"),
                        right: format!("{r:?}"),
                    })
                }
            }
            Expr::Aggregate {
                input,
                group_by,
                func,
            } => {
                let s = input.schema(catalog)?;
                for &j in group_by {
                    if j >= s.arity() {
                        return Err(Error::AttributeOutOfRange {
                            index: j,
                            arity: s.arity(),
                        });
                    }
                }
                func.validate(s.arity())?;
                let input_ty = func.attribute().map(|i| s.attr(i).ty);
                Ok(s.append(&func.to_string(), func.result_type(input_ty)))
            }
        }
    }

    /// Whether the expression is monotonic (Section 2.5): composed solely
    /// of select, project, product, union, and the derived join and
    /// intersection. Monotonic expressions satisfy Theorem 1 — their
    /// materialised results stay valid forever under expiration
    /// (`texp(e) = ∞`) and never need recomputation.
    #[must_use]
    pub fn is_monotonic(&self) -> bool {
        match self {
            Expr::Base(_) => true,
            Expr::Select { input, .. } | Expr::Project { input, .. } => input.is_monotonic(),
            Expr::Product { left, right }
            | Expr::Union { left, right }
            | Expr::Join { left, right, .. }
            | Expr::Intersect { left, right } => left.is_monotonic() && right.is_monotonic(),
            Expr::Difference { .. } | Expr::Aggregate { .. } => false,
        }
    }

    /// The names of all base relations referenced, deduplicated, in
    /// first-reference order. The view manager uses this for dependency
    /// tracking.
    #[must_use]
    pub fn base_names(&self) -> Vec<String> {
        let mut names = Vec::new();
        self.collect_bases(&mut names);
        names
    }

    fn collect_bases(&self, out: &mut Vec<String>) {
        match self {
            Expr::Base(n) => {
                if !out.iter().any(|m| m.eq_ignore_ascii_case(n)) {
                    out.push(n.clone());
                }
            }
            Expr::Select { input, .. }
            | Expr::Project { input, .. }
            | Expr::Aggregate { input, .. } => input.collect_bases(out),
            Expr::Product { left, right }
            | Expr::Union { left, right }
            | Expr::Join { left, right, .. }
            | Expr::Intersect { left, right }
            | Expr::Difference { left, right } => {
                left.collect_bases(out);
                right.collect_bases(out);
            }
        }
    }

    /// Number of operator nodes (excluding base references).
    #[must_use]
    pub fn op_count(&self) -> usize {
        match self {
            Expr::Base(_) => 0,
            Expr::Select { input, .. }
            | Expr::Project { input, .. }
            | Expr::Aggregate { input, .. } => 1 + input.op_count(),
            Expr::Product { left, right }
            | Expr::Union { left, right }
            | Expr::Join { left, right, .. }
            | Expr::Intersect { left, right }
            | Expr::Difference { left, right } => 1 + left.op_count() + right.op_count(),
        }
    }

    /// Number of non-monotonic operator nodes (aggregations and
    /// differences). Zero iff [`Expr::is_monotonic`].
    #[must_use]
    pub fn non_monotonic_count(&self) -> usize {
        match self {
            Expr::Base(_) => 0,
            Expr::Select { input, .. } | Expr::Project { input, .. } => input.non_monotonic_count(),
            Expr::Aggregate { input, .. } => 1 + input.non_monotonic_count(),
            Expr::Product { left, right }
            | Expr::Union { left, right }
            | Expr::Join { left, right, .. }
            | Expr::Intersect { left, right } => {
                left.non_monotonic_count() + right.non_monotonic_count()
            }
            Expr::Difference { left, right } => {
                1 + left.non_monotonic_count() + right.non_monotonic_count()
            }
        }
    }
}

impl fmt::Display for Expr {
    /// Renders the expression in the paper's notation, with one-based
    /// attribute positions: `πexp_{2,3}(aggexp_{{2},count}(Pol))`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Base(n) => write!(f, "{n}"),
            Expr::Select { input, predicate } => write!(f, "σexp[{predicate}]({input})"),
            Expr::Project { input, positions } => {
                write!(f, "πexp_{{")?;
                for (i, p) in positions.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}", p + 1)?;
                }
                write!(f, "}}({input})")
            }
            Expr::Product { left, right } => write!(f, "({left} ×exp {right})"),
            Expr::Union { left, right } => write!(f, "({left} ∪exp {right})"),
            Expr::Join {
                left,
                right,
                predicate,
            } => write!(f, "({left} ⋈exp[{predicate}] {right})"),
            Expr::Intersect { left, right } => write!(f, "({left} ∩exp {right})"),
            Expr::Difference { left, right } => write!(f, "({left} −exp {right})"),
            Expr::Aggregate {
                input,
                group_by,
                func,
            } => {
                write!(f, "aggexp_{{{{")?;
                for (i, p) in group_by.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}", p + 1)?;
                }
                write!(f, "}},{func}}}({input})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Relation;
    use crate::time::Time;
    use crate::tuple;
    use crate::value::ValueType;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let schema = Schema::of(&[("uid", ValueType::Int), ("deg", ValueType::Int)]);
        let mut pol = Relation::new(schema.clone());
        pol.insert(tuple![1, 25], Time::new(10)).unwrap();
        let el = Relation::new(schema);
        c.register("Pol", pol);
        c.register("El", el);
        c
    }

    #[test]
    fn builder_produces_expected_tree() {
        let e = Expr::base("Pol")
            .select(Predicate::attr_eq_const(1, 25))
            .project([0]);
        assert!(matches!(e, Expr::Project { .. }));
        assert_eq!(e.op_count(), 2);
    }

    #[test]
    fn schema_inference() {
        let c = catalog();
        assert_eq!(Expr::base("Pol").schema(&c).unwrap().arity(), 2);
        assert_eq!(
            Expr::base("Pol").project([1]).schema(&c).unwrap().arity(),
            1
        );
        assert_eq!(
            Expr::base("Pol")
                .product(Expr::base("El"))
                .schema(&c)
                .unwrap()
                .arity(),
            4
        );
        let agg = Expr::base("Pol").aggregate([1], AggFunc::Count);
        let s = agg.schema(&c).unwrap();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.attr(2).ty, ValueType::Int);
    }

    #[test]
    fn schema_errors() {
        let c = catalog();
        assert!(matches!(
            Expr::base("Nope").schema(&c),
            Err(Error::UnknownRelation(_))
        ));
        assert!(Expr::base("Pol").project([7]).schema(&c).is_err());
        assert!(Expr::base("Pol")
            .select(Predicate::attr_eq_attr(0, 5))
            .schema(&c)
            .is_err());
        assert!(Expr::base("Pol")
            .union(Expr::base("Pol").project([0]))
            .schema(&c)
            .is_err());
        assert!(Expr::base("Pol")
            .aggregate([9], AggFunc::Count)
            .schema(&c)
            .is_err());
        // Join predicate over the concatenated arity.
        assert!(Expr::base("Pol")
            .join(Expr::base("El"), Predicate::attr_eq_attr(0, 3))
            .schema(&c)
            .is_ok());
        assert!(Expr::base("Pol")
            .join(Expr::base("El"), Predicate::attr_eq_attr(0, 4))
            .schema(&c)
            .is_err());
    }

    #[test]
    fn monotonicity_classification() {
        let mono = Expr::base("Pol")
            .select(Predicate::True)
            .join(
                Expr::base("El").project([0, 1]),
                Predicate::attr_eq_attr(0, 2),
            )
            .intersect(Expr::base("Pol").product(Expr::base("El")));
        assert!(mono.is_monotonic());
        assert_eq!(mono.non_monotonic_count(), 0);

        let diff = Expr::base("Pol").difference(Expr::base("El"));
        assert!(!diff.is_monotonic());
        assert_eq!(diff.non_monotonic_count(), 1);

        let agg = Expr::base("Pol")
            .aggregate([1], AggFunc::Count)
            .project([1, 2]);
        assert!(!agg.is_monotonic());
        assert_eq!(agg.non_monotonic_count(), 1);

        let nested = diff.clone().union(agg);
        assert_eq!(nested.non_monotonic_count(), 2);
    }

    #[test]
    fn base_names_deduplicate() {
        let e = Expr::base("Pol")
            .difference(Expr::base("El"))
            .union(Expr::base("pol").project([0, 1]));
        assert_eq!(e.base_names(), vec!["Pol".to_string(), "El".to_string()]);
    }

    #[test]
    fn display_matches_paper_notation() {
        let e = Expr::base("Pol")
            .aggregate([1], AggFunc::Count)
            .project([1, 2]);
        assert_eq!(e.to_string(), "πexp_{2,3}(aggexp_{{2},count}(Pol))");
        let d = Expr::base("Pol")
            .project([0])
            .difference(Expr::base("El").project([0]));
        assert_eq!(d.to_string(), "(πexp_{1}(Pol) −exp πexp_{1}(El))");
        let j = Expr::base("Pol").join(Expr::base("El"), Predicate::attr_eq_attr(0, 2));
        assert_eq!(j.to_string(), "(Pol ⋈exp[#1 = #3] El)");
    }
}
