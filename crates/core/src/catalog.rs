//! A catalog of named base relations.
//!
//! Algebra expressions reference base relations by name; a [`Catalog`] is
//! the binding environment an expression is evaluated against. The engine
//! crate layers storage, triggers, and views on top; this minimal catalog is
//! what the algebra itself needs.

use crate::error::{Error, Result};
use crate::relation::Relation;
use std::collections::BTreeMap;

/// A name → relation binding environment.
///
/// Names are case-insensitive (stored lower-cased), matching the SQL layer.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    relations: BTreeMap<String, Relation>,
}

impl Catalog {
    /// An empty catalog.
    #[must_use]
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers (or replaces) a relation under `name`.
    pub fn register(&mut self, name: impl Into<String>, relation: Relation) {
        self.relations
            .insert(name.into().to_ascii_lowercase(), relation);
    }

    /// Removes a relation; returns it if it was present.
    pub fn deregister(&mut self, name: &str) -> Option<Relation> {
        self.relations.remove(&name.to_ascii_lowercase())
    }

    /// Looks up a relation.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownRelation`] if `name` is not registered.
    pub fn get(&self, name: &str) -> Result<&Relation> {
        self.relations
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| Error::UnknownRelation(name.to_string()))
    }

    /// Mutable lookup.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownRelation`] if `name` is not registered.
    pub fn get_mut(&mut self, name: &str) -> Result<&mut Relation> {
        self.relations
            .get_mut(&name.to_ascii_lowercase())
            .ok_or_else(|| Error::UnknownRelation(name.to_string()))
    }

    /// Whether `name` is registered.
    #[must_use]
    pub fn contains(&self, name: &str) -> bool {
        self.relations.contains_key(&name.to_ascii_lowercase())
    }

    /// Iterates `(name, relation)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Relation)> {
        self.relations.iter().map(|(n, r)| (n.as_str(), r))
    }

    /// Number of registered relations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Whether the catalog is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Eagerly expires tuples in every relation (Section 3.2), returning
    /// `(relation name, removed rows)` for trigger processing.
    pub fn expire_all(
        &mut self,
        tau: crate::time::Time,
    ) -> Vec<(String, Vec<(crate::tuple::Tuple, crate::time::Time)>)> {
        let mut out = Vec::new();
        for (name, rel) in &mut self.relations {
            let removed = rel.expire(tau);
            if !removed.is_empty() {
                out.push((name.clone(), removed));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::time::Time;
    use crate::tuple;
    use crate::value::ValueType;

    fn rel() -> Relation {
        let mut r = Relation::new(Schema::of(&[("a", ValueType::Int)]));
        r.insert(tuple![1], Time::new(5)).unwrap();
        r.insert(tuple![2], Time::INFINITY).unwrap();
        r
    }

    #[test]
    fn register_and_lookup_case_insensitive() {
        let mut c = Catalog::new();
        c.register("Pol", rel());
        assert!(c.contains("pol"));
        assert!(c.contains("POL"));
        assert_eq!(c.get("pOl").unwrap().len(), 2);
        assert!(matches!(c.get("el"), Err(Error::UnknownRelation(_))));
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
    }

    #[test]
    fn deregister() {
        let mut c = Catalog::new();
        c.register("r", rel());
        assert!(c.deregister("R").is_some());
        assert!(c.deregister("r").is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn get_mut_allows_updates() {
        let mut c = Catalog::new();
        c.register("r", rel());
        c.get_mut("r")
            .unwrap()
            .insert(tuple![3], Time::new(9))
            .unwrap();
        assert_eq!(c.get("r").unwrap().len(), 3);
    }

    #[test]
    fn expire_all_reports_per_relation() {
        let mut c = Catalog::new();
        c.register("r", rel());
        c.register("s", rel());
        let removed = c.expire_all(Time::new(5));
        assert_eq!(removed.len(), 2);
        for (_, rows) in &removed {
            assert_eq!(rows.len(), 1);
            assert_eq!(rows[0].0, tuple![1]);
        }
        assert_eq!(c.get("r").unwrap().len(), 1);
        // Nothing left to expire.
        assert!(c.expire_all(Time::new(100)).is_empty());
    }

    #[test]
    fn iter_is_name_ordered() {
        let mut c = Catalog::new();
        c.register("zeta", rel());
        c.register("Alpha", rel());
        let names: Vec<_> = c.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }
}
