//! Algebraic rewriting to postpone recomputation (paper Section 3.1).
//!
//! Two goals, both from the paper:
//!
//! 1. **Shrink the critical set** `{t | t ∈ R ∧ t ∈ S ∧ texp_R(t) >
//!    texp_S(t)}` of a difference, "which causes recomputations to happen":
//!    pushing selections below a difference filters critical tuples away,
//!    so the materialised expression's expiration time `texp(e)` moves
//!    later (experiment E8 quantifies this).
//! 2. **Pull up non-monotonic operators** "to reduce the effects of
//!    recomputations on operators that depend on them" — and, in this
//!    implementation, to surface differences at the *root*, where the
//!    Theorem 3 patch queue applies and recomputation disappears entirely.
//!
//! Every rule preserves the expiration-time semantics exactly: result
//! tuples and their expiration times are identical at every time `τ`
//! (property-tested in `tests/prop_algebra.rs`).

use crate::algebra::Expr;
use crate::predicate::Predicate;

/// Maximum rewrite passes; each pass applies every rule bottom-up once.
/// Rewriting strictly reduces the depth of selections or merges them, so a
/// small cap suffices; it exists only to make non-termination impossible.
const MAX_PASSES: usize = 32;

/// Rewrites an expression to a fixpoint of the rules below. The result is
/// semantically identical at every evaluation time.
///
/// Rules (all selections push *down*, lifting non-monotonic operators
/// *up*):
///
/// * `σ_p(σ_q(e))        → σ_{q∧p}(e)`
/// * `σ_p(e₁ −exp e₂)    → σ_p(e₁) −exp σ_p(e₂)`
/// * `σ_p(e₁ ∪exp e₂)    → σ_p(e₁) ∪exp σ_p(e₂)`
/// * `σ_p(e₁ ∩exp e₂)    → σ_p(e₁) ∩exp σ_p(e₂)`
/// * `σ_p(π_J(e))        → π_J(σ_{p∘J}(e))` (when `p` only reads kept attributes)
/// * `σ_p(e₁ ×exp e₂)`   — conjuncts of `p` local to one side push into it
/// * `σ_p(e₁ ⋈exp_q e₂)` — merged into the join predicate, then side-local
///   conjuncts push into the inputs
/// * `σ_p(agg_{G,f}(e))  → agg_{G,f}(σ_{p}(e))` (when `p` only reads
///   grouping attributes — whole partitions are filtered, so values and
///   expiration times are untouched)
#[must_use]
pub fn rewrite(expr: &Expr) -> Expr {
    let mut current = expr.clone();
    for _ in 0..MAX_PASSES {
        let next = pass(&current);
        if next == current {
            return current;
        }
        current = next;
    }
    current
}

fn pass(expr: &Expr) -> Expr {
    // Rewrite children first, then the node itself.
    let node = match expr {
        Expr::Base(n) => Expr::Base(n.clone()),
        Expr::Select { input, predicate } => Expr::Select {
            input: Box::new(pass(input)),
            predicate: predicate.clone(),
        },
        Expr::Project { input, positions } => Expr::Project {
            input: Box::new(pass(input)),
            positions: positions.clone(),
        },
        Expr::Product { left, right } => Expr::Product {
            left: Box::new(pass(left)),
            right: Box::new(pass(right)),
        },
        Expr::Union { left, right } => Expr::Union {
            left: Box::new(pass(left)),
            right: Box::new(pass(right)),
        },
        Expr::Join {
            left,
            right,
            predicate,
        } => Expr::Join {
            left: Box::new(pass(left)),
            right: Box::new(pass(right)),
            predicate: predicate.clone(),
        },
        Expr::Intersect { left, right } => Expr::Intersect {
            left: Box::new(pass(left)),
            right: Box::new(pass(right)),
        },
        Expr::Difference { left, right } => Expr::Difference {
            left: Box::new(pass(left)),
            right: Box::new(pass(right)),
        },
        Expr::Aggregate {
            input,
            group_by,
            func,
        } => Expr::Aggregate {
            input: Box::new(pass(input)),
            group_by: group_by.clone(),
            func: *func,
        },
    };
    apply_node_rules(node)
}

/// Splits a predicate into its top-level conjuncts.
fn conjuncts(p: &Predicate) -> Vec<Predicate> {
    match p {
        Predicate::And(a, b) => {
            let mut out = conjuncts(a);
            out.extend(conjuncts(b));
            out
        }
        other => vec![other.clone()],
    }
}

/// Reassembles conjuncts; `None` means the empty conjunction (true).
fn conjoin(ps: Vec<Predicate>) -> Option<Predicate> {
    ps.into_iter().reduce(Predicate::and)
}

fn apply_node_rules(expr: Expr) -> Expr {
    let Expr::Select { input, predicate } = expr else {
        return expr;
    };
    match *input {
        // σ_p(σ_q(e)) → σ_{q ∧ p}(e)
        Expr::Select {
            input: inner,
            predicate: q,
        } => apply_node_rules(Expr::Select {
            input: inner,
            predicate: q.and(predicate),
        }),
        // σ_p(e1 − e2) → σ_p(e1) − σ_p(e2): shrinks the critical set.
        Expr::Difference { left, right } => Expr::Difference {
            left: Box::new(apply_node_rules(Expr::Select {
                input: left,
                predicate: predicate.clone(),
            })),
            right: Box::new(apply_node_rules(Expr::Select {
                input: right,
                predicate,
            })),
        },
        Expr::Union { left, right } => Expr::Union {
            left: Box::new(apply_node_rules(Expr::Select {
                input: left,
                predicate: predicate.clone(),
            })),
            right: Box::new(apply_node_rules(Expr::Select {
                input: right,
                predicate,
            })),
        },
        Expr::Intersect { left, right } => Expr::Intersect {
            left: Box::new(apply_node_rules(Expr::Select {
                input: left,
                predicate: predicate.clone(),
            })),
            right: Box::new(apply_node_rules(Expr::Select {
                input: right,
                predicate,
            })),
        },
        // σ_p(π_J(e)) → π_J(σ_{p∘J}(e)) when p reads only kept attributes.
        Expr::Project {
            input: inner,
            positions,
        } => match predicate.unproject(&positions) {
            Some(pushed) => Expr::Project {
                input: Box::new(apply_node_rules(Expr::Select {
                    input: inner,
                    predicate: pushed,
                })),
                positions,
            },
            None => Expr::Select {
                input: Box::new(Expr::Project {
                    input: inner,
                    positions,
                }),
                predicate,
            },
        },
        // σ_p(e1 × e2): push side-local conjuncts into the inputs.
        Expr::Product { left, right } => push_into_product(*left, *right, predicate, None),
        // σ_p(e1 ⋈_q e2): fold p into q, then push side-local conjuncts.
        Expr::Join {
            left,
            right,
            predicate: q,
        } => push_into_product(*left, *right, predicate, Some(q)),
        // σ_p(agg_{G,f}(e)) → agg_{G,f}(σ_p(e)) when p reads only grouping
        // attributes (it then filters whole partitions).
        Expr::Aggregate {
            input: inner,
            group_by,
            func,
        } => {
            let refs_only_groups = predicate_attrs(&predicate)
                .iter()
                .all(|a| group_by.contains(a));
            if refs_only_groups {
                Expr::Aggregate {
                    input: Box::new(apply_node_rules(Expr::Select {
                        input: inner,
                        predicate,
                    })),
                    group_by,
                    func,
                }
            } else {
                Expr::Select {
                    input: Box::new(Expr::Aggregate {
                        input: inner,
                        group_by,
                        func,
                    }),
                    predicate,
                }
            }
        }
        other => Expr::Select {
            input: Box::new(other),
            predicate,
        },
    }
}

fn push_into_product(
    left: Expr,
    right: Expr,
    selection: Predicate,
    join_pred: Option<Predicate>,
) -> Expr {
    // How many attributes does the left input contribute? We need its
    // arity; derive it structurally where possible. If we cannot (without a
    // catalog), fall back to not pushing.
    let Some(split) = static_arity(&left) else {
        return rebuild_product(left, right, selection, join_pred);
    };
    let mut all = conjuncts(&selection);
    if let Some(q) = &join_pred {
        all.extend(conjuncts(q));
    }
    let mut left_only = Vec::new();
    let mut right_only = Vec::new();
    let mut rest = Vec::new();
    for c in all {
        if c.only_refs_below(split) {
            left_only.push(c);
        } else if c.only_refs_at_or_above(split) {
            right_only.push(c.shift_attrs_down(split));
        } else {
            rest.push(c);
        }
    }
    let new_left = match conjoin(left_only) {
        Some(p) => apply_node_rules(Expr::Select {
            input: Box::new(left),
            predicate: p,
        }),
        None => left,
    };
    let new_right = match conjoin(right_only) {
        Some(p) => apply_node_rules(Expr::Select {
            input: Box::new(right),
            predicate: p,
        }),
        None => right,
    };
    match conjoin(rest) {
        Some(p) => Expr::Join {
            left: Box::new(new_left),
            right: Box::new(new_right),
            predicate: p,
        },
        None => Expr::Product {
            left: Box::new(new_left),
            right: Box::new(new_right),
        },
    }
}

fn rebuild_product(
    left: Expr,
    right: Expr,
    selection: Predicate,
    join_pred: Option<Predicate>,
) -> Expr {
    let inner = match join_pred {
        Some(q) => Expr::Join {
            left: Box::new(left),
            right: Box::new(right),
            predicate: q,
        },
        None => Expr::Product {
            left: Box::new(left),
            right: Box::new(right),
        },
    };
    Expr::Select {
        input: Box::new(inner),
        predicate: selection,
    }
}

/// Structurally-known output arity, without a catalog. `None` for base
/// relations (arity lives in the catalog) and anything built on them
/// without an arity-fixing operator.
fn static_arity(expr: &Expr) -> Option<usize> {
    match expr {
        Expr::Base(_) => None,
        Expr::Select { input, .. } => static_arity(input),
        Expr::Project { positions, .. } => Some(positions.len()),
        Expr::Product { left, right } | Expr::Join { left, right, .. } => {
            Some(static_arity(left)? + static_arity(right)?)
        }
        Expr::Union { left, right }
        | Expr::Intersect { left, right }
        | Expr::Difference { left, right } => static_arity(left).or_else(|| static_arity(right)),
        Expr::Aggregate { input, .. } => Some(static_arity(input)? + 1),
    }
}

/// Attribute positions referenced by a predicate.
fn predicate_attrs(p: &Predicate) -> Vec<usize> {
    fn go(p: &Predicate, out: &mut Vec<usize>) {
        match p {
            Predicate::True | Predicate::False => {}
            Predicate::Cmp { left, right, .. } => {
                for o in [left, right] {
                    if let crate::predicate::Operand::Attr(i) = o {
                        if !out.contains(i) {
                            out.push(*i);
                        }
                    }
                }
            }
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                go(a, out);
                go(b, out);
            }
            Predicate::Not(a) => go(a, out),
        }
    }
    let mut out = Vec::new();
    go(p, &mut out);
    out
}

impl Predicate {
    /// Shifts all attribute references *down* by `by` (inverse of
    /// [`Predicate::shift_attrs`]); callers must ensure every reference is
    /// `≥ by`.
    #[must_use]
    fn shift_attrs_down(&self, by: usize) -> Predicate {
        match self {
            Predicate::True => Predicate::True,
            Predicate::False => Predicate::False,
            Predicate::Cmp { left, op, right } => {
                let shift = |o: &crate::predicate::Operand| match o {
                    crate::predicate::Operand::Attr(i) => crate::predicate::Operand::Attr(i - by),
                    c => c.clone(),
                };
                Predicate::Cmp {
                    left: shift(left),
                    op: *op,
                    right: shift(right),
                }
            }
            Predicate::And(a, b) => Predicate::And(
                Box::new(a.shift_attrs_down(by)),
                Box::new(b.shift_attrs_down(by)),
            ),
            Predicate::Or(a, b) => Predicate::Or(
                Box::new(a.shift_attrs_down(by)),
                Box::new(b.shift_attrs_down(by)),
            ),
            Predicate::Not(a) => Predicate::Not(Box::new(a.shift_attrs_down(by))),
        }
    }
}

/// Whether the rewritten expression exposes a difference at the root —
/// the shape where the Theorem 3 patch queue eliminates recomputation.
#[must_use]
pub fn is_root_patchable(expr: &Expr) -> bool {
    matches!(expr, Expr::Difference { .. })
}

/// Position-sensitive monotonicity classification of a plan — a small
/// lattice ordered from best to worst. [`Expr::is_monotonic`] only says
/// *whether* a non-monotonic operator exists; for static analysis, *where*
/// it sits matters: a difference or aggregate at the root with monotonic
/// inputs is the shape Theorem 3 patches cheaply, while one buried under
/// other operators forces recomputation to cascade ("to reduce the effects
/// of recomputations on operators that depend on them" — Section 3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Monotonicity {
    /// Only monotonic operators (Theorem 1): materialisations stay valid
    /// forever.
    Monotonic,
    /// Exactly one non-monotonic operator, at the root, over monotonic
    /// inputs — the pulled-up shape the Theorem 3 patch queue handles.
    NonMonotonicRoot,
    /// Non-monotonic operator(s) below other operators: recomputations
    /// cascade upward. [`rewrite`] may be able to lift them.
    NonMonotonicInner,
}

impl Monotonicity {
    /// Lattice join: the worse of the two classifications.
    #[must_use]
    pub fn join(self, other: Monotonicity) -> Monotonicity {
        self.max(other)
    }
}

impl std::fmt::Display for Monotonicity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Monotonicity::Monotonic => write!(f, "monotonic"),
            Monotonicity::NonMonotonicRoot => write!(f, "non-monotonic (root)"),
            Monotonicity::NonMonotonicInner => write!(f, "non-monotonic (inner)"),
        }
    }
}

/// The *symbolic* static expiration bound of a subtree — what can be said
/// about `texp(e)` before looking at any data, ordered from best to worst.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StaticBound {
    /// `texp(e) = ∞` (Theorem 1): monotonic operators only.
    Infinite,
    /// `texp(e)` is bounded by the minimum over the inputs' tuple
    /// expiration times (difference, Table 2 / Eq. 11): finite whenever a
    /// critical tuple exists, but data-dependent and often far away.
    MinOfInputs,
    /// Validity ends at the next change point `χ` of the contributing set
    /// (aggregation, Eq. 7–9): the tightest bound — any expiration among
    /// contributing tuples invalidates the result.
    NextChangePoint,
}

impl StaticBound {
    /// Lattice join: the tighter (worse) of the two bounds.
    #[must_use]
    pub fn join(self, other: StaticBound) -> StaticBound {
        self.max(other)
    }
}

impl std::fmt::Display for StaticBound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StaticBound::Infinite => write!(f, "∞"),
            StaticBound::MinOfInputs => write!(f, "min of inputs (Table 2)"),
            StaticBound::NextChangePoint => write!(f, "next change point χ"),
        }
    }
}

/// A *concrete* worst-case staleness bound in ticks — the numeric
/// companion to the symbolic [`StaticBound`]. The whole-database audit
/// (`exptime-lint`) instantiates each view's symbolic bound against the
/// base tables it reaches and folds the results with [`TickBound::join`]:
/// the worst input dominates, exactly as in the symbolic lattice.
///
/// Ordering: `Finite(a) ≤ Finite(b)` iff `a ≤ b`, and `Unbounded` is the
/// top element (worse than every finite bound).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TickBound {
    /// Staleness provably never exceeds this many ticks.
    Finite(u64),
    /// No finite bound can be proven.
    Unbounded,
}

impl TickBound {
    /// The bottom element: provably exact at every instant.
    pub const ZERO: TickBound = TickBound::Finite(0);

    /// Lattice join: the worse (larger) of the two bounds.
    #[must_use]
    pub fn join(self, other: TickBound) -> TickBound {
        self.max(other)
    }

    /// Adds two bounds; saturates on overflow, `Unbounded` absorbs.
    #[must_use]
    pub fn saturating_add(self, other: TickBound) -> TickBound {
        match (self, other) {
            (TickBound::Finite(a), TickBound::Finite(b)) => TickBound::Finite(a.saturating_add(b)),
            _ => TickBound::Unbounded,
        }
    }

    /// The finite value, if any.
    #[must_use]
    pub fn finite(self) -> Option<u64> {
        match self {
            TickBound::Finite(v) => Some(v),
            TickBound::Unbounded => None,
        }
    }

    /// Whether a finite bound was proven.
    #[must_use]
    pub fn is_finite(self) -> bool {
        matches!(self, TickBound::Finite(_))
    }
}

impl std::fmt::Display for TickBound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TickBound::Finite(v) => write!(f, "{v}"),
            TickBound::Unbounded => write!(f, "∞"),
        }
    }
}

/// The static expiration-soundness summary of a plan, computed without
/// touching data: monotonicity class, symbolic expiration bound, and
/// whether the Theorem 3 patch queue applies at the root.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Soundness {
    /// Position-sensitive monotonicity classification.
    pub monotonicity: Monotonicity,
    /// Symbolic bound on `texp(e)`.
    pub bound: StaticBound,
    /// Whether the root is a difference (patchable per Theorem 3).
    pub patchable: bool,
    /// Number of non-monotonic operators (differences + aggregates) in
    /// the whole tree.
    pub non_monotonic_count: usize,
}

impl Soundness {
    /// `Sound(∞)`: the materialisation never goes stale (Theorem 1).
    #[must_use]
    pub fn is_sound_infinite(&self) -> bool {
        self.bound == StaticBound::Infinite
    }
}

impl Expr {
    /// Computes the static [`Soundness`] summary of this plan.
    ///
    /// Bounds compose by lattice join (worst child wins); monotonicity is
    /// position-sensitive: a single non-monotonic operator at the root over
    /// monotonic inputs is [`Monotonicity::NonMonotonicRoot`] (the
    /// patch-friendly shape), anything deeper is
    /// [`Monotonicity::NonMonotonicInner`].
    #[must_use]
    pub fn soundness(&self) -> Soundness {
        let (monotonicity, bound, count) = classify(self);
        Soundness {
            monotonicity,
            bound,
            patchable: is_root_patchable(self),
            non_monotonic_count: count,
        }
    }
}

/// Returns `(monotonicity, bound, non_monotonic_count)` for `expr`.
fn classify(expr: &Expr) -> (Monotonicity, StaticBound, usize) {
    // A *child's* contribution to its parent: any non-monotonic operator
    // inside a child is, from the parent's viewpoint, inner.
    let demote = |m: Monotonicity| match m {
        Monotonicity::Monotonic => Monotonicity::Monotonic,
        _ => Monotonicity::NonMonotonicInner,
    };
    match expr {
        Expr::Base(_) => (Monotonicity::Monotonic, StaticBound::Infinite, 0),
        Expr::Select { input, .. } | Expr::Project { input, .. } => {
            let (m, b, n) = classify(input);
            (demote(m), b, n)
        }
        Expr::Product { left, right }
        | Expr::Union { left, right }
        | Expr::Join { left, right, .. }
        | Expr::Intersect { left, right } => {
            let (ml, bl, nl) = classify(left);
            let (mr, br, nr) = classify(right);
            (demote(ml).join(demote(mr)), bl.join(br), nl + nr)
        }
        Expr::Difference { left, right } => {
            let (ml, bl, nl) = classify(left);
            let (mr, br, nr) = classify(right);
            let m = if ml == Monotonicity::Monotonic && mr == Monotonicity::Monotonic {
                Monotonicity::NonMonotonicRoot
            } else {
                Monotonicity::NonMonotonicInner
            };
            (m, StaticBound::MinOfInputs.join(bl).join(br), nl + nr + 1)
        }
        Expr::Aggregate { input, .. } => {
            let (mi, bi, ni) = classify(input);
            let m = if mi == Monotonicity::Monotonic {
                Monotonicity::NonMonotonicRoot
            } else {
                Monotonicity::NonMonotonicInner
            };
            (m, StaticBound::NextChangePoint.join(bi), ni + 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::{eval, EvalOptions};
    use crate::catalog::Catalog;
    use crate::predicate::CmpOp;
    use crate::relation::Relation;
    use crate::schema::Schema;
    use crate::time::Time;
    use crate::tuple;
    use crate::value::ValueType;

    fn t(v: u64) -> Time {
        Time::new(v)
    }

    fn catalog() -> Catalog {
        let schema = Schema::of(&[("uid", ValueType::Int), ("deg", ValueType::Int)]);
        let mut c = Catalog::new();
        c.register(
            "Pol",
            Relation::from_rows(
                schema.clone(),
                vec![
                    (tuple![1, 25], t(10)),
                    (tuple![2, 25], t(15)),
                    (tuple![3, 35], t(10)),
                ],
            )
            .unwrap(),
        );
        c.register(
            "El",
            Relation::from_rows(
                schema,
                vec![
                    (tuple![1, 75], t(5)),
                    (tuple![2, 85], t(3)),
                    (tuple![4, 90], t(2)),
                ],
            )
            .unwrap(),
        );
        c
    }

    /// Both plans must produce identical relations (tuples + texps) and
    /// have comparable or better expression texp at every instant.
    fn assert_equivalent(a: &Expr, b: &Expr, c: &Catalog) {
        for now in 0..20 {
            let ma = eval(a, c, t(now), &EvalOptions::default()).unwrap();
            let mb = eval(b, c, t(now), &EvalOptions::default()).unwrap();
            assert!(
                ma.rel.set_eq(&mb.rel),
                "plans diverge at {now}:\n  {a} = {:?}\n  {b} = {:?}",
                ma.rel,
                mb.rel
            );
        }
    }

    #[test]
    fn select_merging() {
        let e = Expr::base("Pol")
            .select(Predicate::attr_eq_const(1, 25))
            .select(Predicate::attr_cmp_const(0, CmpOp::Lt, 3));
        let r = rewrite(&e);
        assert!(
            matches!(&r, Expr::Select { input, .. } if matches!(**input, Expr::Base(_))),
            "got {r}"
        );
        assert_equivalent(&e, &r, &catalog());
    }

    #[test]
    fn select_pushes_below_difference_and_extends_texp() {
        let c = catalog();
        let d = Expr::base("Pol")
            .project([0])
            .difference(Expr::base("El").project([0]));
        // Select uid = 3: tuple ⟨3⟩ is never critical.
        let e = d.select(Predicate::attr_eq_const(0, 3));
        let r = rewrite(&e);
        assert!(is_root_patchable(&r), "difference pulled to root: {r}");
        assert_equivalent(&e, &r, &c);
        let orig = eval(&e, &c, Time::ZERO, &EvalOptions::default()).unwrap();
        let new = eval(&r, &c, Time::ZERO, &EvalOptions::default()).unwrap();
        assert_eq!(orig.texp, t(3), "unpushed: critical tuples inside");
        assert_eq!(new.texp, Time::INFINITY, "pushed: critical set empty");
    }

    #[test]
    fn select_distributes_over_union_and_intersection() {
        let c = catalog();
        for e in [
            Expr::base("Pol")
                .union(Expr::base("El"))
                .select(Predicate::attr_eq_const(0, 1)),
            Expr::base("Pol")
                .intersect(Expr::base("El"))
                .select(Predicate::attr_eq_const(0, 1)),
        ] {
            let r = rewrite(&e);
            assert!(
                !matches!(r, Expr::Select { .. }),
                "selection should be distributed: {r}"
            );
            assert_equivalent(&e, &r, &c);
        }
    }

    #[test]
    fn select_pushes_through_projection() {
        let c = catalog();
        let e = Expr::base("Pol")
            .project([1, 0])
            .select(Predicate::attr_eq_const(0, 25));
        let r = rewrite(&e);
        // Expect π over σ.
        assert!(matches!(&r, Expr::Project { input, .. }
            if matches!(**input, Expr::Select { .. })));
        assert_equivalent(&e, &r, &c);
    }

    #[test]
    fn select_not_pushed_when_projection_drops_attribute() {
        let c = catalog();
        // Projection keeps only deg; a predicate on it survives as-is if
        // unprojectable — here it IS projectable, so craft one on a dropped
        // attribute: impossible to express post-projection. Instead verify
        // stability: a select over project on kept attrs rewrites; the
        // rewritten form re-rewrites to itself (fixpoint).
        let e = Expr::base("Pol")
            .project([1])
            .select(Predicate::attr_eq_const(0, 25));
        let r = rewrite(&e);
        assert_eq!(rewrite(&r), r, "fixpoint");
        assert_equivalent(&e, &r, &c);
    }

    #[test]
    fn product_selection_splits_into_sides() {
        let c = catalog();
        // Left-local: #2 = 25 (deg of Pol); right-local: #4 = 75 (deg of
        // El); mixed: #1 = #3 (uid join).
        let p = Predicate::attr_eq_const(1, 25)
            .and(Predicate::attr_eq_attr(0, 2))
            .and(Predicate::attr_eq_const(3, 75));
        let e = Expr::base("Pol")
            .project([0, 1])
            .product(Expr::base("El").project([0, 1]))
            .select(p);
        let r = rewrite(&e);
        // Mixed conjunct remains as a join.
        assert!(matches!(&r, Expr::Join { .. }), "got {r}");
        if let Expr::Join { left, right, .. } = &r {
            assert!(
                matches!(**left, Expr::Project { .. }),
                "σ pushed into π on left: {left}"
            );
            assert!(
                matches!(**right, Expr::Project { .. }),
                "σ pushed into π on right: {right}"
            );
        }
        assert_equivalent(&e, &r, &c);
    }

    #[test]
    fn join_selection_merges_then_splits() {
        let c = catalog();
        let e = Expr::base("Pol")
            .project([0, 1])
            .join(
                Expr::base("El").project([0, 1]),
                Predicate::attr_eq_attr(0, 2),
            )
            .select(Predicate::attr_eq_const(1, 25));
        let r = rewrite(&e);
        assert!(matches!(&r, Expr::Join { .. }), "got {r}");
        assert_equivalent(&e, &r, &c);
    }

    #[test]
    fn select_on_group_attrs_pushes_below_aggregate() {
        let c = catalog();
        let e = Expr::base("Pol")
            .aggregate([1], AggFuncCount())
            .select(Predicate::attr_eq_const(1, 25));
        let r = rewrite(&e);
        assert!(
            matches!(&r, Expr::Aggregate { .. }),
            "aggregate pulled above selection: {r}"
        );
        assert_equivalent(&e, &r, &c);
    }

    #[test]
    fn select_on_aggregate_value_stays_above() {
        let c = catalog();
        // Predicate on the appended count attribute (#3) cannot push.
        let e = Expr::base("Pol")
            .aggregate([1], AggFuncCount())
            .select(Predicate::attr_eq_const(2, 2));
        let r = rewrite(&e);
        assert!(matches!(&r, Expr::Select { .. }), "got {r}");
        assert_equivalent(&e, &r, &c);
    }

    #[test]
    fn select_on_non_group_input_attr_stays_above() {
        let c = catalog();
        // Predicate on uid (#1), which is not a grouping attribute:
        // pushing it would change partitions.
        let e = Expr::base("Pol")
            .aggregate([1], AggFuncCount())
            .select(Predicate::attr_eq_const(0, 1));
        let r = rewrite(&e);
        assert!(matches!(&r, Expr::Select { .. }), "got {r}");
        assert_equivalent(&e, &r, &c);
    }

    #[test]
    fn rewrite_is_idempotent_on_complex_plans() {
        let e = Expr::base("Pol")
            .project([0])
            .difference(Expr::base("El").project([0]))
            .select(Predicate::attr_cmp_const(0, CmpOp::Le, 2))
            .union(Expr::base("Pol").project([0]))
            .select(Predicate::attr_cmp_const(0, CmpOp::Gt, 0));
        let r1 = rewrite(&e);
        let r2 = rewrite(&r1);
        assert_eq!(r1, r2);
        assert_equivalent(&e, &r1, &catalog());
    }

    #[allow(non_snake_case)]
    fn AggFuncCount() -> crate::aggregate::AggFunc {
        crate::aggregate::AggFunc::Count
    }

    #[test]
    fn soundness_of_monotonic_plans_is_infinite() {
        // Figure 2 shapes: selects, projects, products, unions, joins.
        let e = Expr::base("Pol")
            .select(Predicate::attr_eq_const(1, 25))
            .project([0])
            .union(Expr::base("El").project([0]));
        let s = e.soundness();
        assert_eq!(s.monotonicity, Monotonicity::Monotonic);
        assert_eq!(s.bound, StaticBound::Infinite);
        assert!(s.is_sound_infinite());
        assert!(!s.patchable);
        assert_eq!(s.non_monotonic_count, 0);
    }

    #[test]
    fn soundness_of_root_difference_is_patchable() {
        let e = Expr::base("Pol")
            .project([0])
            .difference(Expr::base("El").project([0]));
        let s = e.soundness();
        assert_eq!(s.monotonicity, Monotonicity::NonMonotonicRoot);
        assert_eq!(s.bound, StaticBound::MinOfInputs);
        assert!(s.patchable, "Theorem 3 applies at the root");
        assert_eq!(s.non_monotonic_count, 1);
    }

    #[test]
    fn soundness_of_figure_3a_aggregate_under_projection_is_inner() {
        // πexp_{2,3}(aggexp_{{2},count}(Pol)) — Figure 3(a).
        let e = Expr::base("Pol")
            .aggregate([1], AggFuncCount())
            .project([1, 2]);
        let s = e.soundness();
        assert_eq!(s.monotonicity, Monotonicity::NonMonotonicInner);
        assert_eq!(s.bound, StaticBound::NextChangePoint);
        assert!(!s.patchable);
        assert_eq!(s.non_monotonic_count, 1);

        // The bare aggregate is root-positioned.
        let root = Expr::base("Pol").aggregate([1], AggFuncCount());
        assert_eq!(
            root.soundness().monotonicity,
            Monotonicity::NonMonotonicRoot
        );
    }

    #[test]
    fn soundness_lattice_joins_take_the_worst() {
        assert_eq!(
            Monotonicity::Monotonic.join(Monotonicity::NonMonotonicInner),
            Monotonicity::NonMonotonicInner
        );
        assert_eq!(
            StaticBound::MinOfInputs.join(StaticBound::NextChangePoint),
            StaticBound::NextChangePoint
        );
        assert_eq!(
            StaticBound::Infinite.join(StaticBound::Infinite),
            StaticBound::Infinite
        );
        // Aggregate over a difference: both counted, tightest bound wins,
        // and the difference is demoted to inner.
        let e = Expr::base("Pol")
            .difference(Expr::base("El"))
            .aggregate(vec![], AggFuncCount());
        let s = e.soundness();
        assert_eq!(s.monotonicity, Monotonicity::NonMonotonicInner);
        assert_eq!(s.bound, StaticBound::NextChangePoint);
        assert_eq!(s.non_monotonic_count, 2);
    }

    #[test]
    fn tick_bound_lattice_is_a_join_semilattice_with_unbounded_top() {
        use TickBound::{Finite, Unbounded};
        assert_eq!(Finite(3).join(Finite(7)), Finite(7));
        assert_eq!(Finite(7).join(Finite(3)), Finite(7));
        assert_eq!(Finite(u64::MAX).join(Unbounded), Unbounded);
        assert_eq!(Unbounded.join(Unbounded), Unbounded);
        assert_eq!(TickBound::ZERO.join(Finite(0)), Finite(0));
        assert_eq!(Finite(u64::MAX).saturating_add(Finite(1)), Finite(u64::MAX));
        assert_eq!(Finite(2).saturating_add(Finite(3)), Finite(5));
        assert_eq!(Finite(2).saturating_add(Unbounded), Unbounded);
        assert_eq!(Finite(9).finite(), Some(9));
        assert_eq!(Unbounded.finite(), None);
        assert!(Finite(0).is_finite() && !Unbounded.is_finite());
        assert_eq!(format!("{} {}", Finite(12), Unbounded), "12 ∞");
    }

    #[test]
    fn rewrite_improves_soundness_class_when_it_lifts() {
        // σ_p(Pol −exp El): select above the difference (inner) rewrites
        // to the pushed-down, root-difference (patchable) form.
        let e = Expr::base("Pol")
            .difference(Expr::base("El"))
            .select(Predicate::attr_eq_const(0, 1));
        assert_eq!(e.soundness().monotonicity, Monotonicity::NonMonotonicInner);
        let r = rewrite(&e);
        assert_eq!(r.soundness().monotonicity, Monotonicity::NonMonotonicRoot);
        assert!(r.soundness().patchable);
    }
}
