//! Patching materialised differences with a priority queue (paper
//! Section 3.4.2, Theorem 3).
//!
//! A materialised `R −exp S` becomes invalid when a *critical* tuple — one
//! present in both arguments with `texp_R(t) > texp_S(t)` — should reappear
//! in the result as its `S`-copy expires. Theorem 3 shows that keeping the
//! helper relation
//!
//! ```text
//! R(R −exp S) = { r | r ∈ expτ(R) ∧ r ∈ expτ(S) }    with texp_*(t) = texp_S(t)
//! ```
//!
//! as a priority queue and inserting each tuple into the materialised
//! difference when it "expires" from the helper (with final expiration time
//! `texp_R(t)`) makes the materialised expression's expiration time `∞`:
//! recomputation is never needed, at the cost of `O(|R ∩ S|)` extra storage.

use crate::algebra::ops::CriticalTuple;
use crate::relation::{DuplicatePolicy, Relation};
use crate::time::Time;
use crate::tuple::Tuple;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One pending patch: insert `tuple` into the materialised result at
/// `appears_at` (its `texp_S`) with expiration time `disappears_at` (its
/// `texp_R`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatchEntry {
    /// The tuple to insert.
    pub tuple: Tuple,
    /// When the tuple must appear: `texp_S(t)`.
    pub appears_at: Time,
    /// The expiration time it carries once inserted: `texp_R(t)`.
    pub disappears_at: Time,
}

impl From<CriticalTuple> for PatchEntry {
    fn from(c: CriticalTuple) -> Self {
        PatchEntry {
            tuple: c.tuple,
            appears_at: c.appears_at,
            disappears_at: c.disappears_at,
        }
    }
}

// Heap ordering: earliest `appears_at` first; sequence number breaks ties
// deterministically by insertion order.
#[derive(Debug, Clone, PartialEq, Eq)]
struct HeapItem {
    key: Reverse<(Time, u64)>,
    entry: PatchEntry,
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// The priority queue of pending patches for one materialised difference.
///
/// The paper: "we can interpret this priority queue as a helper relation
/// whose tuples expire; when they expire, they should simply be inserted
/// into the materialised difference expression."
#[derive(Debug, Clone, Default)]
pub struct PatchQueue {
    heap: BinaryHeap<HeapItem>,
    seq: u64,
}

impl PatchQueue {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        PatchQueue::default()
    }

    /// Builds the queue from the critical tuples of a difference
    /// (`O(n log n)`, as the paper notes — standard heap construction).
    #[must_use]
    pub fn from_critical(critical: Vec<CriticalTuple>) -> Self {
        let mut q = PatchQueue::new();
        for c in critical {
            q.push(c.into());
        }
        q
    }

    /// Enqueues a patch.
    pub fn push(&mut self, entry: PatchEntry) {
        let key = Reverse((entry.appears_at, self.seq));
        self.seq += 1;
        self.heap.push(HeapItem { key, entry });
    }

    /// Number of pending patches (`≤ |R ∩ S|` when built from a
    /// difference).
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no patches are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The next instant at which a patch becomes due, if any.
    #[must_use]
    pub fn next_due(&self) -> Option<Time> {
        self.heap.peek().map(|i| i.entry.appears_at)
    }

    /// Pops every patch due at or before `τ` (those whose helper-relation
    /// copy has expired: `appears_at ≤ τ`).
    pub fn drain_due(&mut self, tau: Time) -> Vec<PatchEntry> {
        let mut out = Vec::new();
        while let Some(item) = self.heap.peek() {
            if item.entry.appears_at <= tau {
                out.push(self.heap.pop().expect("peeked").entry);
            } else {
                break;
            }
        }
        out
    }

    /// Applies all due patches to a materialised difference result:
    /// inserts each due tuple with expiration time `texp_R(t)`
    /// (Theorem 3). Tuples already expired (`disappears_at ≤ τ`) are
    /// skipped — inserting and immediately expiring them is equivalent.
    /// Returns the number of tuples actually inserted.
    ///
    /// # Panics
    ///
    /// Panics if a patched tuple does not match the result schema, which
    /// would indicate queue/result mismatch (a logic error, not user
    /// input).
    pub fn apply_due(&mut self, result: &mut Relation, tau: Time) -> usize {
        let mut applied = 0;
        for entry in self.drain_due(tau) {
            if entry.disappears_at > tau {
                result
                    .insert_with(entry.tuple, entry.disappears_at, DuplicatePolicy::Replace)
                    .expect("patch tuple must match result schema");
                applied += 1;
            }
        }
        applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::ops;
    use crate::schema::Schema;
    use crate::tuple;
    use crate::value::ValueType;

    fn t(v: u64) -> Time {
        Time::new(v)
    }

    fn rel(rows: &[(i64, u64)]) -> Relation {
        let mut r = Relation::new(Schema::of(&[("x", ValueType::Int)]));
        for &(x, e) in rows {
            let e = if e == 0 { Time::INFINITY } else { t(e) };
            r.insert(tuple![x], e).unwrap();
        }
        r
    }

    #[test]
    fn queue_orders_by_appearance_time() {
        let r = rel(&[(1, 10), (2, 15), (3, 20)]);
        let s = rel(&[(1, 5), (2, 3), (3, 8)]);
        let mut q = PatchQueue::from_critical(ops::critical_tuples(&r, &s, Time::ZERO));
        assert_eq!(q.len(), 3);
        assert_eq!(q.next_due(), Some(t(3)));
        let due = q.drain_due(t(5));
        assert_eq!(due.len(), 2);
        assert_eq!(due[0].tuple, tuple![2]);
        assert_eq!(due[1].tuple, tuple![1]);
        assert_eq!(q.next_due(), Some(t(8)));
    }

    #[test]
    fn apply_due_inserts_with_texp_r() {
        let r = rel(&[(1, 10), (2, 15)]);
        let s = rel(&[(1, 5), (2, 3)]);
        let mut result = ops::difference(&r, &s, Time::ZERO).unwrap();
        assert!(result.is_empty());
        let mut q = PatchQueue::from_critical(ops::critical_tuples(&r, &s, Time::ZERO));

        let n = q.apply_due(&mut result, t(3));
        assert_eq!(n, 1);
        assert_eq!(result.texp(&tuple![2]), Some(t(15)));

        let n = q.apply_due(&mut result, t(5));
        assert_eq!(n, 1);
        assert_eq!(result.texp(&tuple![1]), Some(t(10)));
        assert!(q.is_empty());
    }

    #[test]
    fn theorem_3_patched_result_equals_recomputation() {
        // Sweep every instant; the patched materialisation must equal a
        // fresh recomputation at each time.
        let r = rel(&[(1, 10), (2, 15), (3, 4), (4, 0)]);
        let s = rel(&[(1, 5), (2, 3), (4, 7)]);
        let mut materialised = ops::difference(&r, &s, Time::ZERO).unwrap();
        let mut q = PatchQueue::from_critical(ops::critical_tuples(&r, &s, Time::ZERO));
        for now in 0..25 {
            let now = t(now);
            q.apply_due(&mut materialised, now);
            let fresh = ops::difference(&r, &s, now).unwrap();
            assert!(
                materialised.set_eq_at(&fresh, now),
                "mismatch at {now}: materialised={materialised:?} fresh={fresh:?}"
            );
        }
    }

    #[test]
    fn stale_patches_are_skipped() {
        // Tuple reappears at 3 and disappears at 4; applying at τ=6 after
        // missing the window inserts nothing.
        let r = rel(&[(1, 4)]);
        let s = rel(&[(1, 3)]);
        let mut result = ops::difference(&r, &s, Time::ZERO).unwrap();
        let mut q = PatchQueue::from_critical(ops::critical_tuples(&r, &s, Time::ZERO));
        let n = q.apply_due(&mut result, t(6));
        assert_eq!(n, 0);
        assert_eq!(result.count_unexpired(t(6)), 0);
        assert!(q.is_empty(), "stale entries are still drained");
    }

    #[test]
    fn infinite_texp_r_patches_never_expire() {
        let r = rel(&[(1, 0)]);
        let s = rel(&[(1, 2)]);
        let mut result = ops::difference(&r, &s, Time::ZERO).unwrap();
        let mut q = PatchQueue::from_critical(ops::critical_tuples(&r, &s, Time::ZERO));
        q.apply_due(&mut result, t(2));
        assert_eq!(result.texp(&tuple![1]), Some(Time::INFINITY));
    }

    #[test]
    fn queue_size_is_bounded_by_intersection() {
        let r = rel(&[(1, 10), (2, 10), (3, 10)]);
        let s = rel(&[(2, 5), (3, 20), (4, 1)]);
        // Critical: only x=2 (10 > 5). Queue ≤ |R ∩ S| = 2.
        let q = PatchQueue::from_critical(ops::critical_tuples(&r, &s, Time::ZERO));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn manual_push_and_tie_breaking() {
        let mut q = PatchQueue::new();
        q.push(PatchEntry {
            tuple: tuple![1],
            appears_at: t(5),
            disappears_at: t(9),
        });
        q.push(PatchEntry {
            tuple: tuple![2],
            appears_at: t(5),
            disappears_at: t(8),
        });
        let due = q.drain_due(t(5));
        assert_eq!(due[0].tuple, tuple![1], "FIFO among equal times");
        assert_eq!(due[1].tuple, tuple![2]);
    }
}
