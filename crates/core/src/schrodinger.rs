//! Schrödinger's cat semantics: answering queries from possibly-invalid
//! materialisations (paper Sections 3.3–3.4).
//!
//! "A (materialised) expression is only required to contain correct values
//! when a user queries it." A materialisation whose single expiration time
//! has passed may nevertheless be perfectly correct *now* (e.g. a
//! difference after all critical tuples have expired). The validity
//! interval set `I(e)` captures exactly when; queries issued inside `I(e)`
//! are answered locally, and queries outside it can be
//!
//! * **recomputed** (base access),
//! * **moved backward in time** ("intuitively returning a slightly outdated
//!   result"), or
//! * **moved forward in time** ("intuitively delaying the query"),
//!
//! per a [`QueryPolicy`].

use crate::algebra::{eval, EvalOptions, Expr, Materialized};
use crate::catalog::Catalog;
use crate::error::Result;
use crate::relation::Relation;
use crate::time::Time;

/// What to do when a query time falls outside the materialisation's
/// validity intervals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryPolicy {
    /// Recompute from the base relations.
    Recompute,
    /// Answer as of the latest valid instant `≤ τ` within `max_drift`,
    /// falling back to recomputation if none exists.
    MoveBackward {
        /// Maximum tolerated staleness in ticks.
        max_drift: u64,
    },
    /// Answer as of the earliest valid instant `≥ τ` within `max_delay`,
    /// falling back to recomputation if none exists.
    MoveForward {
        /// Maximum tolerated delay in ticks.
        max_delay: u64,
    },
    /// Refuse: return no relation (the caller handles unavailability —
    /// e.g. a disconnected replica with no link to the base data).
    Refuse,
}

/// How a query was answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnswerKind {
    /// Served locally; the materialisation is valid at the query time.
    Local,
    /// Served locally as of an earlier instant (stale by `as_of < asked`).
    MovedBackward,
    /// Served locally as of a later instant (delayed).
    MovedForward,
    /// Recomputed from the base relations.
    Recomputed,
    /// Refused under [`QueryPolicy::Refuse`].
    Refused,
}

/// The outcome of answering a query against a materialisation.
#[derive(Debug, Clone)]
pub struct QueryAnswer {
    /// The answer relation; empty and meaningless when `kind` is
    /// [`AnswerKind::Refused`].
    pub rel: Relation,
    /// The instant the answer is correct for.
    pub as_of: Time,
    /// How the answer was produced.
    pub kind: AnswerKind,
}

impl QueryAnswer {
    /// Whether the answer required contacting the base relations.
    #[must_use]
    pub fn used_base(&self) -> bool {
        self.kind == AnswerKind::Recomputed
    }
}

/// Answers a query at time `τ` against a materialisation of `expr`,
/// consulting the validity intervals first and applying `policy` outside
/// them.
///
/// # Errors
///
/// Propagates recomputation errors.
pub fn answer(
    m: &Materialized,
    expr: &Expr,
    catalog: &Catalog,
    tau: Time,
    policy: QueryPolicy,
    opts: &EvalOptions,
) -> Result<QueryAnswer> {
    if m.validity.contains(tau) {
        return Ok(QueryAnswer {
            rel: m.rel.exp(tau),
            as_of: tau,
            kind: AnswerKind::Local,
        });
    }
    match policy {
        QueryPolicy::Recompute => {
            let fresh = eval(expr, catalog, tau, opts)?;
            Ok(QueryAnswer {
                rel: fresh.rel,
                as_of: tau,
                kind: AnswerKind::Recomputed,
            })
        }
        QueryPolicy::MoveBackward { max_drift } => {
            if let Some(back) = m.validity.prev_covered(tau) {
                if back >= m.at
                    && tau
                        .finite()
                        .zip(back.finite())
                        .is_some_and(|(t, b)| t - b <= max_drift)
                {
                    return Ok(QueryAnswer {
                        rel: m.rel.exp(back),
                        as_of: back,
                        kind: AnswerKind::MovedBackward,
                    });
                }
            }
            let fresh = eval(expr, catalog, tau, opts)?;
            Ok(QueryAnswer {
                rel: fresh.rel,
                as_of: tau,
                kind: AnswerKind::Recomputed,
            })
        }
        QueryPolicy::MoveForward { max_delay } => {
            if let Some(fwd) = m.validity.next_covered(tau) {
                if fwd
                    .finite()
                    .zip(tau.finite())
                    .is_some_and(|(f, t)| f - t <= max_delay)
                {
                    return Ok(QueryAnswer {
                        rel: m.rel.exp(fwd),
                        as_of: fwd,
                        kind: AnswerKind::MovedForward,
                    });
                }
            }
            let fresh = eval(expr, catalog, tau, opts)?;
            Ok(QueryAnswer {
                rel: fresh.rel,
                as_of: tau,
                kind: AnswerKind::Recomputed,
            })
        }
        QueryPolicy::Refuse => Ok(QueryAnswer {
            rel: Relation::new(m.rel.schema().clone()),
            as_of: tau,
            kind: AnswerKind::Refused,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::tuple;
    use crate::value::ValueType;

    fn t(v: u64) -> Time {
        Time::new(v)
    }

    /// Figure 1 / Figure 3 setting: the difference has holes [3, 15[.
    fn setting() -> (Catalog, Expr, Materialized) {
        let schema = Schema::of(&[("uid", ValueType::Int), ("deg", ValueType::Int)]);
        let mut c = Catalog::new();
        c.register(
            "Pol",
            Relation::from_rows(
                schema.clone(),
                vec![
                    (tuple![1, 25], t(10)),
                    (tuple![2, 25], t(15)),
                    (tuple![3, 35], t(10)),
                ],
            )
            .unwrap(),
        );
        c.register(
            "El",
            Relation::from_rows(
                schema,
                vec![
                    (tuple![1, 75], t(5)),
                    (tuple![2, 85], t(3)),
                    (tuple![4, 90], t(2)),
                ],
            )
            .unwrap(),
        );
        let e = Expr::base("Pol")
            .project([0])
            .difference(Expr::base("El").project([0]));
        let m = eval(&e, &c, Time::ZERO, &EvalOptions::default()).unwrap();
        (c, e, m)
    }

    #[test]
    fn inside_validity_serves_locally() {
        let (c, e, m) = setting();
        let a = answer(
            &m,
            &e,
            &c,
            t(2),
            QueryPolicy::Refuse,
            &EvalOptions::default(),
        )
        .unwrap();
        assert_eq!(a.kind, AnswerKind::Local);
        assert_eq!(a.as_of, t(2));
        assert_eq!(a.rel.len(), 1);
        assert!(!a.used_base());
        // Far future: valid again (hole has closed).
        let a = answer(
            &m,
            &e,
            &c,
            t(20),
            QueryPolicy::Refuse,
            &EvalOptions::default(),
        )
        .unwrap();
        assert_eq!(a.kind, AnswerKind::Local);
        assert!(a.rel.is_empty(), "everything expired by 20");
    }

    #[test]
    fn recompute_policy_goes_to_base() {
        let (c, e, m) = setting();
        let a = answer(
            &m,
            &e,
            &c,
            t(5),
            QueryPolicy::Recompute,
            &EvalOptions::default(),
        )
        .unwrap();
        assert_eq!(a.kind, AnswerKind::Recomputed);
        assert!(a.used_base());
        assert_eq!(a.rel.len(), 3, "fresh at 5: ⟨1⟩,⟨2⟩,⟨3⟩");
    }

    #[test]
    fn move_backward_within_drift() {
        let (c, e, m) = setting();
        // τ=5 invalid; latest valid instant is 2.
        let a = answer(
            &m,
            &e,
            &c,
            t(5),
            QueryPolicy::MoveBackward { max_drift: 5 },
            &EvalOptions::default(),
        )
        .unwrap();
        assert_eq!(a.kind, AnswerKind::MovedBackward);
        assert_eq!(a.as_of, t(2));
        assert_eq!(a.rel.len(), 1);
    }

    #[test]
    fn move_backward_exceeding_drift_recomputes() {
        let (c, e, m) = setting();
        let a = answer(
            &m,
            &e,
            &c,
            t(9),
            QueryPolicy::MoveBackward { max_drift: 2 },
            &EvalOptions::default(),
        )
        .unwrap();
        assert_eq!(a.kind, AnswerKind::Recomputed);
    }

    #[test]
    fn move_forward_within_delay() {
        let (c, e, m) = setting();
        // τ=13 invalid; next valid instant is 15.
        let a = answer(
            &m,
            &e,
            &c,
            t(13),
            QueryPolicy::MoveForward { max_delay: 5 },
            &EvalOptions::default(),
        )
        .unwrap();
        assert_eq!(a.kind, AnswerKind::MovedForward);
        assert_eq!(a.as_of, t(15));
        // Moved-forward answers are checked against ground truth.
        let fresh = eval(&e, &c, t(15), &EvalOptions::default()).unwrap();
        assert!(a.rel.set_eq(&fresh.rel));
    }

    #[test]
    fn move_forward_exceeding_delay_recomputes() {
        let (c, e, m) = setting();
        let a = answer(
            &m,
            &e,
            &c,
            t(4),
            QueryPolicy::MoveForward { max_delay: 3 },
            &EvalOptions::default(),
        )
        .unwrap();
        // Next valid instant is 15, delay 11 > 3.
        assert_eq!(a.kind, AnswerKind::Recomputed);
    }

    #[test]
    fn refuse_returns_empty_marker() {
        let (c, e, m) = setting();
        let a = answer(
            &m,
            &e,
            &c,
            t(5),
            QueryPolicy::Refuse,
            &EvalOptions::default(),
        )
        .unwrap();
        assert_eq!(a.kind, AnswerKind::Refused);
        assert!(a.rel.is_empty());
    }

    #[test]
    fn moved_answers_match_ground_truth_everywhere_valid() {
        let (c, e, m) = setting();
        for now in 0..25 {
            let a = answer(
                &m,
                &e,
                &c,
                t(now),
                QueryPolicy::Recompute,
                &EvalOptions::default(),
            )
            .unwrap();
            let fresh = eval(&e, &c, t(now), &EvalOptions::default()).unwrap();
            assert!(
                a.rel.tuples_eq_at(&fresh.rel, t(now)),
                "answer at {now} diverges from truth"
            );
        }
    }
}
