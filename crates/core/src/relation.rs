//! Relations with per-tuple expiration times.
//!
//! The paper leaves the relational model intact and adds, for every relation
//! `R`, a function `texp_R(·)` mapping each tuple to its expiration time
//! (Section 2.2). A [`Relation`] stores exactly that: a *set* of tuples
//! (relations are sets, not bags — projection and union deduplicate) plus
//! the expiration-time function, realised as an insertion-ordered map from
//! tuple to [`Time`].
//!
//! The other central definition of the paper is
//!
//! ```text
//! expτ(R) = { r | r ∈ R ∧ texp_R(r) > τ }
//! ```
//!
//! — the sub-relation of tuples unexpired at time `τ` — provided here as
//! [`Relation::exp`] (snapshot) and [`Relation::expire`] (in-place, the
//! *eager removal* of Section 3.2).

use crate::error::{Error, Result};
use crate::schema::Schema;
use crate::time::Time;
use crate::tuple::Tuple;
use std::collections::HashMap;
use std::fmt;

/// What to do when a tuple is inserted that is already present.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DuplicatePolicy {
    /// Keep the maximum of the stored and incoming expiration times. This is
    /// the paper's rule for projection (Eq. 3) and union (Eq. 4) and the
    /// default for building relations.
    KeepMax,
    /// Keep the minimum of the two expiration times (used by product-style
    /// operators when the same output tuple can arise twice).
    KeepMin,
    /// The incoming expiration time wins (an *update* of the tuple's
    /// lifetime, the paper's only user-visible expiration-time operation
    /// besides insertion).
    Replace,
}

/// A relation: a set of tuples, each with an expiration time.
///
/// Tuple identity is pure value equality; inserting an existing tuple never
/// creates a duplicate, it only adjusts the expiration time according to a
/// [`DuplicatePolicy`]. Iteration order is insertion order, which keeps
/// query output and the regenerated paper figures deterministic.
#[derive(Clone)]
pub struct Relation {
    schema: Schema,
    rows: Vec<(Tuple, Time)>,
    index: HashMap<Tuple, usize>,
}

impl Relation {
    /// Creates an empty relation with the given schema.
    #[must_use]
    pub fn new(schema: Schema) -> Self {
        Relation {
            schema,
            rows: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// Creates a relation and inserts `(tuple, texp)` rows with
    /// [`DuplicatePolicy::KeepMax`].
    ///
    /// # Errors
    ///
    /// Returns a schema error if any tuple fails [`Schema::check`].
    pub fn from_rows<I>(schema: Schema, rows: I) -> Result<Self>
    where
        I: IntoIterator<Item = (Tuple, Time)>,
    {
        let mut r = Relation::new(schema);
        for (t, e) in rows {
            r.insert(t, e)?;
        }
        Ok(r)
    }

    /// The schema.
    #[inline]
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The arity `α(R)`.
    #[inline]
    #[must_use]
    pub fn arity(&self) -> usize {
        self.schema.arity()
    }

    /// Number of tuples (expired tuples still physically present count; see
    /// [`Relation::count_unexpired`] for the `expτ` cardinality).
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the relation holds no tuples at all.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Inserts a tuple with [`DuplicatePolicy::KeepMax`].
    ///
    /// # Errors
    ///
    /// Returns a schema error if the tuple fails [`Schema::check`].
    pub fn insert(&mut self, tuple: Tuple, texp: Time) -> Result<()> {
        self.insert_with(tuple, texp, DuplicatePolicy::KeepMax)
    }

    /// Inserts a tuple with an explicit duplicate policy.
    ///
    /// # Errors
    ///
    /// Returns a schema error if the tuple fails [`Schema::check`].
    pub fn insert_with(&mut self, tuple: Tuple, texp: Time, policy: DuplicatePolicy) -> Result<()> {
        self.schema.check(&tuple)?;
        match self.index.get(&tuple) {
            Some(&i) => {
                let stored = &mut self.rows[i].1;
                *stored = match policy {
                    DuplicatePolicy::KeepMax => (*stored).max(texp),
                    DuplicatePolicy::KeepMin => (*stored).min(texp),
                    DuplicatePolicy::Replace => texp,
                };
            }
            None => {
                self.index.insert(tuple.clone(), self.rows.len());
                self.rows.push((tuple, texp));
            }
        }
        Ok(())
    }

    /// Removes a tuple, returning its expiration time if it was present.
    /// Preserves the insertion order of the remaining tuples.
    pub fn remove(&mut self, tuple: &Tuple) -> Option<Time> {
        let i = self.index.remove(tuple)?;
        let (_, texp) = self.rows.remove(i);
        for (j, (t, _)) in self.rows.iter().enumerate().skip(i) {
            *self.index.get_mut(t).expect("index out of sync") = j;
        }
        Some(texp)
    }

    /// The expiration-time function `texp_R(·)`: the expiration time of a
    /// tuple, or `None` if the tuple is not in the relation.
    #[must_use]
    pub fn texp(&self, tuple: &Tuple) -> Option<Time> {
        self.index.get(tuple).map(|&i| self.rows[i].1)
    }

    /// Whether the tuple is physically present (expired or not).
    #[must_use]
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.index.contains_key(tuple)
    }

    /// Whether the tuple is present *and* unexpired at `τ`
    /// (`r ∈ expτ(R)`).
    #[must_use]
    pub fn contains_at(&self, tuple: &Tuple, tau: Time) -> bool {
        self.texp(tuple).is_some_and(|e| e > tau)
    }

    /// Iterates `(tuple, texp)` in insertion order, including expired rows.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, Time)> + '_ {
        self.rows.iter().map(|(t, e)| (t, *e))
    }

    /// Iterates the tuples of `expτ(R)`, i.e. rows with `texp > τ`, in
    /// insertion order.
    pub fn iter_at(&self, tau: Time) -> impl Iterator<Item = (&Tuple, Time)> + '_ {
        self.rows
            .iter()
            .filter(move |(_, e)| *e > tau)
            .map(|(t, e)| (t, *e))
    }

    /// `|expτ(R)|`: the number of unexpired tuples at `τ`.
    #[must_use]
    pub fn count_unexpired(&self, tau: Time) -> usize {
        self.rows.iter().filter(|(_, e)| *e > tau).count()
    }

    /// The function `expτ` of the paper as a snapshot: a new relation
    /// containing exactly the tuples unexpired at `τ`, with their expiration
    /// times.
    #[must_use]
    pub fn exp(&self, tau: Time) -> Relation {
        let mut out = Relation::new(self.schema.clone());
        for (t, e) in self.iter_at(tau) {
            out.index.insert(t.clone(), out.rows.len());
            out.rows.push((t.clone(), e));
        }
        out
    }

    /// Eager removal (Section 3.2): physically deletes every tuple with
    /// `texp ≤ τ` and returns the removed rows (so triggers can fire on
    /// them). Insertion order of survivors is preserved.
    pub fn expire(&mut self, tau: Time) -> Vec<(Tuple, Time)> {
        let mut removed = Vec::new();
        let mut kept = Vec::with_capacity(self.rows.len());
        for (t, e) in self.rows.drain(..) {
            if e > tau {
                kept.push((t, e));
            } else {
                removed.push((t, e));
            }
        }
        self.rows = kept;
        self.index.clear();
        for (i, (t, _)) in self.rows.iter().enumerate() {
            self.index.insert(t.clone(), i);
        }
        removed
    }

    /// The earliest finite expiration time strictly greater than `τ` — the
    /// next instant at which `expτ(R)` shrinks. `None` if nothing further
    /// expires (all remaining tuples carry `∞` or expired already).
    #[must_use]
    pub fn next_expiration(&self, tau: Time) -> Option<Time> {
        self.rows
            .iter()
            .filter(|(_, e)| *e > tau && e.is_finite())
            .map(|(_, e)| *e)
            .min()
    }

    /// The minimum expiration time over unexpired tuples at `τ`; `None` on
    /// an empty `expτ(R)`.
    #[must_use]
    pub fn min_texp(&self, tau: Time) -> Option<Time> {
        Time::min_of(self.iter_at(tau).map(|(_, e)| e))
    }

    /// The maximum expiration time over unexpired tuples at `τ`; `None` on
    /// an empty `expτ(R)`.
    #[must_use]
    pub fn max_texp(&self, tau: Time) -> Option<Time> {
        Time::max_of(self.iter_at(tau).map(|(_, e)| e))
    }

    /// All *distinct, finite* expiration times of unexpired tuples at `τ`,
    /// ascending. These are the only instants where anything can change —
    /// the event times the χ/ν machinery and the experiment drivers sweep.
    #[must_use]
    pub fn event_times(&self, tau: Time) -> Vec<Time> {
        let mut ts: Vec<Time> = self
            .iter_at(tau)
            .filter(|(_, e)| e.is_finite())
            .map(|(_, e)| e)
            .collect();
        ts.sort_unstable();
        ts.dedup();
        ts
    }

    /// Set equality including expiration times: same tuples, each with the
    /// same `texp`, regardless of insertion order.
    #[must_use]
    pub fn set_eq(&self, other: &Relation) -> bool {
        self.rows.len() == other.rows.len() && self.iter().all(|(t, e)| other.texp(t) == Some(e))
    }

    /// Set equality of the *unexpired* portions at `τ`, including
    /// expiration times. This is the equality used by the paper's theorems:
    /// `expτ′(e) = expτ′(expτ(e))`.
    #[must_use]
    pub fn set_eq_at(&self, other: &Relation, tau: Time) -> bool {
        self.count_unexpired(tau) == other.count_unexpired(tau)
            && self.iter_at(tau).all(|(t, e)| other.texp(t) == Some(e))
    }

    /// Set equality ignoring expiration times (pure tuple sets at `τ`).
    #[must_use]
    pub fn tuples_eq_at(&self, other: &Relation, tau: Time) -> bool {
        self.count_unexpired(tau) == other.count_unexpired(tau)
            && self.iter_at(tau).all(|(t, _)| other.contains_at(t, tau))
    }

    /// Sorts rows by tuple value (total order), useful for deterministic
    /// output in reports.
    pub fn sort_by_tuple(&mut self) {
        self.rows.sort_by(|(a, _), (b, _)| {
            a.values()
                .iter()
                .zip(b.values().iter())
                .map(|(x, y)| x.total_cmp(y))
                .find(|o| !o.is_eq())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        self.index.clear();
        for (i, (t, _)) in self.rows.iter().enumerate() {
            self.index.insert(t.clone(), i);
        }
    }

    /// Checks union compatibility with another relation.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotUnionCompatible`] when schemas differ in arity or
    /// positional types.
    pub fn check_union_compatible(&self, other: &Relation) -> Result<()> {
        if self.schema.union_compatible(&other.schema) {
            Ok(())
        } else {
            Err(Error::NotUnionCompatible {
                left: format!("{:?}", self.schema),
                right: format!("{:?}", other.schema),
            })
        }
    }

    /// Renders the relation as the paper renders its figures: one line per
    /// tuple, expiration time first. Expired rows (w.r.t. `τ`) are omitted.
    #[must_use]
    pub fn render_at(&self, tau: Time) -> String {
        let mut out = String::new();
        for (t, e) in self.iter_at(tau) {
            out.push_str(&format!("{e:>4}  {t}\n"));
        }
        if out.is_empty() {
            out.push_str("∅ (the relation is empty)\n");
        }
        out
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Relation{:?} [", self.schema)?;
        for (t, e) in self.iter() {
            writeln!(f, "  texp={e} {t}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;
    use crate::value::ValueType;

    fn schema() -> Schema {
        Schema::of(&[("uid", ValueType::Int), ("deg", ValueType::Int)])
    }

    /// The `Pol` relation of Figure 1(a).
    fn pol() -> Relation {
        Relation::from_rows(
            schema(),
            vec![
                (tuple![1, 25], Time::new(10)),
                (tuple![2, 25], Time::new(15)),
                (tuple![3, 35], Time::new(10)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn insert_and_lookup() {
        let r = pol();
        assert_eq!(r.len(), 3);
        assert_eq!(r.texp(&tuple![1, 25]), Some(Time::new(10)));
        assert_eq!(r.texp(&tuple![9, 9]), None);
        assert!(r.contains(&tuple![2, 25]));
    }

    #[test]
    fn insert_rejects_schema_violations() {
        let mut r = Relation::new(schema());
        assert!(r.insert(tuple![1], Time::INFINITY).is_err());
        assert!(r.insert(tuple![1, "x"], Time::INFINITY).is_err());
        assert!(r.is_empty());
    }

    #[test]
    fn duplicate_policies() {
        let mut r = Relation::new(schema());
        r.insert(tuple![1, 1], Time::new(5)).unwrap();
        r.insert(tuple![1, 1], Time::new(9)).unwrap(); // KeepMax
        assert_eq!(r.texp(&tuple![1, 1]), Some(Time::new(9)));
        r.insert_with(tuple![1, 1], Time::new(3), DuplicatePolicy::KeepMin)
            .unwrap();
        assert_eq!(r.texp(&tuple![1, 1]), Some(Time::new(3)));
        r.insert_with(tuple![1, 1], Time::new(7), DuplicatePolicy::Replace)
            .unwrap();
        assert_eq!(r.texp(&tuple![1, 1]), Some(Time::new(7)));
        assert_eq!(r.len(), 1, "duplicates never create new rows");
    }

    #[test]
    fn exp_tau_filters_strictly() {
        // texp > τ keeps the tuple: a tuple expiring at 10 is gone AT 10.
        let r = pol();
        assert_eq!(r.count_unexpired(Time::ZERO), 3);
        assert_eq!(r.count_unexpired(Time::new(9)), 3);
        assert_eq!(r.count_unexpired(Time::new(10)), 1);
        assert_eq!(r.count_unexpired(Time::new(15)), 0);
        let snap = r.exp(Time::new(10));
        assert_eq!(snap.len(), 1);
        assert!(snap.contains(&tuple![2, 25]));
    }

    #[test]
    fn expire_removes_eagerly_and_reports() {
        let mut r = pol();
        let removed = r.expire(Time::new(10));
        assert_eq!(removed.len(), 2);
        assert!(removed.iter().any(|(t, _)| *t == tuple![1, 25]));
        assert!(removed.iter().any(|(t, _)| *t == tuple![3, 35]));
        assert_eq!(r.len(), 1);
        assert_eq!(r.texp(&tuple![2, 25]), Some(Time::new(15)));
        // Index stays coherent after compaction.
        assert!(r.contains(&tuple![2, 25]));
        assert!(!r.contains(&tuple![1, 25]));
    }

    #[test]
    fn remove_preserves_order_and_index() {
        let mut r = pol();
        assert_eq!(r.remove(&tuple![1, 25]), Some(Time::new(10)));
        assert_eq!(r.remove(&tuple![1, 25]), None);
        let order: Vec<_> = r.iter().map(|(t, _)| t.clone()).collect();
        assert_eq!(order, vec![tuple![2, 25], tuple![3, 35]]);
        assert_eq!(r.texp(&tuple![3, 35]), Some(Time::new(10)));
    }

    #[test]
    fn next_expiration_and_event_times() {
        let r = pol();
        assert_eq!(r.next_expiration(Time::ZERO), Some(Time::new(10)));
        assert_eq!(r.next_expiration(Time::new(10)), Some(Time::new(15)));
        assert_eq!(r.next_expiration(Time::new(15)), None);
        assert_eq!(
            r.event_times(Time::ZERO),
            vec![Time::new(10), Time::new(15)]
        );
        let mut with_inf = r.clone();
        with_inf.insert(tuple![7, 7], Time::INFINITY).unwrap();
        assert_eq!(
            with_inf.event_times(Time::ZERO),
            vec![Time::new(10), Time::new(15)],
            "∞ rows generate no events"
        );
    }

    #[test]
    fn min_max_texp() {
        let r = pol();
        assert_eq!(r.min_texp(Time::ZERO), Some(Time::new(10)));
        assert_eq!(r.max_texp(Time::ZERO), Some(Time::new(15)));
        assert_eq!(r.min_texp(Time::new(15)), None);
    }

    #[test]
    fn set_equality_flavours() {
        let a = pol();
        let mut b = Relation::new(schema());
        // Same rows, different insertion order.
        b.insert(tuple![3, 35], Time::new(10)).unwrap();
        b.insert(tuple![1, 25], Time::new(10)).unwrap();
        b.insert(tuple![2, 25], Time::new(15)).unwrap();
        assert!(a.set_eq(&b));
        assert!(a.set_eq_at(&b, Time::ZERO));

        // Different texp breaks set_eq but not tuples_eq.
        let mut c = b.clone();
        c.insert_with(tuple![1, 25], Time::new(12), DuplicatePolicy::Replace)
            .unwrap();
        assert!(!a.set_eq(&c));
        assert!(a.tuples_eq_at(&c, Time::ZERO));

        // After both sides expire past 10, they agree again.
        assert!(a.set_eq_at(&c, Time::new(12)));
    }

    #[test]
    fn render_matches_figure_style() {
        let r = pol();
        let s = r.render_at(Time::ZERO);
        assert!(s.contains("10  ⟨1, 25⟩"));
        assert!(s.contains("15  ⟨2, 25⟩"));
        let empty = r.render_at(Time::new(20));
        assert!(empty.contains('∅'));
    }

    #[test]
    fn union_compatibility_check() {
        let a = pol();
        let b = Relation::new(Schema::of(&[("x", ValueType::Str)]));
        assert!(a.check_union_compatible(&pol()).is_ok());
        assert!(matches!(
            a.check_union_compatible(&b),
            Err(Error::NotUnionCompatible { .. })
        ));
    }

    #[test]
    fn sort_by_tuple_orders_rows() {
        let mut r = Relation::new(schema());
        r.insert(tuple![3, 1], Time::INFINITY).unwrap();
        r.insert(tuple![1, 2], Time::INFINITY).unwrap();
        r.insert(tuple![2, 0], Time::INFINITY).unwrap();
        r.sort_by_tuple();
        let order: Vec<_> = r.iter().map(|(t, _)| t.attr(0).as_int().unwrap()).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert!(r.contains(&tuple![3, 1]), "index rebuilt after sort");
    }
}
