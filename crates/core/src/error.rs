//! Error type shared by the data model and algebra.

use crate::value::ValueType;
use std::fmt;

/// Errors produced by schema checking, algebra construction, and evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Two attributes in one schema share a name.
    DuplicateAttribute(String),
    /// An attribute name did not resolve against a schema.
    UnknownAttribute(String),
    /// A positional attribute reference is out of range.
    AttributeOutOfRange {
        /// The offending zero-based index.
        index: usize,
        /// The arity of the schema it was checked against.
        arity: usize,
    },
    /// A tuple's arity does not match its schema.
    ArityMismatch {
        /// Expected arity.
        expected: usize,
        /// Actual tuple arity.
        actual: usize,
    },
    /// A tuple value's type does not match its attribute.
    TypeMismatch {
        /// The attribute name.
        attribute: String,
        /// Declared attribute type.
        expected: ValueType,
        /// Actual value type.
        actual: ValueType,
    },
    /// Union, intersection, or difference over non-union-compatible schemas.
    NotUnionCompatible {
        /// Debug rendering of the left schema.
        left: String,
        /// Debug rendering of the right schema.
        right: String,
    },
    /// A base relation referenced by an expression is missing from the
    /// catalog it is evaluated against.
    UnknownRelation(String),
    /// An aggregate was applied to an attribute that has no numeric view
    /// (e.g. `sum` over strings).
    NonNumericAggregate {
        /// The aggregate function name.
        function: &'static str,
        /// The offending attribute index (zero-based).
        attribute: usize,
    },
    /// An expiration time lies in the past of the operation's time `τ`.
    ExpirationInPast {
        /// The requested expiration time.
        expiration: crate::time::Time,
        /// The operation time `τ`.
        now: crate::time::Time,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DuplicateAttribute(n) => write!(f, "duplicate attribute name `{n}`"),
            Error::UnknownAttribute(n) => write!(f, "unknown attribute `{n}`"),
            Error::AttributeOutOfRange { index, arity } => {
                write!(f, "attribute index {index} out of range for arity {arity}")
            }
            Error::ArityMismatch { expected, actual } => {
                write!(f, "arity mismatch: expected {expected}, got {actual}")
            }
            Error::TypeMismatch {
                attribute,
                expected,
                actual,
            } => write!(
                f,
                "type mismatch on `{attribute}`: expected {expected}, got {actual}"
            ),
            Error::NotUnionCompatible { left, right } => {
                write!(f, "schemas not union-compatible: {left} vs {right}")
            }
            Error::UnknownRelation(n) => write!(f, "unknown relation `{n}`"),
            Error::NonNumericAggregate {
                function,
                attribute,
            } => write!(
                f,
                "aggregate `{function}` applied to non-numeric attribute #{attribute}"
            ),
            Error::ExpirationInPast { expiration, now } => write!(
                f,
                "expiration time {expiration} is not after current time {now}"
            ),
        }
    }
}

impl std::error::Error for Error {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Time;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(Error, &str)> = vec![
            (Error::DuplicateAttribute("a".into()), "duplicate"),
            (Error::UnknownAttribute("b".into()), "unknown attribute"),
            (
                Error::AttributeOutOfRange { index: 5, arity: 2 },
                "out of range",
            ),
            (
                Error::ArityMismatch {
                    expected: 2,
                    actual: 3,
                },
                "arity mismatch",
            ),
            (
                Error::TypeMismatch {
                    attribute: "x".into(),
                    expected: ValueType::Int,
                    actual: ValueType::Str,
                },
                "type mismatch",
            ),
            (
                Error::NotUnionCompatible {
                    left: "(a)".into(),
                    right: "(b)".into(),
                },
                "union-compatible",
            ),
            (Error::UnknownRelation("R".into()), "unknown relation"),
            (
                Error::NonNumericAggregate {
                    function: "sum",
                    attribute: 1,
                },
                "non-numeric",
            ),
            (
                Error::ExpirationInPast {
                    expiration: Time::new(1),
                    now: Time::new(5),
                },
                "not after",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }

    #[test]
    fn error_implements_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(Error::UnknownRelation("R".into()));
        assert!(e.to_string().contains("R"));
    }
}
