//! Half-open time intervals and interval sets.
//!
//! Section 3.4 of the paper replaces the single expiration time of a
//! materialised expression with a *set of validity intervals* `[τ1, τ2[`,
//! `τ1 < τ2` — the Schrödinger semantics. [`IntervalSet`] is the canonical
//! representation: sorted, pairwise disjoint, non-adjacent intervals, closed
//! under union, intersection, and difference.

use crate::time::Time;
use std::fmt;

/// A half-open interval `[start, end[` over [`Time`]; `end = ∞` encodes
/// `[start, ∞[`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Interval {
    /// Inclusive lower bound.
    pub start: Time,
    /// Exclusive upper bound (`∞` allowed).
    pub end: Time,
}

impl Interval {
    /// Creates `[start, end[`.
    ///
    /// # Panics
    ///
    /// Panics unless `start < end` (the paper requires `τ1 < τ2`).
    #[must_use]
    pub fn new(start: Time, end: Time) -> Self {
        assert!(
            start < end,
            "interval requires start < end: [{start}, {end}["
        );
        Interval { start, end }
    }

    /// `[start, ∞[`.
    #[must_use]
    pub fn from(start: Time) -> Self {
        Interval::new(start, Time::INFINITY)
    }

    /// Whether `t ∈ [start, end[`.
    #[must_use]
    pub fn contains(&self, t: Time) -> bool {
        self.start <= t && t < self.end
    }

    /// Whether the two intervals share at least one instant.
    #[must_use]
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// Whether the two intervals overlap or touch (`[1,3[` and `[3,5[`
    /// touch), i.e. their union is a single interval.
    #[must_use]
    pub fn mergeable(&self, other: &Interval) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// The intersection, if non-empty.
    #[must_use]
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        (start < end).then(|| Interval::new(start, end))
    }

    /// Number of instants covered; `None` when unbounded.
    #[must_use]
    pub fn length(&self) -> Option<u64> {
        match (self.start.finite(), self.end.finite()) {
            (Some(s), Some(e)) => Some(e - s),
            _ => None,
        }
    }
}

impl fmt::Debug for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}[", self.start, self.end)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A set of time instants represented as sorted, disjoint, non-adjacent
/// half-open intervals.
#[derive(Clone, PartialEq, Eq, Default, Hash)]
pub struct IntervalSet {
    // Invariant: sorted by start; for consecutive a, b: a.end < b.start.
    ivs: Vec<Interval>,
}

impl IntervalSet {
    /// The empty set.
    #[must_use]
    pub fn empty() -> Self {
        IntervalSet::default()
    }

    /// `[start, ∞[` — the validity of a monotonic expression queried at
    /// `start` (Section 3.4: "for an expression consisting solely of
    /// monotonic operators, I(e) returns [τ, ∞[").
    #[must_use]
    pub fn from_time(start: Time) -> Self {
        IntervalSet {
            ivs: vec![Interval::from(start)],
        }
    }

    /// A set holding a single interval.
    #[must_use]
    pub fn single(iv: Interval) -> Self {
        IntervalSet { ivs: vec![iv] }
    }

    /// Normalises arbitrary intervals into a canonical set (sorts, merges
    /// overlapping and adjacent intervals).
    #[must_use]
    pub fn from_intervals(mut ivs: Vec<Interval>) -> Self {
        ivs.sort();
        let mut out: Vec<Interval> = Vec::with_capacity(ivs.len());
        for iv in ivs {
            match out.last_mut() {
                Some(last) if last.mergeable(&iv) => {
                    last.end = last.end.max(iv.end);
                }
                _ => out.push(iv),
            }
        }
        IntervalSet { ivs: out }
    }

    /// Whether no instant is covered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ivs.is_empty()
    }

    /// The canonical intervals, sorted and disjoint.
    #[must_use]
    pub fn intervals(&self) -> &[Interval] {
        &self.ivs
    }

    /// Whether `t` is covered.
    #[must_use]
    pub fn contains(&self, t: Time) -> bool {
        // Binary search on start.
        match self.ivs.binary_search_by(|iv| iv.start.cmp(&t)) {
            Ok(_) => true,
            Err(0) => false,
            Err(i) => self.ivs[i - 1].contains(t),
        }
    }

    /// Set union.
    #[must_use]
    pub fn union(&self, other: &IntervalSet) -> IntervalSet {
        let mut all = self.ivs.clone();
        all.extend_from_slice(&other.ivs);
        IntervalSet::from_intervals(all)
    }

    /// Set intersection.
    #[must_use]
    pub fn intersect(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.ivs.len() && j < other.ivs.len() {
            if let Some(iv) = self.ivs[i].intersect(&other.ivs[j]) {
                out.push(iv);
            }
            if self.ivs[i].end <= other.ivs[j].end {
                i += 1;
            } else {
                j += 1;
            }
        }
        IntervalSet { ivs: out }
    }

    /// Set difference `self − other`. This is the operation of Equation 12:
    /// `I(R −exp S) = [τ, ∞[ − [min…, max…[`.
    #[must_use]
    pub fn subtract(&self, other: &IntervalSet) -> IntervalSet {
        let mut out: Vec<Interval> = Vec::new();
        for &iv in &self.ivs {
            let mut pieces = vec![iv];
            for &cut in &other.ivs {
                let mut next = Vec::new();
                for p in pieces {
                    if !p.overlaps(&cut) {
                        next.push(p);
                        continue;
                    }
                    if p.start < cut.start {
                        next.push(Interval::new(p.start, cut.start));
                    }
                    if cut.end < p.end {
                        next.push(Interval::new(cut.end, p.end));
                    }
                }
                pieces = next;
            }
            out.extend(pieces);
        }
        IntervalSet::from_intervals(out)
    }

    /// The earliest covered instant `>= t`, or `None` if the set contains
    /// nothing at or after `t`. Used to "move a query forward in time … to a
    /// time where the materialised expression is correct" (Section 3.3).
    #[must_use]
    pub fn next_covered(&self, t: Time) -> Option<Time> {
        for iv in &self.ivs {
            if iv.contains(t) {
                return Some(t);
            }
            if iv.start >= t {
                return Some(iv.start);
            }
        }
        None
    }

    /// The latest covered instant `<= t`, or `None`. Used to "move the
    /// query backward in time (returning a slightly outdated result)".
    #[must_use]
    pub fn prev_covered(&self, t: Time) -> Option<Time> {
        let mut best = None;
        for iv in &self.ivs {
            if iv.start > t {
                break;
            }
            if iv.contains(t) {
                return Some(t);
            }
            // iv lies entirely before t; its last instant is end - 1.
            best = Some(iv.end.pred());
        }
        best
    }

    /// Total number of instants covered; `None` when unbounded.
    #[must_use]
    pub fn measure(&self) -> Option<u64> {
        let mut total = 0u64;
        for iv in &self.ivs {
            total += iv.length()?;
        }
        Some(total)
    }
}

impl fmt::Debug for IntervalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ivs.is_empty() {
            return write!(f, "∅");
        }
        for (i, iv) in self.ivs.iter().enumerate() {
            if i > 0 {
                write!(f, " ∪ ")?;
            }
            write!(f, "{iv}")?;
        }
        Ok(())
    }
}

impl fmt::Display for IntervalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: u64) -> Time {
        Time::new(v)
    }

    fn iv(a: u64, b: u64) -> Interval {
        Interval::new(t(a), t(b))
    }

    #[test]
    fn interval_basics() {
        let i = iv(3, 7);
        assert!(i.contains(t(3)));
        assert!(i.contains(t(6)));
        assert!(!i.contains(t(7)), "end is exclusive");
        assert!(!i.contains(t(2)));
        assert_eq!(i.length(), Some(4));
        assert_eq!(Interval::from(t(5)).length(), None);
        assert!(Interval::from(t(5)).contains(Time::MAX_FINITE));
    }

    #[test]
    #[should_panic(expected = "start < end")]
    fn degenerate_interval_panics() {
        let _ = iv(5, 5);
    }

    #[test]
    fn overlap_and_mergeable() {
        assert!(iv(1, 5).overlaps(&iv(4, 8)));
        assert!(!iv(1, 5).overlaps(&iv(5, 8)), "touching is not overlapping");
        assert!(iv(1, 5).mergeable(&iv(5, 8)), "touching is mergeable");
        assert!(!iv(1, 5).mergeable(&iv(6, 8)));
    }

    #[test]
    fn interval_intersection() {
        assert_eq!(iv(1, 5).intersect(&iv(3, 8)), Some(iv(3, 5)));
        assert_eq!(iv(1, 5).intersect(&iv(5, 8)), None);
        assert_eq!(Interval::from(t(2)).intersect(&iv(0, 10)), Some(iv(2, 10)));
    }

    #[test]
    fn normalisation_merges_and_sorts() {
        let s = IntervalSet::from_intervals(vec![iv(5, 7), iv(1, 3), iv(3, 5), iv(10, 12)]);
        assert_eq!(s.intervals(), &[iv(1, 7), iv(10, 12)]);
        let s2 = IntervalSet::from_intervals(vec![iv(1, 10), iv(2, 3)]);
        assert_eq!(s2.intervals(), &[iv(1, 10)]);
    }

    #[test]
    fn contains_uses_binary_search_correctly() {
        let s = IntervalSet::from_intervals(vec![iv(1, 3), iv(5, 7), iv(9, 11)]);
        for (time, expect) in [
            (0, false),
            (1, true),
            (2, true),
            (3, false),
            (4, false),
            (5, true),
            (6, true),
            (7, false),
            (9, true),
            (10, true),
            (11, false),
        ] {
            assert_eq!(s.contains(t(time)), expect, "time {time}");
        }
        assert!(!IntervalSet::empty().contains(t(0)));
    }

    #[test]
    fn union_intersect_subtract() {
        let a = IntervalSet::from_intervals(vec![iv(0, 5), iv(10, 15)]);
        let b = IntervalSet::from_intervals(vec![iv(3, 12)]);
        assert_eq!(a.union(&b).intervals(), &[iv(0, 15)]);
        assert_eq!(a.intersect(&b).intervals(), &[iv(3, 5), iv(10, 12)]);
        assert_eq!(a.subtract(&b).intervals(), &[iv(0, 3), iv(12, 15)]);
        assert_eq!(b.subtract(&a).intervals(), &[iv(5, 10)]);
    }

    #[test]
    fn equation_12_shape() {
        // I(R −exp S) = [τ, ∞[ − [min, max[ : two intervals.
        let all = IntervalSet::from_time(t(0));
        let hole = IntervalSet::single(iv(3, 10));
        let validity = all.subtract(&hole);
        assert_eq!(validity.intervals(), &[iv(0, 3), Interval::from(t(10))]);
        assert!(validity.contains(t(2)));
        assert!(!validity.contains(t(5)));
        assert!(validity.contains(t(10)));
        assert!(validity.contains(t(1_000_000)));
    }

    #[test]
    fn subtract_unbounded_tail() {
        let all = IntervalSet::from_time(t(0));
        let tail = IntervalSet::single(Interval::from(t(7)));
        assert_eq!(all.subtract(&tail).intervals(), &[iv(0, 7)]);
        assert!(all.subtract(&all).is_empty());
    }

    #[test]
    fn next_and_prev_covered() {
        let s = IntervalSet::from_intervals(vec![iv(2, 4), iv(8, 10)]);
        assert_eq!(s.next_covered(t(0)), Some(t(2)));
        assert_eq!(s.next_covered(t(3)), Some(t(3)));
        assert_eq!(s.next_covered(t(4)), Some(t(8)));
        assert_eq!(s.next_covered(t(10)), None);
        assert_eq!(s.prev_covered(t(10)), Some(t(9)));
        assert_eq!(s.prev_covered(t(9)), Some(t(9)));
        assert_eq!(s.prev_covered(t(5)), Some(t(3)));
        assert_eq!(s.prev_covered(t(1)), None);
        assert_eq!(IntervalSet::empty().next_covered(t(0)), None);
    }

    #[test]
    fn measure() {
        let s = IntervalSet::from_intervals(vec![iv(2, 4), iv(8, 10)]);
        assert_eq!(s.measure(), Some(4));
        assert_eq!(IntervalSet::from_time(t(0)).measure(), None);
        assert_eq!(IntervalSet::empty().measure(), Some(0));
    }

    #[test]
    fn display_renders_union() {
        let s = IntervalSet::from_intervals(vec![iv(2, 4), iv(8, 10)]);
        assert_eq!(s.to_string(), "[2, 4[ ∪ [8, 10[");
        assert_eq!(IntervalSet::empty().to_string(), "∅");
        assert_eq!(IntervalSet::from_time(t(1)).to_string(), "[1, ∞[");
    }
}
