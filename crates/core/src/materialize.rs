//! Materialised views maintained independently of their base relations.
//!
//! The paper's motivation (Section 1): once a query result is computed, it
//! should be maintainable "by looking only at the expiration times of the
//! tuples of the query results and without referring back to the base
//! relations", because in loosely-coupled systems the base data may be
//! remote, expensive, or unreachable. A [`MaterializedView`] realises this:
//!
//! * **monotonic** views expire tuples locally and are *never* recomputed
//!   (Theorem 1);
//! * **non-monotonic** views know their expiration time `texp(e)` and are
//!   recomputed (a "message" back to the base data) only when it passes —
//!   or, for root differences, are *patched* from a local priority queue
//!   and never recomputed (Theorem 3);
//! * removal of expired tuples is **eager** (physical, trigger-friendly) or
//!   **lazy** (deferred, more optimisation freedom) per Section 3.2.

use crate::algebra::{eval, EvalOptions, Expr, Materialized};
use crate::catalog::Catalog;
use crate::error::Result;
use crate::relation::Relation;
use crate::time::Time;
use crate::tuple::Tuple;
use exptime_obs::{Counter, EventKind, MetricsRegistry, Obs, Tracer};

pub use exptime_obs::RefreshDecision;

/// How a view reacts when its materialisation expires (`τ ≥ texp(e)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RefreshPolicy {
    /// Recompute from the base relations (counts as base access).
    #[default]
    Recompute,
    /// Maintain via the Theorem 3 patch queue where possible (root
    /// differences); recompute otherwise.
    Patch,
}

/// Eager vs. lazy removal of expired tuples (Section 3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RemovalPolicy {
    /// Remove expired tuples from the materialisation as soon as the view
    /// is advanced past their expiration times. Useful when triggers must
    /// fire promptly.
    Eager,
    /// Keep expired tuples physically present but invisible; remove them
    /// only on [`MaterializedView::vacuum`]. More optimisation freedom.
    #[default]
    Lazy,
}

/// Counters describing how much independent maintenance cost a view has
/// incurred — the currency of the paper's loosely-coupled argument.
///
/// This is a cheap *snapshot*: the live values are registry-backed atomic
/// counters (see [`MaterializedView::attach_obs`]), and
/// [`MaterializedView::stats`] reads them out on demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ViewStats {
    /// Number of full recomputations against the base relations.
    pub recomputations: u64,
    /// Number of tuples inserted by the patch queue.
    pub patches_applied: u64,
    /// Number of reads served.
    pub reads: u64,
    /// Number of reads served purely from the local materialisation
    /// (no base access).
    pub local_reads: u64,
    /// Number of tuples physically removed (eager expiry + vacuums).
    pub tuples_removed: u64,
}

/// The live counter handles behind [`ViewStats`]. Detached views use
/// private counters; [`MaterializedView::attach_obs`] re-interns them in
/// a shared registry under `view.<name>.*`.
#[derive(Debug, Clone)]
struct ViewCounters {
    recomputations: Counter,
    patches_applied: Counter,
    reads: Counter,
    local_reads: Counter,
    tuples_removed: Counter,
}

impl ViewCounters {
    fn detached() -> Self {
        ViewCounters {
            recomputations: Counter::default(),
            patches_applied: Counter::default(),
            reads: Counter::default(),
            local_reads: Counter::default(),
            tuples_removed: Counter::default(),
        }
    }

    fn in_registry(registry: &MetricsRegistry, view_name: &str) -> Self {
        let c = |field: &str| registry.counter(&format!("view.{view_name}.{field}"));
        ViewCounters {
            recomputations: c("recomputations"),
            patches_applied: c("patches_applied"),
            reads: c("reads"),
            local_reads: c("local_reads"),
            tuples_removed: c("tuples_removed"),
        }
    }

    fn snapshot(&self) -> ViewStats {
        ViewStats {
            recomputations: self.recomputations.get(),
            patches_applied: self.patches_applied.get(),
            reads: self.reads.get(),
            local_reads: self.local_reads.get(),
            tuples_removed: self.tuples_removed.get(),
        }
    }

    fn add(&self, s: ViewStats) {
        self.recomputations.add(s.recomputations);
        self.patches_applied.add(s.patches_applied);
        self.reads.add(s.reads);
        self.local_reads.add(s.local_reads);
        self.tuples_removed.add(s.tuples_removed);
    }
}

/// A materialised query result that maintains itself as tuples expire.
#[derive(Debug)]
pub struct MaterializedView {
    expr: Expr,
    opts: EvalOptions,
    refresh: RefreshPolicy,
    removal: RemovalPolicy,
    state: Materialized,
    counters: ViewCounters,
    obs: Obs,
    tracer: Tracer,
    name: String,
    last_decision: Option<RefreshDecision>,
}

/// Cloning detaches: the clone starts with private counters seeded with
/// the source's current values and no event sink, so two replicas holding
/// clones of one view account their maintenance independently.
impl Clone for MaterializedView {
    fn clone(&self) -> Self {
        let counters = ViewCounters::detached();
        counters.add(self.counters.snapshot());
        MaterializedView {
            expr: self.expr.clone(),
            opts: self.opts,
            refresh: self.refresh,
            removal: self.removal,
            state: self.state.clone(),
            counters,
            obs: Obs::new(),
            tracer: Tracer::detached(),
            name: self.name.clone(),
            last_decision: self.last_decision,
        }
    }
}

impl MaterializedView {
    /// Materialises `expr` at time `τ` and wraps it as a maintained view.
    ///
    /// Under [`RefreshPolicy::Patch`], a root-level difference gets a
    /// Theorem 3 patch queue and will never recompute.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn new(
        expr: Expr,
        catalog: &Catalog,
        tau: Time,
        opts: EvalOptions,
        refresh: RefreshPolicy,
        removal: RemovalPolicy,
    ) -> Result<Self> {
        let opts = EvalOptions {
            patch_root_difference: refresh == RefreshPolicy::Patch,
            ..opts
        };
        let state = eval(&expr, catalog, tau, &opts)?;
        Ok(MaterializedView {
            expr,
            opts,
            refresh,
            removal,
            state,
            counters: ViewCounters::detached(),
            obs: Obs::new(),
            tracer: Tracer::detached(),
            name: "view".to_string(),
            last_decision: None,
        })
    }

    /// Re-homes this view's counters into `obs`'s registry under
    /// `view.<name>.*` and routes its refresh/vacuum events to `obs`'s
    /// sink. Already-accumulated counts migrate. The engine calls this
    /// when it adopts a view; standalone views can stay detached.
    pub fn attach_obs(&mut self, obs: &Obs, name: &str) {
        let counters = ViewCounters::in_registry(obs.registry(), name);
        counters.add(self.counters.snapshot());
        self.counters = counters;
        self.obs = obs.clone();
        self.name = name.to_string();
    }

    /// Adopts the engine's [`Tracer`], so maintenance work appears as
    /// `view.maintain` spans (with the refresh decision as an attribute)
    /// nested under whatever engine span is open.
    pub fn attach_tracer(&mut self, tracer: &Tracer) {
        self.tracer = tracer.clone();
    }

    /// The refresh decision taken by the most recent
    /// [`MaterializedView::maintain`]/[`MaterializedView::read`], if any —
    /// which Theorem (if any) saved the recomputation.
    #[must_use]
    pub fn last_decision(&self) -> Option<RefreshDecision> {
        self.last_decision
    }

    /// Materialises with default options and policies.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn with_defaults(expr: Expr, catalog: &Catalog, tau: Time) -> Result<Self> {
        MaterializedView::new(
            expr,
            catalog,
            tau,
            EvalOptions::default(),
            RefreshPolicy::default(),
            RemovalPolicy::default(),
        )
    }

    /// The view's defining expression.
    #[must_use]
    pub fn expr(&self) -> &Expr {
        &self.expr
    }

    /// The refresh policy the view was created with.
    #[must_use]
    pub fn refresh_policy(&self) -> RefreshPolicy {
        self.refresh
    }

    /// The removal policy the view was created with.
    #[must_use]
    pub fn removal_policy(&self) -> RemovalPolicy {
        self.removal
    }

    /// Whether the view is monotonic (never recomputes).
    #[must_use]
    pub fn is_monotonic(&self) -> bool {
        self.expr.is_monotonic()
    }

    /// The current expression expiration time `texp(e)`.
    #[must_use]
    pub fn texp(&self) -> Time {
        self.state.texp
    }

    /// The time the view was last (re)materialised.
    #[must_use]
    pub fn materialized_at(&self) -> Time {
        self.state.at
    }

    /// Maintenance statistics: a cheap snapshot of the live counters.
    #[must_use]
    pub fn stats(&self) -> ViewStats {
        self.counters.snapshot()
    }

    /// Whether the view can serve time `τ` without touching the base
    /// relations: `τ < texp(e)`.
    ///
    /// For a patched root difference, `texp(e)` already excludes the
    /// critical-tuple contribution (the queue handles those — Theorem 3),
    /// but it still reflects invalidation flowing up from non-monotonic
    /// *subexpressions* of the arguments, so the check stays `τ <
    /// texp(e)` rather than "patched ⇒ always fresh".
    #[must_use]
    pub fn fresh_at(&self, tau: Time) -> bool {
        self.state.fresh_at(tau)
    }

    /// Advances the view to time `τ` *without reading it*: applies due
    /// patches, performs eager removal, and — if the materialisation has
    /// expired — refreshes per policy. Returns `true` if the base
    /// relations were accessed (a recomputation).
    ///
    /// # Errors
    ///
    /// Propagates recomputation errors.
    pub fn maintain(&mut self, catalog: &Catalog, tau: Time) -> Result<bool> {
        let mut span = self.tracer.span("view.maintain");
        span.attr("view", &self.name);
        if let Some(t) = tau.finite() {
            span.at(t);
        }
        let mut recomputed = false;
        let mut patched = 0u64;
        if let Some(q) = &mut self.state.patches {
            patched = q.apply_due(&mut self.state.rel, tau) as u64;
            self.counters.patches_applied.add(patched);
        }
        if !self.fresh_at(tau) {
            self.state = eval(&self.expr, catalog, tau, &self.opts)?;
            self.counters.recomputations.inc();
            recomputed = true;
        }
        if self.removal == RemovalPolicy::Eager {
            self.counters
                .tuples_removed
                .add(self.state.rel.expire(tau).len() as u64);
        }
        let decision = if recomputed {
            RefreshDecision::Recompute
        } else if patched > 0 {
            RefreshDecision::PatchHit
        } else if self.is_monotonic() {
            RefreshDecision::Eternal
        } else {
            RefreshDecision::ValidityHit
        };
        self.last_decision = Some(decision);
        span.attr("decision", decision);
        span.attr("texp", self.state.texp);
        self.obs.emit_with(tau.finite(), || EventKind::ViewRefresh {
            view: self.name.clone(),
            decision,
            at: tau.finite().unwrap_or(u64::MAX),
        });
        Ok(recomputed)
    }

    /// Reads the view at time `τ`, maintaining it first. The returned
    /// relation is exactly what a fresh evaluation of the expression at `τ`
    /// would produce (Theorems 1–3).
    ///
    /// # Errors
    ///
    /// Propagates recomputation errors.
    pub fn read(&mut self, catalog: &Catalog, tau: Time) -> Result<Relation> {
        let recomputed = self.maintain(catalog, tau)?;
        self.counters.reads.inc();
        if !recomputed {
            self.counters.local_reads.inc();
        }
        Ok(self.state.rel.exp(tau))
    }

    /// Forces a re-materialisation from the base relations, regardless of
    /// freshness. The engine calls this when base relations were *updated*
    /// (inserts/deletes), which is outside the paper's expiration-only
    /// maintenance model ("we … assume that there are no updates to the
    /// source data") — expiration keeps views fresh for free; updates cost
    /// a recomputation.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn force_refresh(&mut self, catalog: &Catalog, tau: Time) -> Result<()> {
        let mut span = self.tracer.span("view.force_refresh");
        span.attr("view", &self.name);
        if let Some(t) = tau.finite() {
            span.at(t);
        }
        self.state = eval(&self.expr, catalog, tau, &self.opts)?;
        self.counters.recomputations.inc();
        self.last_decision = Some(RefreshDecision::Recompute);
        self.obs.emit_with(tau.finite(), || EventKind::ViewRefresh {
            view: self.name.clone(),
            decision: RefreshDecision::Recompute,
            at: tau.finite().unwrap_or(u64::MAX),
        });
        Ok(())
    }

    /// Physically removes tuples expired at `τ` (the lazy policy's
    /// deferred cleanup — "expired tuples are kept invisible to the user,
    /// but may be removed physically in a delayed fashion"). Returns the
    /// removed rows so triggers can fire on them.
    pub fn vacuum(&mut self, tau: Time) -> Vec<(Tuple, Time)> {
        let removed = self.state.rel.expire(tau);
        self.counters.tuples_removed.add(removed.len() as u64);
        self.obs.emit_with(tau.finite(), || EventKind::VacuumPass {
            at: tau.finite().unwrap_or(u64::MAX),
            removed: removed.len() as u64,
        });
        removed
    }

    /// The number of physically stored tuples (visible or not).
    #[must_use]
    pub fn stored_len(&self) -> usize {
        self.state.rel.len()
    }

    /// Access to the underlying materialisation (validity intervals,
    /// patch queue, …).
    #[must_use]
    pub fn materialized(&self) -> &Materialized {
        &self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggFunc;
    use crate::predicate::Predicate;
    use crate::schema::Schema;
    use crate::tuple;
    use crate::value::ValueType;

    fn t(v: u64) -> Time {
        Time::new(v)
    }

    fn catalog() -> Catalog {
        let schema = Schema::of(&[("uid", ValueType::Int), ("deg", ValueType::Int)]);
        let mut c = Catalog::new();
        c.register(
            "Pol",
            Relation::from_rows(
                schema.clone(),
                vec![
                    (tuple![1, 25], t(10)),
                    (tuple![2, 25], t(15)),
                    (tuple![3, 35], t(10)),
                ],
            )
            .unwrap(),
        );
        c.register(
            "El",
            Relation::from_rows(
                schema,
                vec![
                    (tuple![1, 75], t(5)),
                    (tuple![2, 85], t(3)),
                    (tuple![4, 90], t(2)),
                ],
            )
            .unwrap(),
        );
        c
    }

    #[test]
    fn monotonic_view_never_recomputes() {
        let c = catalog();
        let e = Expr::base("Pol").join(Expr::base("El"), Predicate::attr_eq_attr(0, 2));
        let mut v = MaterializedView::with_defaults(e.clone(), &c, Time::ZERO).unwrap();
        for now in 0..30 {
            let seen = v.read(&c, t(now)).unwrap();
            let fresh = eval(&e, &c, t(now), &EvalOptions::default()).unwrap();
            assert!(seen.set_eq(&fresh.rel.exp(t(now))), "at {now}");
        }
        assert_eq!(v.stats().recomputations, 0);
        assert_eq!(v.stats().reads, 30);
        assert_eq!(v.stats().local_reads, 30);
    }

    #[test]
    fn difference_view_recomputes_when_expired() {
        let c = catalog();
        let e = Expr::base("Pol")
            .project([0])
            .difference(Expr::base("El").project([0]));
        let mut v = MaterializedView::with_defaults(e.clone(), &c, Time::ZERO).unwrap();
        assert_eq!(v.texp(), t(3));
        // Reading before texp: local.
        v.read(&c, t(2)).unwrap();
        assert_eq!(v.stats().recomputations, 0);
        // Reading at/after texp: recomputes and stays correct.
        let seen = v.read(&c, t(3)).unwrap();
        assert_eq!(v.stats().recomputations, 1);
        assert!(seen.contains(&tuple![2]), "⟨2⟩ reappeared at 3");
        // Every later read matches a fresh evaluation.
        for now in 4..20 {
            let seen = v.read(&c, t(now)).unwrap();
            let fresh = eval(&e, &c, t(now), &EvalOptions::default()).unwrap();
            assert!(seen.set_eq(&fresh.rel.exp(t(now))), "at {now}");
        }
    }

    #[test]
    fn patched_difference_view_never_recomputes() {
        let c = catalog();
        let e = Expr::base("Pol")
            .project([0])
            .difference(Expr::base("El").project([0]));
        let mut v = MaterializedView::new(
            e.clone(),
            &c,
            Time::ZERO,
            EvalOptions::default(),
            RefreshPolicy::Patch,
            RemovalPolicy::Lazy,
        )
        .unwrap();
        assert_eq!(v.texp(), Time::INFINITY);
        for now in 0..25 {
            let seen = v.read(&c, t(now)).unwrap();
            let fresh = eval(&e, &c, t(now), &EvalOptions::default()).unwrap();
            assert!(seen.set_eq(&fresh.rel.exp(t(now))), "at {now}");
        }
        assert_eq!(v.stats().recomputations, 0, "Theorem 3");
        assert_eq!(v.stats().patches_applied, 2);
    }

    #[test]
    fn aggregate_view_recomputes_on_live_change_only() {
        let c = catalog();
        let e = Expr::base("Pol")
            .aggregate([1], AggFunc::Count)
            .project([1, 2]);
        let mut v = MaterializedView::with_defaults(e.clone(), &c, Time::ZERO).unwrap();
        assert_eq!(v.texp(), t(10));
        for now in 0..20 {
            let seen = v.read(&c, t(now)).unwrap();
            let fresh = eval(&e, &c, t(now), &EvalOptions::default()).unwrap();
            assert!(
                seen.set_eq(&fresh.rel.exp(t(now))),
                "at {now}: {seen:?} vs {:?}",
                fresh.rel.exp(t(now))
            );
        }
        // One recomputation at 10; the recomputed state (⟨25,1⟩@15) then
        // dies by pure expiration — no further recomputation needed even
        // though reads continue.
        assert_eq!(v.stats().recomputations, 1);
    }

    #[test]
    fn eager_removal_physically_deletes() {
        let c = catalog();
        let e = Expr::base("Pol").project([0, 1]);
        let mut v = MaterializedView::new(
            e,
            &c,
            Time::ZERO,
            EvalOptions::default(),
            RefreshPolicy::Recompute,
            RemovalPolicy::Eager,
        )
        .unwrap();
        assert_eq!(v.stored_len(), 3);
        v.maintain(&c, t(10)).unwrap();
        assert_eq!(v.stored_len(), 1, "eager: expired rows are gone");
        assert_eq!(v.stats().tuples_removed, 2);
    }

    #[test]
    fn lazy_removal_defers_until_vacuum() {
        let c = catalog();
        let e = Expr::base("Pol").project([0, 1]);
        let mut v = MaterializedView::with_defaults(e, &c, Time::ZERO).unwrap();
        v.maintain(&c, t(10)).unwrap();
        assert_eq!(v.stored_len(), 3, "lazy: physically still present");
        // But invisible to reads.
        assert_eq!(v.read(&c, t(10)).unwrap().len(), 1);
        let removed = v.vacuum(t(10));
        assert_eq!(removed.len(), 2);
        assert_eq!(v.stored_len(), 1);
        assert_eq!(v.stats().tuples_removed, 2);
    }

    #[test]
    fn attached_view_publishes_counters_and_events() {
        use exptime_obs::Obs;

        let c = catalog();
        let e = Expr::base("Pol")
            .project([0])
            .difference(Expr::base("El").project([0]));
        let mut v = MaterializedView::with_defaults(e, &c, Time::ZERO).unwrap();
        v.read(&c, t(1)).unwrap(); // accumulates while detached

        let obs = Obs::new();
        let ring = obs.install_ring(64);
        v.attach_obs(&obs, "hot");
        assert_eq!(
            obs.registry().counter_value("view.hot.reads"),
            1,
            "pre-attach counts migrate"
        );

        v.read(&c, t(2)).unwrap(); // fresh: validity hit
        v.read(&c, t(3)).unwrap(); // texp=3: recompute
        assert_eq!(obs.registry().counter_value("view.hot.reads"), 3);
        assert_eq!(obs.registry().counter_value("view.hot.recomputations"), 1);
        assert_eq!(v.stats().reads, 3, "ViewStats snapshot sees the registry");
        assert_eq!(v.last_decision(), Some(RefreshDecision::Recompute));

        let events = ring.recent(10);
        let decisions: Vec<_> = events
            .iter()
            .filter_map(|ev| match &ev.kind {
                exptime_obs::EventKind::ViewRefresh { decision, .. } => Some(*decision),
                _ => None,
            })
            .collect();
        assert_eq!(
            decisions,
            vec![RefreshDecision::ValidityHit, RefreshDecision::Recompute]
        );
    }

    #[test]
    fn cloned_view_accounts_independently() {
        let c = catalog();
        let e = Expr::base("Pol").project([0, 1]);
        let mut v = MaterializedView::with_defaults(e, &c, Time::ZERO).unwrap();
        v.read(&c, t(1)).unwrap();
        let mut w = v.clone();
        assert_eq!(w.stats().reads, 1, "clone starts from current values");
        w.read(&c, t(2)).unwrap();
        assert_eq!(w.stats().reads, 2);
        assert_eq!(v.stats().reads, 1, "original unaffected by clone's reads");
    }

    #[test]
    fn view_exposes_expression_and_monotonicity() {
        let c = catalog();
        let e = Expr::base("Pol").select(Predicate::attr_eq_const(1, 25));
        let v = MaterializedView::with_defaults(e.clone(), &c, Time::ZERO).unwrap();
        assert_eq!(v.expr(), &e);
        assert!(v.is_monotonic());
        assert_eq!(v.materialized_at(), Time::ZERO);
        assert!(v.fresh_at(t(1_000)));
        assert!(v.materialized().patches.is_none());
    }
}
