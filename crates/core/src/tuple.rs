//! Tuples: elements of relations.
//!
//! A tuple `r` of arity `α(R)` is an element of `D^α(R)`. The paper numbers
//! attributes `1, …, α(R)`; Rust code indexes from zero, so this module
//! exposes zero-based [`Tuple::attr`] and also the paper-style one-based
//! [`Tuple::attr1`] used by the figure-regeneration code to read like the
//! paper's formulas.

use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// An immutable tuple of attribute values.
///
/// Tuples are cheap to clone (`Arc` on the value slice) because the algebra
/// shares them freely between argument relations, partitions, materialised
/// results, and patch queues.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tuple {
    values: Arc<[Value]>,
}

impl Tuple {
    /// Creates a tuple from values.
    #[must_use]
    pub fn new(values: impl Into<Vec<Value>>) -> Self {
        Tuple {
            values: values.into().into(),
        }
    }

    /// The arity `α` of the tuple.
    #[inline]
    #[must_use]
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Zero-based attribute access.
    ///
    /// # Panics
    ///
    /// Panics if `i >= arity`.
    #[inline]
    #[must_use]
    pub fn attr(&self, i: usize) -> &Value {
        &self.values[i]
    }

    /// Paper-style one-based attribute access: `r(i)`, `i ∈ {1, …, α(R)}`.
    ///
    /// # Panics
    ///
    /// Panics if `i == 0` or `i > arity`.
    #[inline]
    #[must_use]
    pub fn attr1(&self, i: usize) -> &Value {
        assert!(i >= 1, "paper-style attribute indices start at 1");
        &self.values[i - 1]
    }

    /// Checked zero-based attribute access.
    #[inline]
    #[must_use]
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.values.get(i)
    }

    /// All values, in attribute order.
    #[inline]
    #[must_use]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Projects the tuple onto the given zero-based attribute positions,
    /// producing `⟨r(j1), …, r(jn)⟩`. Positions may repeat or reorder.
    ///
    /// # Panics
    ///
    /// Panics if any position is out of range.
    #[must_use]
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple::new(
            positions
                .iter()
                .map(|&j| self.values[j].clone())
                .collect::<Vec<_>>(),
        )
    }

    /// Concatenates two tuples:
    /// `⟨r(1), …, r(α(R)), s(1), …, s(α(S))⟩` (the Cartesian-product tuple
    /// of Equation 2).
    #[must_use]
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.arity() + other.arity());
        v.extend_from_slice(&self.values);
        v.extend_from_slice(&other.values);
        Tuple::new(v)
    }

    /// Appends a single value, used by aggregation to attach the aggregate
    /// attribute `a` to `⟨r(1), …, r(α(R))⟩` (Equation 8).
    #[must_use]
    pub fn append(&self, value: Value) -> Tuple {
        let mut v = Vec::with_capacity(self.arity() + 1);
        v.extend_from_slice(&self.values);
        v.push(value);
        Tuple::new(v)
    }

    /// Splits a product tuple back into its left part of arity `left_arity`
    /// and its right remainder; used when recovering the argument tuples of
    /// `R ×exp S` to look up their expiration times.
    ///
    /// # Panics
    ///
    /// Panics if `left_arity > arity`.
    #[must_use]
    pub fn split(&self, left_arity: usize) -> (Tuple, Tuple) {
        assert!(left_arity <= self.arity());
        (
            Tuple::new(self.values[..left_arity].to_vec()),
            Tuple::new(self.values[left_arity..].to_vec()),
        )
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:?}")?;
        }
        write!(f, "⟩")
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl<V: Into<Value>, const N: usize> From<[V; N]> for Tuple {
    fn from(vs: [V; N]) -> Self {
        Tuple::new(vs.into_iter().map(Into::into).collect::<Vec<_>>())
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(vs: Vec<Value>) -> Self {
        Tuple::new(vs)
    }
}

/// Builds a tuple from heterogeneous literals: `tuple![1, "a", 2.5]`.
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::tuple::Tuple::new(vec![$($crate::value::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = tuple![1, "a", 2.5, true];
        assert_eq!(t.arity(), 4);
        assert_eq!(t.attr(0), &Value::Int(1));
        assert_eq!(t.attr1(1), &Value::Int(1));
        assert_eq!(t.attr1(4), &Value::Bool(true));
        assert_eq!(t.get(4), None);
        assert_eq!(t.values().len(), 4);
    }

    #[test]
    #[should_panic(expected = "start at 1")]
    fn one_based_index_zero_panics() {
        let t = tuple![1];
        let _ = t.attr1(0);
    }

    #[test]
    fn projection_reorders_and_repeats() {
        let t = tuple![10, 20, 30];
        assert_eq!(t.project(&[2, 0]), tuple![30, 10]);
        assert_eq!(t.project(&[1, 1]), tuple![20, 20]);
        assert_eq!(t.project(&[]), Tuple::new(vec![]));
    }

    #[test]
    fn concat_and_split_roundtrip() {
        let r = tuple![1, 25];
        let s = tuple![1, 75];
        let rs = r.concat(&s);
        assert_eq!(rs, tuple![1, 25, 1, 75]);
        let (left, right) = rs.split(2);
        assert_eq!(left, r);
        assert_eq!(right, s);
    }

    #[test]
    fn append_adds_aggregate_attribute() {
        let t = tuple![1, 25];
        assert_eq!(t.append(Value::Int(2)), tuple![1, 25, 2]);
    }

    #[test]
    fn equality_and_hashing_are_structural() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(tuple![1, "a"]);
        assert!(set.contains(&tuple![1, "a"]));
        assert!(!set.contains(&tuple![1, "b"]));
    }

    #[test]
    fn debug_uses_angle_brackets() {
        assert_eq!(format!("{:?}", tuple![1, 25]), "⟨1, 25⟩");
        assert_eq!(tuple![1, "x"].to_string(), "⟨1, \"x\"⟩");
    }

    #[test]
    fn from_array_and_vec() {
        let a: Tuple = [1, 2, 3].into();
        assert_eq!(a, tuple![1, 2, 3]);
        let b: Tuple = vec![Value::Int(1)].into();
        assert_eq!(b, tuple![1]);
    }
}
