//! Neutral sets, time-sliced sets, and contributing sets (paper Table 1,
//! Definition 2).
//!
//! A *time-sliced* set is a set of tuples with identical expiration times; a
//! set is *neutral* with respect to an aggregate function if removing it
//! changes neither the aggregate value nor its expiration time. The
//! *contributing set* `C_{f,P} = P − ⋃ N` removes all time-sliced neutral
//! subsets; the aggregation result tuple for partition `P` then gets
//!
//! ```text
//! texp(t) = min{ texp(l) | l ∈ C_{f,P} }   if C_{f,P} ≠ ∅
//!           max{ texp(l) | l ∈ P }         if C_{f,P} = ∅
//! ```
//!
//! Operationally: tuples expire in ascending order of their (finite)
//! expiration times, one *time slice* at a time. As long as every expired
//! slice is neutral, the aggregate value is untouched; the result tuple
//! therefore lives until the first **non-neutral** slice expires. Tuples
//! with `texp = ∞` never expire and so never need to be neutral; if they
//! keep the value pinned (e.g. an `∞`-lived minimum), the result lives
//! forever.

use super::{AggFunc, Row};
use crate::error::Result;
use crate::time::Time;

/// Tolerance for float comparisons in the `sum`/`avg` neutrality
/// predicates. Integer inputs are exact in `f64` far beyond any realistic
/// partition sum, so this only matters for genuinely fractional data.
const EPS: f64 = 1e-9;

fn nearly_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPS * (1.0 + a.abs().max(b.abs()))
}

/// Splits a partition into time slices: `(texp, rows)` for each distinct
/// *finite* expiration time, ascending, followed by no entry for `∞` rows
/// (returned separately as the second component — they never expire).
#[must_use]
pub fn time_slices(partition: &[Row]) -> (Vec<(Time, Vec<Row>)>, Vec<Row>) {
    let mut finite: Vec<Row> = Vec::new();
    let mut immortal: Vec<Row> = Vec::new();
    for row in partition {
        if row.1.is_finite() {
            finite.push(row.clone());
        } else {
            immortal.push(row.clone());
        }
    }
    finite.sort_by_key(|(_, e)| *e);
    let mut slices: Vec<(Time, Vec<Row>)> = Vec::new();
    for row in finite {
        match slices.last_mut() {
            Some((e, rows)) if *e == row.1 => rows.push(row),
            _ => slices.push((row.1, vec![row])),
        }
    }
    (slices, immortal)
}

/// Whether the time-sliced set `slice` is neutral with respect to `f` in
/// partition `partition`, per the predicates of Table 1.
///
/// # Errors
///
/// Propagates numeric-view errors for `sum`/`avg` over non-numeric values.
pub fn is_neutral(slice: &[Row], partition: &[Row], f: AggFunc) -> Result<bool> {
    if slice.is_empty() {
        return Ok(true); // ∅ is neutral for every aggregate.
    }
    match f {
        AggFunc::Count => Ok(false), // only ∅ is neutral for count.
        AggFunc::Min(i) => {
            let min = match f.apply(partition)? {
                Some(v) => v,
                None => return Ok(true),
            };
            // The latest-expiring tuple(s) achieving the minimum.
            let max_achiever_texp = partition
                .iter()
                .filter(|(t, _)| t.attr(i).total_cmp(&min).is_eq())
                .map(|(_, e)| *e)
                .max()
                .expect("minimum is achieved");
            Ok(slice
                .iter()
                .all(|(t, e)| t.attr(i).total_cmp(&min).is_gt() || *e < max_achiever_texp))
        }
        AggFunc::Max(i) => {
            let max = match f.apply(partition)? {
                Some(v) => v,
                None => return Ok(true),
            };
            let max_achiever_texp = partition
                .iter()
                .filter(|(t, _)| t.attr(i).total_cmp(&max).is_eq())
                .map(|(_, e)| *e)
                .max()
                .expect("maximum is achieved");
            Ok(slice
                .iter()
                .all(|(t, e)| t.attr(i).total_cmp(&max).is_lt() || *e < max_achiever_texp))
        }
        AggFunc::Sum(i) => {
            let mut s = 0.0;
            for (t, _) in slice {
                match t.attr(i).as_numeric() {
                    Some(v) => s += v,
                    None => {
                        return Err(crate::error::Error::NonNumericAggregate {
                            function: "sum",
                            attribute: i,
                        })
                    }
                }
            }
            Ok(nearly_eq(s, 0.0))
        }
        AggFunc::Avg(i) => {
            let total: f64 = {
                let mut acc = 0.0;
                for (t, _) in partition {
                    acc +=
                        t.attr(i)
                            .as_numeric()
                            .ok_or(crate::error::Error::NonNumericAggregate {
                                function: "avg",
                                attribute: i,
                            })?;
                }
                acc
            };
            let slice_sum: f64 = {
                let mut acc = 0.0;
                for (t, _) in slice {
                    acc +=
                        t.attr(i)
                            .as_numeric()
                            .ok_or(crate::error::Error::NonNumericAggregate {
                                function: "avg",
                                attribute: i,
                            })?;
                }
                acc
            };
            // Σ_{t∈N} t(i) = (|N| / |P|) Σ_{r∈P} r(i)
            Ok(nearly_eq(
                slice_sum,
                (slice.len() as f64 / partition.len() as f64) * total,
            ))
        }
    }
}

/// The contributing set `C_{f,P}` of Definition 2: the partition minus every
/// time-sliced neutral subset. Tuples with `texp = ∞` always contribute —
/// they never expire, so they are never candidates for neutral removal.
///
/// # Errors
///
/// Propagates numeric-view errors from the neutrality predicates.
pub fn contributing_set(partition: &[Row], f: AggFunc) -> Result<Vec<Row>> {
    let (slices, immortal) = time_slices(partition);
    let mut out = immortal;
    for (_, slice) in &slices {
        if !is_neutral(slice, partition, f)? {
            out.extend(slice.iter().cloned());
        }
    }
    Ok(out)
}

/// The expiration time of an aggregation result tuple under the
/// contributing-set rule:
///
/// * `min{texp(l) | l ∈ C_{f,P}}` if the contributing set is non-empty;
/// * `max{texp(l) | l ∈ P}` otherwise (the value stays correct until the
///   whole partition expires — e.g. `sum` over all-zero values).
///
/// # Errors
///
/// Propagates numeric-view errors; panics on an empty partition (callers
/// aggregate only non-empty partitions, per Equation 8).
pub fn contributing_texp(partition: &[Row], f: AggFunc) -> Result<Time> {
    assert!(
        !partition.is_empty(),
        "contributing_texp requires a non-empty partition"
    );
    let c = contributing_set(partition, f)?;
    Ok(match Time::min_of(c.iter().map(|(_, e)| *e)) {
        Some(t) => t,
        None => Time::max_of(partition.iter().map(|(_, e)| *e)).expect("non-empty"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn row(a: i64, v: i64, e: u64) -> Row {
        (
            tuple![a, v],
            if e == 0 { Time::INFINITY } else { Time::new(e) },
        )
    }

    #[test]
    fn time_slices_group_and_sort() {
        let p = vec![row(1, 1, 7), row(2, 2, 3), row(3, 3, 7), row(4, 4, 0)];
        let (slices, immortal) = time_slices(&p);
        assert_eq!(slices.len(), 2);
        assert_eq!(slices[0].0, Time::new(3));
        assert_eq!(slices[0].1.len(), 1);
        assert_eq!(slices[1].0, Time::new(7));
        assert_eq!(slices[1].1.len(), 2);
        assert_eq!(immortal.len(), 1);
    }

    #[test]
    fn count_admits_only_empty_neutral_sets() {
        let p = vec![row(1, 1, 5)];
        assert!(is_neutral(&[], &p, AggFunc::Count).unwrap());
        assert!(!is_neutral(&p, &p, AggFunc::Count).unwrap());
        // Hence contributing texp == naive min texp.
        assert_eq!(contributing_texp(&p, AggFunc::Count).unwrap(), Time::new(5));
    }

    #[test]
    fn min_ignores_larger_values_and_shorter_lived_achievers() {
        // min = 10, achieved at texp 8 and texp 20. A slice with value 30
        // (any texp) is neutral; the achiever at 8 is neutral (a later
        // achiever exists); the achiever at 20 is not.
        let p = vec![row(1, 10, 8), row(2, 10, 20), row(3, 30, 5)];
        let (slices, _) = time_slices(&p);
        assert!(is_neutral(&slices[0].1, &p, AggFunc::Min(1)).unwrap()); // texp 5, value 30
        assert!(is_neutral(&slices[1].1, &p, AggFunc::Min(1)).unwrap()); // texp 8, achiever but not last
        assert!(!is_neutral(&slices[2].1, &p, AggFunc::Min(1)).unwrap()); // texp 20, pins the min
        assert_eq!(
            contributing_texp(&p, AggFunc::Min(1)).unwrap(),
            Time::new(20)
        );
    }

    #[test]
    fn max_is_symmetric_to_min() {
        let p = vec![row(1, 50, 8), row(2, 50, 20), row(3, 30, 5)];
        assert_eq!(
            contributing_texp(&p, AggFunc::Max(1)).unwrap(),
            Time::new(20)
        );
        // If the short-lived tuple held the max alone, it pins the result.
        let q = vec![row(1, 90, 4), row(2, 50, 20)];
        assert_eq!(
            contributing_texp(&q, AggFunc::Max(1)).unwrap(),
            Time::new(4)
        );
    }

    #[test]
    fn immortal_achiever_makes_min_eternal() {
        let p = vec![row(1, 10, 0), row(2, 30, 5)];
        assert_eq!(
            contributing_texp(&p, AggFunc::Min(1)).unwrap(),
            Time::INFINITY
        );
    }

    #[test]
    fn sum_zero_slices_are_neutral() {
        // Slice at texp 5 sums to zero → neutral; slice at 9 does not.
        let p = vec![row(1, 4, 5), row(2, -4, 5), row(3, 7, 9)];
        let (slices, _) = time_slices(&p);
        assert!(is_neutral(&slices[0].1, &p, AggFunc::Sum(1)).unwrap());
        assert!(!is_neutral(&slices[1].1, &p, AggFunc::Sum(1)).unwrap());
        assert_eq!(
            contributing_texp(&p, AggFunc::Sum(1)).unwrap(),
            Time::new(9)
        );
    }

    #[test]
    fn all_zero_sum_keeps_value_until_partition_death() {
        // Paper's example for C = ∅: all values zero under sum.
        let p = vec![row(1, 0, 5), row(2, 0, 9)];
        let c = contributing_set(&p, AggFunc::Sum(1)).unwrap();
        assert!(c.is_empty());
        assert_eq!(
            contributing_texp(&p, AggFunc::Sum(1)).unwrap(),
            Time::new(9),
            "C = ∅ ⇒ max texp over partition"
        );
    }

    #[test]
    fn avg_slice_at_overall_mean_is_neutral() {
        // Mean = 10. Slice {10, 10} at texp 4 has slice mean 10 → neutral.
        // (Note a two-slice partition cannot have exactly one neutral
        // slice: the complement of a mean-preserving slice preserves the
        // mean too — hence three slices here.)
        let p = vec![row(1, 10, 4), row(2, 10, 4), row(3, 5, 9), row(4, 15, 12)];
        let (slices, _) = time_slices(&p);
        assert!(is_neutral(&slices[0].1, &p, AggFunc::Avg(1)).unwrap());
        assert!(!is_neutral(&slices[1].1, &p, AggFunc::Avg(1)).unwrap());
        assert!(!is_neutral(&slices[2].1, &p, AggFunc::Avg(1)).unwrap());
        assert_eq!(
            contributing_texp(&p, AggFunc::Avg(1)).unwrap(),
            Time::new(9)
        );
    }

    #[test]
    fn contributing_set_lists_non_neutral_rows() {
        let p = vec![row(1, 4, 5), row(2, -4, 5), row(3, 7, 9)];
        let c = contributing_set(&p, AggFunc::Sum(1)).unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].0, tuple![3, 7]);
    }

    #[test]
    fn contributing_bound_never_shorter_than_naive() {
        // Property spot check across functions on a mixed partition.
        let p = vec![row(1, 3, 2), row(2, -3, 2), row(3, 8, 6), row(4, 1, 10)];
        let naive = Time::min_of(p.iter().map(|(_, e)| *e)).unwrap();
        for f in [
            AggFunc::Min(1),
            AggFunc::Max(1),
            AggFunc::Sum(1),
            AggFunc::Avg(1),
            AggFunc::Count,
        ] {
            let c = contributing_texp(&p, f).unwrap();
            assert!(c >= naive, "{f}: {c} >= {naive}");
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_partition_panics() {
        let _ = contributing_texp(&[], AggFunc::Count);
    }
}
