//! Aggregation with expiration times (paper Section 2.6.1).
//!
//! The paper's aggregation operator is Klug-style (Equation 8): every input
//! tuple `r` is extended with the aggregate value `a = f(φexp(R, r))` of its
//! partition, so the result has arity `α(R) + 1`. SQL `GROUP BY` output is
//! obtained by projecting onto the grouping attributes plus the aggregate
//! attribute — exactly as the paper's Figure 3(a) writes
//! `πexp_{2,3}(aggexp_{{2},count}(Pol))`.
//!
//! This module defines the standard SQL aggregate functions, the stable
//! partitioning function `φexp` (Equation 7, SQL `GROUP BY` semantics), and
//! the three expiration-time assignment modes:
//!
//! * [`AggMode::Naive`] — Equation 8: the minimum expiration time of the
//!   partition (conservative);
//! * [`AggMode::Contributing`] — Table 1 / Definition 2: ignore time-sliced
//!   *neutral* subsets, yielding the first instant a *non-neutral* slice
//!   expires (see [`neutral`]);
//! * [`AggMode::Exact`] — Equation 9: the χ/ν machinery — the tuple expires
//!   exactly when its aggregate value first changes (see [`nu`]).

pub mod approx;
pub mod neutral;
pub mod nu;

use crate::error::{Error, Result};
use crate::relation::Relation;
use crate::time::Time;
use crate::tuple::Tuple;
use crate::value::{Value, ValueType};
use std::collections::HashMap;
use std::fmt;

/// A row of a partition: the tuple and its expiration time.
pub type Row = (Tuple, Time);

/// The family `F` of standard SQL aggregate functions. The subscript in the
/// paper (`min₁`, `sum₂`, …) is the zero-based attribute position here;
/// `count` takes no attribute (the paper's `count₃` counts tuples, so the
/// subscript is irrelevant in a model without nulls).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Minimum of attribute `i`.
    Min(usize),
    /// Maximum of attribute `i`.
    Max(usize),
    /// Sum of attribute `i` (numeric).
    Sum(usize),
    /// Average of attribute `i` (numeric).
    Avg(usize),
    /// Number of tuples in the partition.
    Count,
}

impl AggFunc {
    /// The function's name, as in the paper's Table 1.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::Min(_) => "min",
            AggFunc::Max(_) => "max",
            AggFunc::Sum(_) => "sum",
            AggFunc::Avg(_) => "avg",
            AggFunc::Count => "count",
        }
    }

    /// The aggregated attribute position, if the function has one.
    #[must_use]
    pub fn attribute(&self) -> Option<usize> {
        match self {
            AggFunc::Min(i) | AggFunc::Max(i) | AggFunc::Sum(i) | AggFunc::Avg(i) => Some(*i),
            AggFunc::Count => None,
        }
    }

    /// The result type given the input attribute type.
    #[must_use]
    pub fn result_type(&self, input: Option<ValueType>) -> ValueType {
        match self {
            AggFunc::Count => ValueType::Int,
            AggFunc::Avg(_) => ValueType::Float,
            AggFunc::Sum(_) => match input {
                Some(ValueType::Int) => ValueType::Int,
                _ => ValueType::Float,
            },
            AggFunc::Min(_) | AggFunc::Max(_) => input.unwrap_or(ValueType::Int),
        }
    }

    /// Validates the function against an input arity and (numeric) types.
    ///
    /// # Errors
    ///
    /// Returns [`Error::AttributeOutOfRange`] on a bad attribute position.
    pub fn validate(&self, arity: usize) -> Result<()> {
        if let Some(i) = self.attribute() {
            if i >= arity {
                return Err(Error::AttributeOutOfRange { index: i, arity });
            }
        }
        Ok(())
    }

    /// Applies the function to a partition. Returns `None` for an empty
    /// partition (the paper's `f(∅)` is undefined; expiring partitions make
    /// their result tuples disappear rather than take a value).
    ///
    /// # Errors
    ///
    /// Returns [`Error::NonNumericAggregate`] if `sum`/`avg` meet a value
    /// with no numeric view.
    pub fn apply(&self, partition: &[Row]) -> Result<Option<Value>> {
        if partition.is_empty() {
            return Ok(None);
        }
        let numeric = |i: usize, f: &'static str| -> Result<Vec<f64>> {
            partition
                .iter()
                .map(|(t, _)| {
                    t.attr(i).as_numeric().ok_or(Error::NonNumericAggregate {
                        function: f,
                        attribute: i,
                    })
                })
                .collect()
        };
        let all_int = |i: usize| partition.iter().all(|(t, _)| t.attr(i).as_int().is_some());
        Ok(Some(match *self {
            AggFunc::Count => Value::Int(partition.len() as i64),
            AggFunc::Min(i) => partition
                .iter()
                .map(|(t, _)| t.attr(i).clone())
                .min_by(|a, b| a.total_cmp(b))
                .expect("non-empty partition"),
            AggFunc::Max(i) => partition
                .iter()
                .map(|(t, _)| t.attr(i).clone())
                .max_by(|a, b| a.total_cmp(b))
                .expect("non-empty partition"),
            AggFunc::Sum(i) => {
                let xs = numeric(i, "sum")?;
                let s: f64 = xs.iter().sum();
                if all_int(i) {
                    Value::Int(s as i64)
                } else {
                    Value::float(s)
                }
            }
            AggFunc::Avg(i) => {
                let xs = numeric(i, "avg")?;
                Value::float(xs.iter().sum::<f64>() / xs.len() as f64)
            }
        }))
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.attribute() {
            Some(i) => write!(f, "{}_{}", self.name(), i + 1),
            None => write!(f, "{}", self.name()),
        }
    }
}

/// How expiration times are assigned to aggregation result tuples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AggMode {
    /// Equation 8: the minimum expiration time of the partition.
    Naive,
    /// Table 1 / Definition 2: the contributing-set bound, which ignores
    /// time-sliced neutral subsets.
    Contributing,
    /// Equation 9: exact — the tuple expires precisely when its aggregate
    /// value first changes (or its partition fully expires).
    #[default]
    Exact,
}

/// The stable partitioning function `φexp` of Equation 7, applied to a whole
/// relation at time `τ`: groups the unexpired tuples by equality on the
/// grouping attributes (SQL `GROUP BY` semantics).
///
/// Returns `(group key, partition rows)` pairs; iteration order follows the
/// first appearance of each key in `R`, keeping output deterministic.
#[must_use]
pub fn partition(rel: &Relation, group_by: &[usize], tau: Time) -> Vec<(Tuple, Vec<Row>)> {
    let mut order: Vec<Tuple> = Vec::new();
    let mut groups: HashMap<Tuple, Vec<Row>> = HashMap::new();
    for (t, e) in rel.iter_at(tau) {
        let key = t.project(group_by);
        groups
            .entry(key.clone())
            .or_insert_with(|| {
                order.push(key);
                Vec::new()
            })
            .push((t.clone(), e));
    }
    order
        .into_iter()
        .map(|k| {
            let rows = groups.remove(&k).expect("key recorded without group");
            (k, rows)
        })
        .collect()
}

/// `φexp(R, r)` for a single reference tuple (Equation 7): the partition of
/// which `r` is an element, i.e. all unexpired tuples agreeing with `r` on
/// the grouping attributes.
#[must_use]
pub fn partition_of(rel: &Relation, group_by: &[usize], r: &Tuple, tau: Time) -> Vec<Row> {
    let key = r.project(group_by);
    rel.iter_at(tau)
        .filter(|(t, _)| t.project(group_by) == key)
        .map(|(t, e)| (t.clone(), e))
        .collect()
}

/// The expiration time of one aggregation result tuple for a given
/// partition, function, and mode, evaluated at time `τ`.
///
/// # Errors
///
/// Propagates [`Error::NonNumericAggregate`] from applying `f`.
pub fn result_texp(partition: &[Row], f: AggFunc, mode: AggMode, tau: Time) -> Result<Time> {
    match mode {
        AggMode::Naive => Ok(Time::min_of(partition.iter().map(|(_, e)| *e))
            .expect("result_texp requires a non-empty partition")),
        AggMode::Contributing => neutral::contributing_texp(partition, f),
        AggMode::Exact => nu::nu(tau, partition, &mut |rows| f.apply(rows)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::tuple;

    fn rows(data: &[(i64, i64, u64)]) -> Vec<Row> {
        data.iter()
            .map(|&(a, b, e)| {
                (
                    tuple![a, b],
                    if e == 0 { Time::INFINITY } else { Time::new(e) },
                )
            })
            .collect()
    }

    #[test]
    fn count_min_max() {
        let p = rows(&[(1, 10, 5), (2, 30, 7), (3, 20, 9)]);
        assert_eq!(AggFunc::Count.apply(&p).unwrap(), Some(Value::Int(3)));
        assert_eq!(AggFunc::Min(1).apply(&p).unwrap(), Some(Value::Int(10)));
        assert_eq!(AggFunc::Max(1).apply(&p).unwrap(), Some(Value::Int(30)));
    }

    #[test]
    fn sum_stays_int_when_inputs_are_int() {
        let p = rows(&[(1, 10, 5), (2, -4, 7)]);
        assert_eq!(AggFunc::Sum(1).apply(&p).unwrap(), Some(Value::Int(6)));
    }

    #[test]
    fn sum_and_avg_go_float_with_floats() {
        let p = vec![
            (tuple![1, 1.5], Time::new(5)),
            (tuple![2, 2.5], Time::new(7)),
        ];
        assert_eq!(AggFunc::Sum(1).apply(&p).unwrap(), Some(Value::float(4.0)));
        assert_eq!(AggFunc::Avg(1).apply(&p).unwrap(), Some(Value::float(2.0)));
    }

    #[test]
    fn avg_of_ints_is_float() {
        let p = rows(&[(1, 1, 5), (2, 2, 7)]);
        assert_eq!(AggFunc::Avg(1).apply(&p).unwrap(), Some(Value::float(1.5)));
    }

    #[test]
    fn empty_partition_yields_none() {
        assert_eq!(AggFunc::Count.apply(&[]).unwrap(), None);
        assert_eq!(AggFunc::Sum(0).apply(&[]).unwrap(), None);
    }

    #[test]
    fn non_numeric_sum_errors() {
        let p = vec![(tuple![1, "x"], Time::new(5))];
        assert!(matches!(
            AggFunc::Sum(1).apply(&p),
            Err(Error::NonNumericAggregate {
                function: "sum",
                attribute: 1
            })
        ));
        // min/max over strings are fine (total order).
        assert_eq!(AggFunc::Min(1).apply(&p).unwrap(), Some(Value::str("x")));
    }

    #[test]
    fn validate_positions() {
        assert!(AggFunc::Sum(1).validate(2).is_ok());
        assert!(AggFunc::Sum(2).validate(2).is_err());
        assert!(AggFunc::Count.validate(0).is_ok());
    }

    #[test]
    fn result_types() {
        assert_eq!(AggFunc::Count.result_type(None), ValueType::Int);
        assert_eq!(
            AggFunc::Sum(0).result_type(Some(ValueType::Int)),
            ValueType::Int
        );
        assert_eq!(
            AggFunc::Sum(0).result_type(Some(ValueType::Float)),
            ValueType::Float
        );
        assert_eq!(
            AggFunc::Avg(0).result_type(Some(ValueType::Int)),
            ValueType::Float
        );
        assert_eq!(
            AggFunc::Min(0).result_type(Some(ValueType::Str)),
            ValueType::Str
        );
    }

    #[test]
    fn display_uses_one_based_subscript() {
        assert_eq!(AggFunc::Sum(0).to_string(), "sum_1");
        assert_eq!(AggFunc::Count.to_string(), "count");
    }

    fn pol() -> Relation {
        // Figure 1(a).
        Relation::from_rows(
            Schema::of(&[("uid", ValueType::Int), ("deg", ValueType::Int)]),
            vec![
                (tuple![1, 25], Time::new(10)),
                (tuple![2, 25], Time::new(15)),
                (tuple![3, 35], Time::new(10)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn partition_groups_by_attribute() {
        let parts = partition(&pol(), &[1], Time::ZERO);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].0, tuple![25]);
        assert_eq!(parts[0].1.len(), 2);
        assert_eq!(parts[1].0, tuple![35]);
        assert_eq!(parts[1].1.len(), 1);
    }

    #[test]
    fn partition_respects_tau() {
        // At time 10 only ⟨2,25⟩ survives.
        let parts = partition(&pol(), &[1], Time::new(10));
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].1.len(), 1);
        assert_eq!(parts[0].1[0].0, tuple![2, 25]);
    }

    #[test]
    fn partition_of_single_tuple() {
        let p = partition_of(&pol(), &[1], &tuple![1, 25], Time::ZERO);
        assert_eq!(p.len(), 2);
        let p35 = partition_of(&pol(), &[1], &tuple![3, 35], Time::ZERO);
        assert_eq!(p35.len(), 1);
    }

    #[test]
    fn empty_group_by_is_one_partition() {
        let parts = partition(&pol(), &[], Time::ZERO);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].1.len(), 3);
    }

    #[test]
    fn result_texp_naive_is_partition_min() {
        let p = rows(&[(1, 25, 10), (2, 25, 15)]);
        assert_eq!(
            result_texp(&p, AggFunc::Count, AggMode::Naive, Time::ZERO).unwrap(),
            Time::new(10)
        );
    }

    #[test]
    fn result_texp_modes_are_ordered() {
        // lifetime(Naive) <= lifetime(Contributing) <= lifetime(Exact)
        // for a min aggregate where the minimum is held by a long-lived
        // tuple: p has min value 10 held until 20; a non-contributing tuple
        // expires at 5.
        let p = rows(&[(1, 10, 20), (2, 30, 5)]);
        let naive = result_texp(&p, AggFunc::Min(1), AggMode::Naive, Time::ZERO).unwrap();
        let contrib = result_texp(&p, AggFunc::Min(1), AggMode::Contributing, Time::ZERO).unwrap();
        let exact = result_texp(&p, AggFunc::Min(1), AggMode::Exact, Time::ZERO).unwrap();
        assert_eq!(naive, Time::new(5));
        assert!(naive <= contrib && contrib <= exact);
        assert_eq!(exact, Time::new(20), "min never changes until 20");
    }
}
