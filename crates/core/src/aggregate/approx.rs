//! Approximate aggregate validity with error bounds (paper Section 5,
//! future work: "if we are interested in maintaining, e.g., aggregate
//! values with certain error bounds, we might be able to improve
//! performance").
//!
//! Exact ν expires an aggregation result tuple the instant its value
//! changes *at all*. Under a [`Tolerance`], the tuple instead remains
//! valid while the current value stays within the bound of the value it
//! was materialised with — extending lifetimes (and thus shrinking
//! recomputation and synchronisation traffic) in exchange for bounded
//! staleness. A result tuple still expires unconditionally when its
//! partition fully dies (an approximate value for "no rows" is not a
//! thing).

use super::{AggFunc, Row};
use crate::error::Result;
use crate::interval::{Interval, IntervalSet};
use crate::time::Time;

/// An error bound on a numeric aggregate value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Tolerance {
    /// `|v − v₀| ≤ bound`.
    Absolute(f64),
    /// `|v − v₀| ≤ bound · |v₀|` (with `v₀ = 0` degrading to exact
    /// equality, the only sound reading).
    Relative(f64),
}

impl Tolerance {
    /// Whether `current` is acceptable as an approximation of
    /// `original`.
    #[must_use]
    pub fn accepts(&self, original: f64, current: f64) -> bool {
        let err = (current - original).abs();
        match *self {
            Tolerance::Absolute(b) => err <= b,
            Tolerance::Relative(b) => err <= b * original.abs(),
        }
    }
}

/// The numeric value of `f` over the rows surviving at `tau`, or `None`
/// on an empty partition / non-numeric result.
fn numeric_at(f: AggFunc, partition: &[Row], tau: Time) -> Result<Option<f64>> {
    let surviving: Vec<Row> = partition
        .iter()
        .filter(|(_, e)| *e > tau)
        .cloned()
        .collect();
    Ok(f.apply(&surviving)?.and_then(|v| v.as_numeric()))
}

/// The expiration time of an aggregation result tuple under a tolerance:
/// the first instant at which the aggregate value drifts outside the
/// bound of its materialisation-time value, or the partition dies.
/// Always `≥` the exact ν.
///
/// # Errors
///
/// Propagates aggregation errors. Returns the exact ν behaviour for
/// non-numeric aggregates (strings under min/max), where "approximately
/// equal" has no meaning.
pub fn tolerant_texp(
    tau: Time,
    partition: &[Row],
    f: AggFunc,
    tolerance: Tolerance,
) -> Result<Time> {
    let Some(original) = numeric_at(f, partition, tau)? else {
        // Empty partition at τ or non-numeric value: defer to exact ν.
        let mut apply = |rows: &[Row]| f.apply(rows);
        return super::nu::nu(tau, partition, &mut apply);
    };
    let mut events: Vec<Time> = partition
        .iter()
        .filter(|(_, e)| e.is_finite() && *e > tau)
        .map(|(_, e)| *e)
        .collect();
    events.sort_unstable();
    events.dedup();
    for e in events {
        match numeric_at(f, partition, e)? {
            Some(v) if tolerance.accepts(original, v) => {}
            _ => return Ok(e), // drifted out of bounds, or partition died
        }
    }
    Ok(Time::INFINITY)
}

/// The validity intervals of an approximate aggregate: all instants at
/// which the (live) value is within tolerance of the value at `τ`.
///
/// # Errors
///
/// Propagates aggregation errors.
pub fn tolerant_validity(
    tau: Time,
    partition: &[Row],
    f: AggFunc,
    tolerance: Tolerance,
) -> Result<IntervalSet> {
    let Some(original) = numeric_at(f, partition, tau)? else {
        let mut apply = |rows: &[Row]| f.apply(rows);
        return super::nu::tuple_validity(tau, partition, &mut apply);
    };
    let mut events: Vec<Time> = partition
        .iter()
        .filter(|(_, e)| e.is_finite() && *e > tau)
        .map(|(_, e)| *e)
        .collect();
    events.sort_unstable();
    events.dedup();
    let mut ivs = Vec::new();
    let mut start = Some(tau); // value at τ is trivially within tolerance
    let mut prev = tau;
    for e in events {
        let ok = matches!(numeric_at(f, partition, e)?, Some(v) if tolerance.accepts(original, v));
        match (start, ok) {
            (Some(_), true) | (None, false) => {}
            (Some(s), false) => {
                ivs.push(Interval::new(s, e));
                start = None;
            }
            (None, true) => start = Some(e),
        }
        prev = e;
    }
    let _ = prev;
    if let Some(s) = start {
        ivs.push(Interval::from(s));
    }
    Ok(IntervalSet::from_intervals(ivs))
}

/// The worst observed error (absolute) while a tolerant result tuple is
/// alive — the quantity an application trades for the extended lifetime.
/// Returns 0.0 for lifetimes that ν would also have allowed.
///
/// # Errors
///
/// Propagates aggregation errors.
pub fn max_error_within(tau: Time, partition: &[Row], f: AggFunc, until: Time) -> Result<f64> {
    let Some(original) = numeric_at(f, partition, tau)? else {
        return Ok(0.0);
    };
    let mut worst: f64 = 0.0;
    let mut events: Vec<Time> = partition
        .iter()
        .filter(|(_, e)| e.is_finite() && *e > tau && *e < until)
        .map(|(_, e)| *e)
        .collect();
    events.sort_unstable();
    events.dedup();
    for e in events {
        if let Some(v) = numeric_at(f, partition, e)? {
            worst = worst.max((v - original).abs());
        }
    }
    Ok(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn row(v: i64, e: u64) -> Row {
        (
            tuple![0, v],
            if e == 0 { Time::INFINITY } else { Time::new(e) },
        )
    }

    #[test]
    fn tolerance_acceptance() {
        assert!(Tolerance::Absolute(2.0).accepts(10.0, 11.5));
        assert!(!Tolerance::Absolute(2.0).accepts(10.0, 12.5));
        assert!(Tolerance::Relative(0.1).accepts(100.0, 109.0));
        assert!(!Tolerance::Relative(0.1).accepts(100.0, 111.0));
        // v₀ = 0: relative degrades to exact equality.
        assert!(Tolerance::Relative(0.5).accepts(0.0, 0.0));
        assert!(!Tolerance::Relative(0.5).accepts(0.0, 0.1));
    }

    #[test]
    fn zero_tolerance_equals_exact_nu() {
        let p = vec![row(10, 5), row(20, 9), row(30, 13)];
        for f in [AggFunc::Sum(1), AggFunc::Avg(1), AggFunc::Count] {
            let mut apply = |rows: &[Row]| f.apply(rows);
            let exact = crate::aggregate::nu::nu(Time::ZERO, &p, &mut apply).unwrap();
            let tol = tolerant_texp(Time::ZERO, &p, f, Tolerance::Absolute(0.0)).unwrap();
            assert_eq!(exact, tol, "{f}");
        }
    }

    #[test]
    fn tolerance_extends_lifetime_monotonically() {
        // sum = 60; expiries at 5 (−10), 9 (−20), 13 (−30, death).
        let p = vec![row(10, 5), row(20, 9), row(30, 13)];
        let f = AggFunc::Sum(1);
        let t0 = tolerant_texp(Time::ZERO, &p, f, Tolerance::Absolute(0.0)).unwrap();
        let t10 = tolerant_texp(Time::ZERO, &p, f, Tolerance::Absolute(10.0)).unwrap();
        let t30 = tolerant_texp(Time::ZERO, &p, f, Tolerance::Absolute(30.0)).unwrap();
        let t99 = tolerant_texp(Time::ZERO, &p, f, Tolerance::Absolute(99.0)).unwrap();
        assert_eq!(t0, Time::new(5));
        assert_eq!(t10, Time::new(9), "tolerates the −10 drop");
        assert_eq!(t30, Time::new(13), "tolerates −30 cumulative");
        assert_eq!(t99, Time::new(13), "partition death still expires");
        assert!(t0 <= t10 && t10 <= t30 && t30 <= t99);
    }

    #[test]
    fn relative_tolerance_on_avg() {
        // avg = 20; after 5: avg(20,30)=25 (25% drift); after 9: avg=30.
        let p = vec![row(10, 5), row(20, 9), row(30, 13)];
        let f = AggFunc::Avg(1);
        assert_eq!(
            tolerant_texp(Time::ZERO, &p, f, Tolerance::Relative(0.3)).unwrap(),
            Time::new(9),
            "25% ok at 5, 50% too much at 9"
        );
        assert_eq!(
            tolerant_texp(Time::ZERO, &p, f, Tolerance::Relative(0.5)).unwrap(),
            Time::new(13)
        );
    }

    #[test]
    fn validity_intervals_track_drift_in_and_out() {
        // sum: 5 on [0,3[ (rows +10@7, −5@3): wait — construct re-entry:
        // +4@3, −4@7, base 10@12: sum = 10 on [0,3[? rows: 10@12, 4@3,
        // -4@7 → sum 10 at 0? 10+4-4 = 10. After 3: 10-4 = 6. After 7: 10.
        let p = vec![row(10, 12), row(4, 3), row(-4, 7)];
        let f = AggFunc::Sum(1);
        let v = tolerant_validity(Time::ZERO, &p, f, Tolerance::Absolute(1.0)).unwrap();
        assert!(v.contains(Time::new(2)));
        assert!(!v.contains(Time::new(4)), "drifted to 6, err 4 > 1");
        assert!(v.contains(Time::new(8)), "back to 10 after −4 expires");
        assert!(!v.contains(Time::new(12)), "partition death");
        // Wider tolerance covers the dip too.
        let v = tolerant_validity(Time::ZERO, &p, f, Tolerance::Absolute(5.0)).unwrap();
        assert!(v.contains(Time::new(4)));
    }

    #[test]
    fn max_error_is_bounded_by_the_tolerance_used() {
        let p = vec![row(10, 5), row(20, 9), row(30, 13)];
        let f = AggFunc::Sum(1);
        for bound in [0.0, 10.0, 30.0] {
            let texp = tolerant_texp(Time::ZERO, &p, f, Tolerance::Absolute(bound)).unwrap();
            let err = max_error_within(Time::ZERO, &p, f, texp).unwrap();
            assert!(err <= bound, "observed {err} > bound {bound}");
        }
    }

    #[test]
    fn non_numeric_min_defers_to_exact() {
        let p = vec![
            (tuple![0, "b"], Time::new(5)),
            (tuple![0, "a"], Time::new(9)),
        ];
        // min is "a" pinned to 9; tolerance is meaningless for strings.
        let t = tolerant_texp(Time::ZERO, &p, AggFunc::Min(1), Tolerance::Absolute(5.0)).unwrap();
        assert_eq!(t, Time::new(9));
    }

    #[test]
    fn immortal_rows_allow_infinite_tolerant_life() {
        let p = vec![row(10, 0), row(1, 4)];
        let f = AggFunc::Sum(1);
        // Exact: changes at 4. Tolerant(2): the −1 drop stays in bounds
        // and nothing else ever changes → ∞.
        assert_eq!(
            tolerant_texp(Time::ZERO, &p, f, Tolerance::Absolute(2.0)).unwrap(),
            Time::INFINITY
        );
    }
}
