//! The χ/ν change-point machinery for arbitrary aggregate functions
//! (paper Equation 9 and Section 3.4.1).
//!
//! The paper defines
//!
//! ```text
//! χ(τ, P, f) ≡ f(expτ(P)) ≠ f(expτ+1(P))
//! ν(τ, P, f) = min{ τ′ | τ′ ≥ τ ∧ χ(τ′, P, f) }
//! ```
//!
//! and assigns aggregation result tuples the expiration time at which their
//! aggregate value first changes. As the paper notes, "the functions χ and ν
//! are best calculated when the actual aggregate values … are computed"
//! rather than by naive per-tick translation: the aggregate value over
//! `expτ′(P)` is piecewise constant in `τ′` and can only change at the
//! distinct expiration times of the partition's tuples, so one sweep over
//! the sorted time slices computes everything. [`nu_naive`] keeps the
//! literal per-tick definition as a differential-testing oracle (and as the
//! ablation baseline for experiment A1).
//!
//! One convention note: with `texp` semantics "visible while `now < texp`",
//! the right expiration time for a result tuple whose value first *differs*
//! at instant `e` is `e` itself (the tuple is correct through `e − 1` and
//! must be gone at `e`). The paper's literal `ν` is the `τ′` with
//! `χ(τ′) = true`, i.e. `e − 1`; assigning that would hide the tuple one
//! tick early and contradict the paper's own Figure 3(a), where `⟨25, 2⟩`
//! "expires at 10" (not 9). [`nu`] therefore returns the first instant at
//! which the value differs — `ν_literal + 1` — which is the quantity every
//! use site in the paper actually needs.

use super::Row;
use crate::error::Result;
use crate::interval::{Interval, IntervalSet};
use crate::time::Time;
use crate::value::Value;

/// An aggregate function as the paper treats it abstractly: any
/// deterministic map from a set of tuples to a value, `None` on `∅`.
/// [`super::AggFunc::apply`] is the standard instance.
pub type AggFn<'a> = &'a mut dyn FnMut(&[Row]) -> Result<Option<Value>>;

/// The surviving rows `expτ(P)` of a partition.
fn surviving(partition: &[Row], tau: Time) -> Vec<Row> {
    partition
        .iter()
        .filter(|(_, e)| *e > tau)
        .cloned()
        .collect()
}

/// The piecewise-constant timeline of the aggregate value from `τ` onwards:
/// `(start, value)` entries meaning the value holds on `[start, next start[`
/// (the last entry holds forever). `value = None` means the partition is
/// empty. Consecutive equal values are merged, so every entry after the
/// first is a genuine change point.
///
/// # Errors
///
/// Propagates errors from `f`.
pub fn value_timeline(
    tau: Time,
    partition: &[Row],
    f: AggFn<'_>,
) -> Result<Vec<(Time, Option<Value>)>> {
    let mut timeline = vec![(tau, f(&surviving(partition, tau))?)];
    let mut events: Vec<Time> = partition
        .iter()
        .filter(|(_, e)| e.is_finite() && *e > tau)
        .map(|(_, e)| *e)
        .collect();
    events.sort_unstable();
    events.dedup();
    for e in events {
        let v = f(&surviving(partition, e))?;
        if v != timeline.last().expect("timeline non-empty").1 {
            timeline.push((e, v));
        }
    }
    Ok(timeline)
}

/// The paper's χ: does the aggregate value differ between `τ′` and
/// `τ′ + 1`?
///
/// # Errors
///
/// Propagates errors from `f`.
pub fn chi(tau_prime: Time, partition: &[Row], f: AggFn<'_>) -> Result<bool> {
    let a = f(&surviving(partition, tau_prime))?;
    let b = f(&surviving(partition, tau_prime.succ()))?;
    Ok(a != b)
}

/// ν as used throughout the paper: the first instant `≥ τ` at which the
/// aggregate value over `expτ′(P)` differs from its value at `τ` — the
/// correct expiration time for a result tuple materialised at `τ` (see the
/// module docs for the one-tick convention). Returns [`Time::INFINITY`] if
/// the value never changes (e.g. the partition contains `∞` rows that pin
/// it forever).
///
/// Computed by a single sweep over the partition's time slices:
/// `O(k · cost(f))` for `k` distinct expiration times, versus the naive
/// per-tick `O(range · cost(f))` of [`nu_naive`].
///
/// # Errors
///
/// Propagates errors from `f`.
pub fn nu(tau: Time, partition: &[Row], f: AggFn<'_>) -> Result<Time> {
    let timeline = value_timeline(tau, partition, f)?;
    Ok(match timeline.get(1) {
        Some(&(t, _)) => t,
        None => Time::INFINITY,
    })
}

/// The literal per-tick evaluation of ν (then shifted by the one-tick
/// convention): walks `τ, τ+1, τ+2, …` applying `f` at every tick until the
/// value changes or `horizon` is reached (`None` past the horizon). Kept as
/// a differential-testing oracle and ablation baseline — use [`nu`] in real
/// code.
///
/// # Errors
///
/// Propagates errors from `f`.
pub fn nu_naive(tau: Time, partition: &[Row], f: AggFn<'_>, horizon: Time) -> Result<Option<Time>> {
    let original = f(&surviving(partition, tau))?;
    let mut t = tau;
    while t <= horizon {
        let v = f(&surviving(partition, t))?;
        if v != original {
            return Ok(Some(t));
        }
        t = t.succ();
    }
    Ok(None)
}

/// The validity intervals `I_R(t)` of an aggregation result tuple
/// (Section 3.4.1): the union of the intervals on which the aggregate value
/// equals its value at query time `τ`. A result tuple is *correct* exactly
/// while the value it carries is the value a recomputation would produce.
///
/// # Errors
///
/// Propagates errors from `f`.
pub fn tuple_validity(tau: Time, partition: &[Row], f: AggFn<'_>) -> Result<IntervalSet> {
    let timeline = value_timeline(tau, partition, f)?;
    let original = timeline[0].1.clone();
    let mut ivs = Vec::new();
    for (i, (start, v)) in timeline.iter().enumerate() {
        if *v == original {
            let end = timeline
                .get(i + 1)
                .map_or(Time::INFINITY, |&(next, _)| next);
            ivs.push(Interval::new(*start, end));
        }
    }
    Ok(IntervalSet::from_intervals(ivs))
}

/// How many times the aggregate value changes from `τ` until the partition
/// has fully expired — the paper's bound on "the amount of memory we need to
/// store the future states of an aggregation" (Section 3.4.1). Always
/// `≤ |P|`.
///
/// # Errors
///
/// Propagates errors from `f`.
pub fn change_count(tau: Time, partition: &[Row], f: AggFn<'_>) -> Result<usize> {
    Ok(value_timeline(tau, partition, f)?.len() - 1)
}

/// The instant the partition fully expires, `max{texp_P(t) | t ∈ P}`
/// (the paper's formula for `min{τ′ | expτ′(P) = ∅}`); `∞` if any row
/// never expires, `None` on an empty partition.
#[must_use]
pub fn partition_death(partition: &[Row]) -> Option<Time> {
    Time::max_of(partition.iter().map(|(_, e)| *e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggFunc;
    use crate::tuple;

    fn row(a: i64, v: i64, e: u64) -> Row {
        (
            tuple![a, v],
            if e == 0 { Time::INFINITY } else { Time::new(e) },
        )
    }

    fn apply(f: AggFunc) -> impl FnMut(&[Row]) -> Result<Option<Value>> {
        move |rows| f.apply(rows)
    }

    #[test]
    fn timeline_of_count_over_figure_3a_partition() {
        // Partition for deg=25 in Pol: texp 10 and 15.
        let p = vec![row(1, 25, 10), row(2, 25, 15)];
        let mut f = apply(AggFunc::Count);
        let tl = value_timeline(Time::ZERO, &p, &mut f).unwrap();
        assert_eq!(
            tl,
            vec![
                (Time::ZERO, Some(Value::Int(2))),
                (Time::new(10), Some(Value::Int(1))),
                (Time::new(15), None),
            ]
        );
    }

    #[test]
    fn nu_matches_figure_3a() {
        // The paper: ⟨25, 2⟩ expires at time 10 (count drops 2 → 1).
        let p = vec![row(1, 25, 10), row(2, 25, 15)];
        let mut f = apply(AggFunc::Count);
        assert_eq!(nu(Time::ZERO, &p, &mut f).unwrap(), Time::new(10));
        // The deg=35 partition: single tuple, count drops to ∅ at 10.
        let q = vec![row(3, 35, 10)];
        let mut f = apply(AggFunc::Count);
        assert_eq!(nu(Time::ZERO, &q, &mut f).unwrap(), Time::new(10));
    }

    #[test]
    fn nu_is_infinity_when_value_never_changes() {
        // An immortal tuple pins count at 1 after the mortal one leaves?
        // No — count changes when the mortal tuple leaves. Use min pinned
        // by an immortal achiever instead.
        let p = vec![row(1, 5, 0), row(2, 9, 7)];
        let mut f = apply(AggFunc::Min(1));
        assert_eq!(nu(Time::ZERO, &p, &mut f).unwrap(), Time::INFINITY);
        let mut f = apply(AggFunc::Count);
        assert_eq!(nu(Time::ZERO, &p, &mut f).unwrap(), Time::new(7));
    }

    #[test]
    fn nu_respects_query_time_tau() {
        let p = vec![row(1, 25, 10), row(2, 25, 15)];
        let mut f = apply(AggFunc::Count);
        // Queried at 12, the count is already 1 and next changes at 15.
        assert_eq!(nu(Time::new(12), &p, &mut f).unwrap(), Time::new(15));
    }

    #[test]
    fn nu_agrees_with_naive_oracle() {
        let partitions = vec![
            vec![row(1, 25, 10), row(2, 25, 15)],
            vec![row(1, 5, 3), row(2, 5, 3), row(3, 7, 8)],
            vec![row(1, 0, 4), row(2, 0, 6)],
            vec![row(1, 2, 0), row(2, 3, 5)],
        ];
        for p in partitions {
            for func in [
                AggFunc::Count,
                AggFunc::Min(1),
                AggFunc::Max(1),
                AggFunc::Sum(1),
                AggFunc::Avg(1),
            ] {
                let mut f1 = apply(func);
                let mut f2 = apply(func);
                let fast = nu(Time::ZERO, &p, &mut f1).unwrap();
                let slow = nu_naive(Time::ZERO, &p, &mut f2, Time::new(100)).unwrap();
                match slow {
                    Some(t) => assert_eq!(fast, t, "{func} on {p:?}"),
                    None => assert_eq!(fast, Time::INFINITY, "{func} on {p:?}"),
                }
            }
        }
    }

    #[test]
    fn chi_flags_the_tick_before_a_change() {
        let p = vec![row(1, 25, 10), row(2, 25, 15)];
        let mut f = apply(AggFunc::Count);
        assert!(!chi(Time::new(8), &p, &mut f).unwrap());
        let mut f = apply(AggFunc::Count);
        assert!(chi(Time::new(9), &p, &mut f).unwrap(), "2 at 9, 1 at 10");
        let mut f = apply(AggFunc::Count);
        assert!(!chi(Time::new(10), &p, &mut f).unwrap());
    }

    #[test]
    fn sum_with_cancelling_slice_skips_a_change_point() {
        // Slice at 4 sums to zero: sum is 7 before and after time 4.
        let p = vec![row(1, 3, 4), row(2, -3, 4), row(3, 7, 9)];
        let mut f = apply(AggFunc::Sum(1));
        let tl = value_timeline(Time::ZERO, &p, &mut f).unwrap();
        assert_eq!(
            tl,
            vec![(Time::ZERO, Some(Value::Int(7))), (Time::new(9), None)]
        );
        let mut f = apply(AggFunc::Sum(1));
        assert_eq!(nu(Time::ZERO, &p, &mut f).unwrap(), Time::new(9));
    }

    #[test]
    fn tuple_validity_covers_exactly_the_original_value() {
        // min: 5 until 6 (achiever dies), then 9 until 12, then ∅.
        // Value can return: min goes 5 → 9; never back to 5, so validity is
        // a single interval [0, 6[.
        let p = vec![row(1, 5, 6), row(2, 9, 12)];
        let mut f = apply(AggFunc::Min(1));
        let iv = tuple_validity(Time::ZERO, &p, &mut f).unwrap();
        assert_eq!(iv.intervals().len(), 1);
        assert!(iv.contains(Time::new(5)));
        assert!(!iv.contains(Time::new(6)));
        assert!(!iv.contains(Time::new(20)));
    }

    #[test]
    fn tuple_validity_can_be_disjoint_when_value_recurs() {
        // sum: 5 (both alive: 5 + 0-slice? no) — construct recurrence:
        // values 5@10, -5@10... sum = 0+5? Use: +5 dies at 3, sum 8→3;
        // then +5 appears? Tuples only expire, so a value recurs if
        // cancellation brings it back: {5@3, -5@7, 8@9}: sum=8 on [0,3[,
        // 3 on [3,7[, 8 again on [7,9[, ∅ after.
        let p = vec![row(1, 5, 3), row(2, -5, 7), row(3, 8, 9)];
        let mut f = apply(AggFunc::Sum(1));
        let iv = tuple_validity(Time::ZERO, &p, &mut f).unwrap();
        assert_eq!(iv.intervals().len(), 2);
        assert!(iv.contains(Time::new(2)));
        assert!(!iv.contains(Time::new(4)));
        assert!(iv.contains(Time::new(7)));
        assert!(iv.contains(Time::new(8)));
        assert!(!iv.contains(Time::new(9)));
    }

    #[test]
    fn change_count_is_bounded_by_partition_size() {
        let p = vec![row(1, 1, 2), row(2, 2, 4), row(3, 3, 6)];
        let mut f = apply(AggFunc::Sum(1));
        let c = change_count(Time::ZERO, &p, &mut f).unwrap();
        assert!(c <= p.len());
        assert_eq!(c, 3, "each expiry changes the sum; final change to ∅");
        // Deterministic f over a partition of n tuples: ≤ n values
        // (Section 3.4.1).
    }

    #[test]
    fn partition_death_matches_paper_formula() {
        assert_eq!(
            partition_death(&[row(1, 1, 4), row(2, 2, 9)]),
            Some(Time::new(9))
        );
        assert_eq!(
            partition_death(&[row(1, 1, 4), row(2, 2, 0)]),
            Some(Time::INFINITY)
        );
        assert_eq!(partition_death(&[]), None);
    }

    #[test]
    fn nu_naive_returns_none_past_horizon() {
        let p = vec![row(1, 1, 50)];
        let mut f = apply(AggFunc::Count);
        assert_eq!(
            nu_naive(Time::ZERO, &p, &mut f, Time::new(10)).unwrap(),
            None
        );
    }
}
