//! Relation schemas: named, typed attributes.
//!
//! The paper's model is positional (attributes are numbered `1..α(R)`), but
//! the SQL layer and the engine need attribute names and types. A [`Schema`]
//! carries both; the algebra itself only ever consults positions.

use crate::error::{Error, Result};
use crate::tuple::Tuple;
use crate::value::ValueType;
use std::fmt;
use std::sync::Arc;

/// One attribute of a schema.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Attribute {
    /// Attribute name (case-preserving; lookups are case-insensitive).
    pub name: String,
    /// Attribute type.
    pub ty: ValueType,
}

impl Attribute {
    /// Creates an attribute.
    #[must_use]
    pub fn new(name: impl Into<String>, ty: ValueType) -> Self {
        Attribute {
            name: name.into(),
            ty,
        }
    }
}

/// A relation schema: an ordered list of named, typed attributes.
///
/// Schemas are immutable and cheaply cloneable.
#[derive(Clone, PartialEq, Eq)]
pub struct Schema {
    attrs: Arc<[Attribute]>,
}

impl Schema {
    /// Creates a schema from attributes.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DuplicateAttribute`] if two attributes share a name
    /// (case-insensitively).
    pub fn new(attrs: Vec<Attribute>) -> Result<Self> {
        for (i, a) in attrs.iter().enumerate() {
            if attrs[..i]
                .iter()
                .any(|b| b.name.eq_ignore_ascii_case(&a.name))
            {
                return Err(Error::DuplicateAttribute(a.name.clone()));
            }
        }
        Ok(Schema {
            attrs: attrs.into(),
        })
    }

    /// Builds a schema from `(name, type)` pairs; panics on duplicates.
    /// Convenient in tests and examples.
    #[must_use]
    pub fn of(pairs: &[(&str, ValueType)]) -> Self {
        Schema::new(pairs.iter().map(|(n, t)| Attribute::new(*n, *t)).collect())
            .expect("duplicate attribute name")
    }

    /// The arity `α(R)`.
    #[inline]
    #[must_use]
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// All attributes in order.
    #[inline]
    #[must_use]
    pub fn attributes(&self) -> &[Attribute] {
        &self.attrs
    }

    /// The attribute at zero-based position `i`.
    #[must_use]
    pub fn attr(&self, i: usize) -> &Attribute {
        &self.attrs[i]
    }

    /// Finds the zero-based position of `name` (case-insensitive).
    #[must_use]
    pub fn position(&self, name: &str) -> Option<usize> {
        self.attrs
            .iter()
            .position(|a| a.name.eq_ignore_ascii_case(name))
    }

    /// Like [`Schema::position`] but returns an error naming the attribute.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownAttribute`] if no attribute matches.
    pub fn resolve(&self, name: &str) -> Result<usize> {
        self.position(name)
            .ok_or_else(|| Error::UnknownAttribute(name.to_string()))
    }

    /// Checks that a tuple matches this schema in arity and types.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ArityMismatch`] or [`Error::TypeMismatch`].
    pub fn check(&self, tuple: &Tuple) -> Result<()> {
        if tuple.arity() != self.arity() {
            return Err(Error::ArityMismatch {
                expected: self.arity(),
                actual: tuple.arity(),
            });
        }
        for (i, a) in self.attrs.iter().enumerate() {
            let vt = tuple.attr(i).value_type();
            if vt != a.ty {
                return Err(Error::TypeMismatch {
                    attribute: a.name.clone(),
                    expected: a.ty,
                    actual: vt,
                });
            }
        }
        Ok(())
    }

    /// Schema of a projection onto zero-based `positions`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::AttributeOutOfRange`] on a bad position.
    pub fn project(&self, positions: &[usize]) -> Result<Schema> {
        let mut attrs = Vec::with_capacity(positions.len());
        let mut seen: Vec<String> = Vec::new();
        for &j in positions {
            let a = self
                .attrs
                .get(j)
                .ok_or(Error::AttributeOutOfRange {
                    index: j,
                    arity: self.arity(),
                })?
                .clone();
            // Repeated or colliding projections get disambiguated names so
            // the result is still a valid schema.
            let mut name = a.name.clone();
            let mut k = 1;
            while seen.iter().any(|s| s.eq_ignore_ascii_case(&name)) {
                k += 1;
                name = format!("{}_{k}", a.name);
            }
            seen.push(name.clone());
            attrs.push(Attribute::new(name, a.ty));
        }
        Schema::new(attrs)
    }

    /// Schema of the Cartesian product `R ×exp S`: the concatenation of both
    /// attribute lists, right-hand names disambiguated on collision.
    #[must_use]
    pub fn product(&self, other: &Schema) -> Schema {
        let mut attrs: Vec<Attribute> = self.attrs.to_vec();
        for a in other.attrs.iter() {
            let mut name = a.name.clone();
            let mut k = 1;
            while attrs.iter().any(|b| b.name.eq_ignore_ascii_case(&name)) {
                k += 1;
                name = format!("{}_{k}", a.name);
            }
            attrs.push(Attribute::new(name, a.ty));
        }
        Schema::new(attrs).expect("product disambiguation produced duplicates")
    }

    /// Schema of an aggregation that appends aggregate attribute `name` of
    /// type `ty` to this schema (Equation 8 appends the aggregate value `a`).
    #[must_use]
    pub fn append(&self, name: &str, ty: ValueType) -> Schema {
        let mut attrs: Vec<Attribute> = self.attrs.to_vec();
        let mut n = name.to_string();
        let mut k = 1;
        while attrs.iter().any(|b| b.name.eq_ignore_ascii_case(&n)) {
            k += 1;
            n = format!("{name}_{k}");
        }
        attrs.push(Attribute::new(n, ty));
        Schema::new(attrs).expect("append disambiguation produced duplicates")
    }

    /// Whether two schemas are union-compatible in the paper's sense:
    /// `α(R) = α(S)` with pairwise equal attribute types. Names need not
    /// match (the paper's model is positional).
    #[must_use]
    pub fn union_compatible(&self, other: &Schema) -> bool {
        self.arity() == other.arity()
            && self
                .attrs
                .iter()
                .zip(other.attrs.iter())
                .all(|(a, b)| a.ty == b.ty)
    }
}

impl fmt::Debug for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", a.name, a.ty)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn uid_deg() -> Schema {
        Schema::of(&[("uid", ValueType::Int), ("deg", ValueType::Int)])
    }

    #[test]
    fn construction_rejects_duplicates() {
        let err = Schema::new(vec![
            Attribute::new("a", ValueType::Int),
            Attribute::new("A", ValueType::Str),
        ])
        .unwrap_err();
        assert!(matches!(err, Error::DuplicateAttribute(n) if n == "A"));
    }

    #[test]
    fn position_is_case_insensitive() {
        let s = uid_deg();
        assert_eq!(s.position("UID"), Some(0));
        assert_eq!(s.position("Deg"), Some(1));
        assert_eq!(s.position("nope"), None);
        assert!(s.resolve("nope").is_err());
        assert_eq!(s.resolve("deg").unwrap(), 1);
    }

    #[test]
    fn check_validates_arity_and_types() {
        let s = uid_deg();
        assert!(s.check(&tuple![1, 25]).is_ok());
        assert!(matches!(
            s.check(&tuple![1]).unwrap_err(),
            Error::ArityMismatch {
                expected: 2,
                actual: 1
            }
        ));
        assert!(matches!(
            s.check(&tuple![1, "x"]).unwrap_err(),
            Error::TypeMismatch { .. }
        ));
    }

    #[test]
    fn projection_schema_disambiguates_repeats() {
        let s = uid_deg();
        let p = s.project(&[1, 1]).unwrap();
        assert_eq!(p.arity(), 2);
        assert_eq!(p.attr(0).name, "deg");
        assert_eq!(p.attr(1).name, "deg_2");
        assert!(s.project(&[5]).is_err());
    }

    #[test]
    fn product_schema_disambiguates_collisions() {
        let s = uid_deg();
        let p = s.product(&s);
        assert_eq!(p.arity(), 4);
        assert_eq!(
            p.attributes()
                .iter()
                .map(|a| a.name.as_str())
                .collect::<Vec<_>>(),
            vec!["uid", "deg", "uid_2", "deg_2"]
        );
    }

    #[test]
    fn append_schema() {
        let s = uid_deg().append("count", ValueType::Int);
        assert_eq!(s.arity(), 3);
        assert_eq!(s.attr(2).name, "count");
        let s2 = s.append("count", ValueType::Int);
        assert_eq!(s2.attr(3).name, "count_2");
    }

    #[test]
    fn union_compatibility_is_positional_and_typed() {
        let a = uid_deg();
        let b = Schema::of(&[("x", ValueType::Int), ("y", ValueType::Int)]);
        let c = Schema::of(&[("x", ValueType::Int), ("y", ValueType::Str)]);
        assert!(a.union_compatible(&b));
        assert!(!a.union_compatible(&c));
        assert!(!a.union_compatible(&Schema::of(&[("x", ValueType::Int)])));
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", uid_deg()), "(uid: INT, deg: INT)");
    }
}
