//! Attribute values.
//!
//! The paper abstracts the attribute domain as a single set `D`. For a
//! usable engine we provide integers, totally ordered floats, strings, and
//! booleans. Tuples must be usable as keys of hash maps and orderable for
//! sort-based operators, so [`Value`] implements `Eq + Ord + Hash`; floats
//! are wrapped in [`F64`], a total-order-by-bit-pattern wrapper.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// An `f64` with a total order (IEEE-754 `totalOrder`-style) so that values
/// can be grouped, deduplicated, and sorted.
///
/// NaNs are normalised to a single canonical bit pattern on construction,
/// negative zero is normalised to positive zero, and comparison falls back
/// to the sign-corrected bit pattern, which orders `-∞ < … < 0 < … < +∞ <
/// NaN`.
#[derive(Clone, Copy)]
pub struct F64(f64);

impl F64 {
    /// Wraps a float, canonicalising NaN and `-0.0`.
    #[must_use]
    pub fn new(v: f64) -> Self {
        if v.is_nan() {
            F64(f64::NAN) // one canonical NaN
        } else if v == 0.0 {
            F64(0.0) // fold -0.0 into +0.0
        } else {
            F64(v)
        }
    }

    /// The wrapped float.
    #[inline]
    #[must_use]
    pub fn get(self) -> f64 {
        self.0
    }

    fn order_key(self) -> u64 {
        let bits = self.0.to_bits();
        // Flip ordering for negatives so the integer order matches the
        // numeric order; NaN (exponent all-ones, nonzero mantissa, sign 0
        // after canonicalisation) lands above +∞.
        if bits >> 63 == 0 {
            bits | (1 << 63)
        } else {
            !bits
        }
    }
}

impl PartialEq for F64 {
    fn eq(&self, other: &Self) -> bool {
        self.order_key() == other.order_key()
    }
}
impl Eq for F64 {}

impl PartialOrd for F64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for F64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.order_key().cmp(&other.order_key())
    }
}

impl Hash for F64 {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.order_key().hash(state);
    }
}

impl fmt::Debug for F64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<f64> for F64 {
    fn from(v: f64) -> Self {
        F64::new(v)
    }
}

/// The type of an attribute, used by schemas and the SQL layer for
/// type checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float with total order.
    Float,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueType::Int => write!(f, "INT"),
            ValueType::Float => write!(f, "FLOAT"),
            ValueType::Str => write!(f, "TEXT"),
            ValueType::Bool => write!(f, "BOOL"),
        }
    }
}

/// A single attribute value drawn from the domain `D`.
///
/// The paper deliberately excludes null values (Section 2.4: operators that
/// introduce new attribute values, such as outer joins, would require
/// three-valued logic); this library follows suit and has no null variant.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// Integer value.
    Int(i64),
    /// Float value with total order.
    Float(F64),
    /// String value; `Arc` keeps tuple cloning cheap.
    Str(Arc<str>),
    /// Boolean value.
    Bool(bool),
}

impl Value {
    /// Convenience constructor for strings.
    #[must_use]
    pub fn str(s: impl Into<Arc<str>>) -> Self {
        Value::Str(s.into())
    }

    /// Convenience constructor for floats.
    #[must_use]
    pub fn float(v: f64) -> Self {
        Value::Float(F64::new(v))
    }

    /// The dynamic type of this value.
    #[must_use]
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::Int(_) => ValueType::Int,
            Value::Float(_) => ValueType::Float,
            Value::Str(_) => ValueType::Str,
            Value::Bool(_) => ValueType::Bool,
        }
    }

    /// Returns the integer if this is an `Int`.
    #[must_use]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the float if this is a `Float`.
    #[must_use]
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(v.get()),
            _ => None,
        }
    }

    /// Returns the string if this is a `Str`.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the boolean if this is a `Bool`.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// A numeric view of the value for aggregation: ints and floats have
    /// one, strings and booleans do not.
    #[must_use]
    pub fn as_numeric(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(v) => Some(v.get()),
            _ => None,
        }
    }

    /// Compares two values of possibly different types. Same-type values
    /// compare naturally; ints and floats compare numerically; otherwise the
    /// order is by type tag (Int/Float < Str < Bool). Total, so usable by
    /// sort-based operators without panicking on heterogeneous columns.
    #[must_use]
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::{Bool, Float, Int, Str};
        match (self, other) {
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.cmp(b),
            (Int(a), Float(b)) => F64::new(*a as f64).cmp(b),
            (Float(a), Int(b)) => a.cmp(&F64::new(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (a, b) => a.type_rank().cmp(&b.type_rank()),
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Int(_) | Value::Float(_) => 0,
            Value::Str(_) => 1,
            Value::Bool(_) => 2,
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => write!(f, "{v:?}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s}"),
            v => write!(f, "{v:?}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(i64::from(v))
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(F64::new(v))
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn f64_total_order_matches_numeric_order() {
        let xs = [-f64::INFINITY, -2.5, -1.0, 0.0, 0.5, 2.0, f64::INFINITY];
        for w in xs.windows(2) {
            assert!(F64::new(w[0]) < F64::new(w[1]), "{} < {}", w[0], w[1]);
        }
    }

    #[test]
    fn f64_nan_is_canonical_and_maximal() {
        let a = F64::new(f64::NAN);
        let b = F64::new(-f64::NAN);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
        assert!(a > F64::new(f64::INFINITY));
    }

    #[test]
    fn f64_negative_zero_equals_positive_zero() {
        assert_eq!(F64::new(-0.0), F64::new(0.0));
        assert_eq!(hash_of(&F64::new(-0.0)), hash_of(&F64::new(0.0)));
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_float(), None);
        assert_eq!(Value::float(2.5).as_float(), Some(2.5));
        assert_eq!(Value::str("hi").as_str(), Some("hi"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Int(3).as_numeric(), Some(3.0));
        assert_eq!(Value::float(1.5).as_numeric(), Some(1.5));
        assert_eq!(Value::str("x").as_numeric(), None);
    }

    #[test]
    fn value_types() {
        assert_eq!(Value::Int(1).value_type(), ValueType::Int);
        assert_eq!(Value::float(1.0).value_type(), ValueType::Float);
        assert_eq!(Value::str("a").value_type(), ValueType::Str);
        assert_eq!(Value::Bool(false).value_type(), ValueType::Bool);
        assert_eq!(ValueType::Str.to_string(), "TEXT");
    }

    #[test]
    fn total_cmp_is_numeric_across_int_and_float() {
        assert_eq!(Value::Int(2).total_cmp(&Value::float(2.5)), Ordering::Less);
        assert_eq!(
            Value::float(3.0).total_cmp(&Value::Int(2)),
            Ordering::Greater
        );
        assert_eq!(Value::Int(2).total_cmp(&Value::float(2.0)), Ordering::Equal);
    }

    #[test]
    fn total_cmp_orders_across_types_by_rank() {
        assert_eq!(
            Value::Int(999).total_cmp(&Value::str("a")),
            Ordering::Less,
            "numbers sort before strings"
        );
        assert_eq!(
            Value::str("z").total_cmp(&Value::Bool(false)),
            Ordering::Less,
            "strings sort before booleans"
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::str("abc").to_string(), "abc");
        assert_eq!(format!("{:?}", Value::str("abc")), "\"abc\"");
        assert_eq!(Value::Bool(true).to_string(), "true");
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("s"), Value::str("s"));
        assert_eq!(Value::from(String::from("s")), Value::str("s"));
        assert_eq!(Value::from(2.0), Value::float(2.0));
    }
}
