//! The database facade: clock, tables, views, triggers, constraints, SQL.
//!
//! A [`Database`] is a single-node expiration-time DBMS in the paper's
//! image:
//!
//! * a logical [`Clock`] drives everything — advancing it processes due
//!   expirations (eagerly per event time, or lazily on a vacuum cadence —
//!   Section 3.2) and fires expiration triggers;
//! * tables are `exptime-storage` [`Table`]s (expiration index + B+-trees);
//! * views are either *virtual* (planned per read) or *materialised*
//!   ([`MaterializedView`]s that maintain themselves independently of the
//!   base tables, per Theorems 1–3);
//! * SQL goes through `exptime-sql`; expiration times surface only in
//!   `INSERT … EXPIRES …` and `UPDATE … SET EXPIRES …`.

use crate::constraint::{Constraint, ConstraintViolation};
use crate::durability::{CheckpointStats, Durability, RecoveryStats, WalSession, WalStatus};
use crate::telemetry::{TelemetryConfig, TelemetryStatus, TELEMETRY_HEALTH, TELEMETRY_METRICS};
use crate::trigger::{ExpirationEvent, TriggerFn, TriggerManager};
use exptime_core::algebra::{eval, eval_profiled, EvalOptions, Expr, Materialized, PlanProfile};
use exptime_core::catalog::Catalog;
use exptime_core::materialize::{MaterializedView, RefreshDecision, RefreshPolicy, RemovalPolicy};
use exptime_core::relation::Relation;
use exptime_core::rewrite::TickBound;
use exptime_core::schema::Schema;
use exptime_core::time::{Clock, Time};
use exptime_core::tuple::Tuple;
use exptime_core::value::{Value, ValueType};
use exptime_obs::{
    AllocCounter, Counter, EventKind, Health, Histogram, HorizonForecast, MetricsRegistry, Obs,
    OperatorCost, ProfileStats, Profiler, QueryProfile, SloConfig, StalenessBound,
    StalenessMonitor, StormBucket, Tracer,
};
use exptime_policy::{Event as PolicyEvent, MaintenanceWindow, Sliding, TouchKind, TtlPolicy};
use exptime_sql::ast::{Expires, Statement, TtlClause};
use exptime_sql::{plan_query, plan_table_cond, SchemaProvider, SqlError};
use exptime_storage::{IndexKind, Table};
use exptime_wal::{
    committed_prefix, replay_plan, Checkpoint, FileStore, TableSnapshot, Wal, WalRecord, WalStore,
};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::path::Path;
use std::time::Instant;

/// How the engine physically removes expired base-table rows
/// (Section 3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Removal {
    /// Process expirations at every expiration event time as the clock
    /// passes it; triggers fire exactly at `texp`.
    #[default]
    Eager,
    /// Defer physical removal to a periodic vacuum; reads are unaffected
    /// (they filter by `texp > τ`), but triggers fire late and space is
    /// reclaimed late.
    Lazy {
        /// Vacuum cadence in ticks.
        vacuum_every: u64,
    },
}

/// Configuration for the expiration-horizon forecaster (DESIGN.md §8.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForecastConfig {
    /// Predicted expirations-per-tick above which a horizon bucket is a
    /// *storm*: every clock advance recomputes the forecast and emits a
    /// `storm_warning` event for each bucket whose rate `count / 2^k`
    /// strictly exceeds this. Zero means any non-empty bucket warns.
    pub storm_threshold: u64,
}

impl Default for ForecastConfig {
    fn default() -> Self {
        // High enough that steady drip workloads stay quiet; a derived
        // zero would make every expiring tuple a "storm".
        ForecastConfig {
            storm_threshold: 64,
        }
    }
}

/// Engine configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct DbConfig {
    /// Expiration index implementation for new tables.
    pub index: IndexKind,
    /// Removal policy.
    pub removal: Removal,
    /// Algebra evaluation options (aggregate expiration mode, …).
    pub eval: EvalOptions,
    /// Refresh policy for materialised views.
    pub view_refresh: RefreshPolicy,
    /// Run the cost-gated rewriter (`exptime_core::cost::optimize`) on
    /// query expressions before evaluation. The rewrite is
    /// semantics-preserving; the cost model keeps it only when it reduces
    /// estimated fragility/work (paper Section 3.1).
    pub optimize: bool,
    /// Service-level objectives watched by the staleness monitor
    /// ([`Database::health`]): trigger punctuality and refresh latency.
    pub slo: SloConfig,
    /// Durability mode. [`Durability::Volatile`] databases are built with
    /// [`Database::new`]; [`Durability::Wal`] databases with
    /// [`Database::open`] / [`Database::open_with_store`], which recover
    /// from the log before serving.
    pub durability: Durability,
    /// Expiration-horizon forecasting (storm detection threshold).
    pub forecast: ForecastConfig,
    /// Self-hosted telemetry sampling into the reserved `_telemetry`
    /// schema, with retention expressed as expiration times
    /// (DESIGN.md §8.5). Off by default.
    pub telemetry: TelemetryConfig,
}

/// A point-in-time forecast of the database's future expiration load:
/// the merged [`HorizonForecast`] across all tables, each table's own
/// horizon, each materialised view's ticks-until-refresh, and any
/// buckets exceeding the configured storm threshold. Built by
/// [`Database::forecast`]; rendered by the CLI's `\forecast`.
#[derive(Debug, Clone)]
pub struct DbForecast {
    /// Logical instant the forecast is anchored at.
    pub now: u64,
    /// Storm threshold in effect (predicted expirations per tick).
    pub threshold: u64,
    /// Merged horizon across every table.
    pub horizon: HorizonForecast,
    /// Per-table horizons, in name order.
    pub tables: Vec<(String, HorizonForecast)>,
    /// Each materialised view's predicted refresh deadline: ticks until
    /// its `texp` forces a refresh decision, or `None` when eternal.
    pub views: Vec<(String, Option<u64>)>,
    /// Buckets of the merged horizon whose predicted expirations-per-tick
    /// rate exceeds [`DbForecast::threshold`].
    pub storms: Vec<StormBucket>,
}

impl DbForecast {
    /// Renders the forecast for humans: the merged load curve, per-table
    /// and per-view summaries, and storm warnings last.
    #[must_use]
    pub fn render(&self, width: usize) -> String {
        use std::fmt::Write as _;
        let mut out = self.horizon.render(width);
        for (name, f) in &self.tables {
            let _ = writeln!(
                out,
                "table {name}: {} expiring, {} eternal",
                f.expiring(),
                f.eternal()
            );
        }
        for (name, due) in &self.views {
            match due {
                Some(d) => {
                    let _ = writeln!(out, "view {name}: refresh due in {d} tick(s)");
                }
                None => {
                    let _ = writeln!(out, "view {name}: eternal (no expiration-forced refresh)");
                }
            }
        }
        for s in &self.storms {
            let _ = writeln!(
                out,
                "STORM [+{},+{}]: {} predicted expirations (> {}/tick)",
                s.lo, s.hi, s.predicted, self.threshold
            );
        }
        out
    }
}

/// Aggregate engine statistics — a point-in-time snapshot of the `db.*`
/// counters in the database's [`MetricsRegistry`] (see [`Database::obs`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DbStats {
    /// Rows inserted.
    pub inserts: u64,
    /// Rows explicitly deleted.
    pub deletes: u64,
    /// Rows removed by expiration.
    pub expired: u64,
    /// Queries evaluated successfully. Every evaluation counts exactly
    /// once, whichever door it came through: SQL `SELECT`, a direct
    /// [`Database::query_expr`], a [`Database::read_view`], or an
    /// [`Database::explain_analyze`]. Failed evaluations do not count.
    pub queries: u64,
    /// Vacuum passes run (lazy removal).
    pub vacuums: u64,
}

/// Registry-backed handles behind [`DbStats`]. The counters are the source
/// of truth; `DbStats` is what [`Database::stats`] snapshots from them.
#[derive(Debug, Clone)]
struct DbCounters {
    inserts: Counter,
    deletes: Counter,
    expired: Counter,
    queries: Counter,
    vacuums: Counter,
    /// Latency of successful query evaluations, nanoseconds.
    query_ns: Histogram,
    /// Latency of successful inserts, nanoseconds.
    insert_ns: Histogram,
}

/// Global `policy.*` counters: every table's policy activity summed.
#[derive(Debug, Clone)]
struct PolicyCounters {
    /// Sliding touches that actually re-armed a row (`texp` moved).
    sliding_touches: Counter,
    /// Writes/touches whose requested expiration the clamp or maintenance
    /// window displaced.
    clamped: Counter,
}

impl PolicyCounters {
    fn in_registry(registry: &MetricsRegistry) -> Self {
        PolicyCounters {
            sliding_touches: registry.counter("policy.sliding_touches"),
            clamped: registry.counter("policy.clamped"),
        }
    }
}

/// One table's TTL policy plus its per-table counters.
#[derive(Debug, Clone)]
struct TablePolicy {
    policy: TtlPolicy,
    /// `policy.<table>.sliding_touches`.
    sliding_touches: Counter,
    /// `policy.<table>.clamped`.
    clamped: Counter,
}

impl TablePolicy {
    fn in_registry(registry: &MetricsRegistry, table: &str, policy: TtlPolicy) -> Self {
        TablePolicy {
            policy,
            sliding_touches: registry.counter(&format!("policy.{table}.sliding_touches")),
            clamped: registry.counter(&format!("policy.{table}.clamped")),
        }
    }
}

/// One row of [`Database::policy_status`] (the CLI's `\policy status`).
#[derive(Debug, Clone)]
pub struct PolicyStatus {
    /// Table name (lowercased catalog key).
    pub table: String,
    /// The effective policy (identity for tables without one).
    pub policy: TtlPolicy,
    /// Sliding touches that re-armed a row of this table.
    pub sliding_touches: u64,
    /// Writes/touches this table's clamp or maintenance window displaced.
    pub clamped: u64,
    /// Live rows right now.
    pub live_rows: u64,
}

impl DbCounters {
    fn in_registry(registry: &MetricsRegistry) -> Self {
        DbCounters {
            inserts: registry.counter("db.inserts"),
            deletes: registry.counter("db.deletes"),
            expired: registry.counter("db.expired"),
            queries: registry.counter("db.queries"),
            vacuums: registry.counter("db.vacuums"),
            query_ns: registry.histogram("db.query_ns"),
            insert_ns: registry.histogram("db.insert_ns"),
        }
    }

    fn snapshot(&self) -> DbStats {
        DbStats {
            inserts: self.inserts.get(),
            deletes: self.deletes.get(),
            expired: self.expired.get(),
            queries: self.queries.get(),
            vacuums: self.vacuums.get(),
        }
    }
}

/// Engine errors.
#[derive(Debug)]
pub enum DbError {
    /// SQL lexing/parsing/planning failed.
    Sql(SqlError),
    /// A core data-model error.
    Core(exptime_core::error::Error),
    /// A constraint rejected an insertion.
    Constraint(ConstraintViolation),
    /// Catalog-level problem (duplicate/missing table or view, …).
    Catalog(String),
    /// A remote peer (replica link) refused the operation: the link was
    /// explicitly down or partitioned at the time of the call.
    Unavailable(String),
    /// A sync operation exhausted its retry/timeout budget: the work was
    /// attempted but no acknowledgement arrived within `waited` logical
    /// ticks.
    Timeout {
        /// What was being synchronised (view refresh, digest exchange, …).
        op: String,
        /// Logical ticks spent waiting before giving up.
        waited: u64,
    },
    /// The write-ahead log failed (IO error, corrupt checkpoint, or a
    /// durability API used on a [`Durability::Volatile`] database).
    Wal(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Sql(e) => write!(f, "{e}"),
            DbError::Core(e) => write!(f, "{e}"),
            DbError::Constraint(v) => write!(f, "{v}"),
            DbError::Catalog(m) => write!(f, "{m}"),
            DbError::Unavailable(m) => write!(f, "unavailable: {m}"),
            DbError::Timeout { op, waited } => {
                write!(f, "timeout: {op} gave up after {waited} tick(s)")
            }
            DbError::Wal(m) => write!(f, "wal: {m}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<SqlError> for DbError {
    fn from(e: SqlError) -> Self {
        DbError::Sql(e)
    }
}
impl From<exptime_core::error::Error> for DbError {
    fn from(e: exptime_core::error::Error) -> Self {
        DbError::Core(e)
    }
}
impl From<ConstraintViolation> for DbError {
    fn from(e: ConstraintViolation) -> Self {
        DbError::Constraint(e)
    }
}

/// Engine result alias.
pub type DbResult<T> = Result<T, DbError>;

/// The outcome of executing one SQL statement.
#[derive(Debug)]
pub enum ExecResult {
    /// Query rows (with per-tuple expiration times attached, though they
    /// are not query-accessible attributes).
    Rows(Relation),
    /// Number of rows affected by DML.
    Affected(usize),
    /// DDL succeeded for the named object.
    Ok(String),
}

impl ExecResult {
    /// The rows, if this was a query.
    #[must_use]
    pub fn rows(&self) -> Option<&Relation> {
        match self {
            ExecResult::Rows(r) => Some(r),
            _ => None,
        }
    }

    /// The affected-row count, if DML.
    #[must_use]
    pub fn affected(&self) -> Option<usize> {
        match self {
            ExecResult::Affected(n) => Some(*n),
            _ => None,
        }
    }
}

/// The result of [`Database::explain_analyze`]: an annotated, actually
/// executed plan (EXPLAIN ANALYZE in the PostgreSQL sense, on the
/// expiration-time algebra).
#[derive(Debug)]
pub struct Explain {
    /// Per-operator profile of the executed plan.
    pub profile: PlanProfile,
    /// `(view, decision)` for every materialised view the query touched,
    /// refreshed at this instant — the observable form of Theorems 1–3.
    pub decisions: Vec<(String, RefreshDecision)>,
    /// Rows in the final result.
    pub rows: usize,
}

impl fmt::Display for Explain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.profile.render().trim_end())?;
        for (view, decision) in &self.decisions {
            writeln!(f, "view {view}: {decision}")?;
        }
        write!(f, "result: {} rows", self.rows)
    }
}

#[allow(clippy::large_enum_variant)] // few views exist; clarity over size
enum ViewEntry {
    Virtual {
        expr: Expr,
        schema: Schema,
        /// The defining SQL query, when the view was created through SQL;
        /// used by [`Database::dump_sql`]. API-created views have none.
        definition: Option<exptime_sql::ast::Query>,
    },
    Materialized {
        view: MaterializedView,
        schema: Schema,
        /// See [`ViewEntry::Virtual::definition`].
        definition: Option<exptime_sql::ast::Query>,
        /// Write versions of the base tables at (re)materialisation time.
        /// Pure expiration never bumps these (the paper's machinery keeps
        /// the view fresh for free); inserts and explicit deletes do, and
        /// force a refresh on the next read.
        base_versions: Vec<(String, u64)>,
        /// What the static analyzer said about this view at creation time
        /// (DESIGN.md §11); kept in the catalog so `\lint` and
        /// [`Database::view_diagnostics`] can replay it without re-planning.
        diagnostics: exptime_lint::LintReport,
    },
}

impl ViewEntry {
    fn schema(&self) -> &Schema {
        match self {
            ViewEntry::Virtual { schema, .. } | ViewEntry::Materialized { schema, .. } => schema,
        }
    }

    fn definition(&self) -> Option<&exptime_sql::ast::Query> {
        match self {
            ViewEntry::Virtual { definition, .. } | ViewEntry::Materialized { definition, .. } => {
                definition.as_ref()
            }
        }
    }

    fn expr(&self) -> &Expr {
        match self {
            ViewEntry::Virtual { expr, .. } => expr,
            ViewEntry::Materialized { view, .. } => view.expr(),
        }
    }
}

/// A single-node expiration-time database.
pub struct Database {
    config: DbConfig,
    clock: Clock,
    tables: BTreeMap<String, Table>,
    views: BTreeMap<String, ViewEntry>,
    triggers: TriggerManager,
    constraints: HashMap<String, Vec<Constraint>>,
    /// Per-table write version, bumped on inserts, explicit deletes, and
    /// expiration-time updates — never on expirations.
    write_versions: HashMap<String, u64>,
    last_vacuum: Time,
    /// Per-table TTL policies (keyed like `tables`). Tables without an
    /// entry run the paper's pure absolute-`texp` semantics.
    policies: HashMap<String, TablePolicy>,
    obs: Obs,
    counters: DbCounters,
    policy_counters: PolicyCounters,
    tracer: Tracer,
    monitor: StalenessMonitor,
    /// Always-on statement profiler (scalar totals every statement,
    /// per-operator detail on the sampling cadence).
    profiler: Profiler,
    /// Logical-allocation shim drained into each statement's profile.
    alloc: AllocCounter,
    /// Attached write-ahead log, when opened with [`Durability::Wal`].
    /// `None` both for volatile databases and *during* recovery replay
    /// (so replayed operations are not re-logged).
    wal: Option<WalSession>,
    /// True while the engine itself is executing statements: WAL
    /// recovery replay, dump restore, and the telemetry sampler. Lifts
    /// the `_telemetry` reserved-schema write guard and suppresses
    /// sampling (replayed history must reproduce the original run's
    /// samples as rows, not synthesise new ones).
    system_ctx: bool,
    /// Logical instant of the last telemetry sample.
    telemetry_last_sample: Option<u64>,
    /// Samples taken by this process (not by replayed history).
    telemetry_samples: u64,
    /// Stale-serving endpoint registered by an attached net server, so
    /// [`Database::audit`] can reason about degraded reads.
    serving: Option<exptime_lint::StaleServing>,
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Database")
            .field("now", &self.clock.now())
            .field("tables", &self.tables.keys().collect::<Vec<_>>())
            .field("views", &self.views.keys().collect::<Vec<_>>())
            .field("stats", &self.stats())
            .finish()
    }
}

impl Default for Database {
    fn default() -> Self {
        Database::new(DbConfig::default())
    }
}

impl Database {
    /// Creates an empty database at time 0.
    #[must_use]
    pub fn new(config: DbConfig) -> Self {
        let obs = Obs::new();
        let counters = DbCounters::in_registry(obs.registry());
        let policy_counters = PolicyCounters::in_registry(obs.registry());
        let tracer = Tracer::attached(&obs);
        let monitor = StalenessMonitor::new(&obs, config.slo);
        Database {
            config,
            clock: Clock::new(),
            tables: BTreeMap::new(),
            views: BTreeMap::new(),
            triggers: TriggerManager::new(),
            constraints: HashMap::new(),
            write_versions: HashMap::new(),
            last_vacuum: Time::ZERO,
            policies: HashMap::new(),
            obs,
            counters,
            policy_counters,
            tracer,
            monitor,
            profiler: Profiler::default(),
            alloc: AllocCounter::new(),
            wal: None,
            system_ctx: false,
            telemetry_last_sample: None,
            telemetry_samples: 0,
            serving: None,
        }
    }

    // ------------------------------------------------------------------
    // Durability: open, recovery, checkpoint
    // ------------------------------------------------------------------

    /// Opens (creating if needed) a durable database backed by a WAL
    /// directory, recovering committed state from the checkpoint and log
    /// first. `config.durability` must be [`Durability::Wal`].
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Wal`] for IO failures, a corrupt checkpoint, or
    /// a [`Durability::Volatile`] config; replay errors propagate.
    pub fn open(dir: impl AsRef<Path>, config: DbConfig) -> DbResult<Self> {
        let store = FileStore::open(dir).map_err(|e| DbError::Wal(format!("open: {e}")))?;
        Self::open_with_store(Box::new(store), config)
    }

    /// [`Database::open`] over any [`WalStore`] — the crash-injection
    /// tests use this with an `exptime_wal::MemStore`.
    ///
    /// # Errors
    ///
    /// As [`Database::open`].
    pub fn open_with_store(store: Box<dyn WalStore>, config: DbConfig) -> DbResult<Self> {
        let Durability::Wal {
            group_commit,
            checkpoint_every,
            expiration_aware,
        } = config.durability
        else {
            return Err(DbError::Wal(
                "config.durability is Volatile; use Database::new".into(),
            ));
        };
        let mut db = Database::new(config);
        // Recovery replays history verbatim — including `_telemetry`
        // DDL/rows — so the reserved-schema guard must stand down and
        // the sampler must not synthesise new samples mid-replay.
        db.system_ctx = true;
        let mut wal = Wal::new(store, group_commit);
        wal.attach(db.metrics());

        let mut span = db.tracer.span("recovery");
        let (ckpt, scan) = wal
            .read_state()
            .map_err(|e| DbError::Wal(format!("read state: {e}")))?;
        let base_clock = ckpt.as_ref().map_or(0, |c| c.clock);
        let checkpoint_rows = ckpt.as_ref().map_or(0, Checkpoint::live_rows);
        if let Some(ck) = &ckpt {
            db.apply_checkpoint(ck)?;
        }
        let max_txn = scan
            .records
            .iter()
            .filter_map(|r| match r {
                WalRecord::TxnBegin { txn }
                | WalRecord::TxnCommit { txn }
                | WalRecord::Insert { txn, .. }
                | WalRecord::Delete { txn, .. }
                | WalRecord::UpdateTexp { txn, .. } => Some(*txn),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        let (ops, skipped_uncommitted) = committed_prefix(&scan.records);
        let plan = replay_plan(ops, base_clock, expiration_aware);
        let replayed = plan.ops.len() as u64;
        for op in &plan.ops {
            db.apply_wal_op(op)?;
        }
        // Replayed history fired expiration events into the trigger log;
        // they are not *this* run's events.
        db.triggers.clear_log();
        let stats = RecoveryStats {
            checkpoint_clock: base_clock,
            checkpoint_rows,
            replayed,
            skipped_expired: plan.skipped_expired,
            skipped_uncommitted,
            torn_bytes: scan.torn_bytes,
            clock: db.clock.now().finite().unwrap_or(u64::MAX),
        };
        span.attr("replayed", stats.replayed);
        span.attr("skipped_expired", stats.skipped_expired);
        span.attr("torn_bytes", stats.torn_bytes);
        if let Some(t) = db.clock.now().finite() {
            span.at(t);
        }
        drop(span);
        db.obs
            .emit_with(db.clock.now().finite(), || EventKind::WalRecovery {
                at: stats.clock,
                replayed: stats.replayed,
                skipped_expired: stats.skipped_expired,
                skipped_uncommitted: stats.skipped_uncommitted,
                torn_bytes: stats.torn_bytes,
            });

        // Recovery-time forecast: records that were replayable but
        // already expired at the recovered clock are future work the
        // vacuum never sees — surface them next to the live horizon.
        db.metrics()
            .gauge("forecast.recovery_skipped_expired")
            .set(gauge_i64(stats.skipped_expired));
        wal.bump_txn(max_txn);
        db.wal = Some(WalSession {
            wal,
            checkpoint_every,
            expiration_aware,
            last_checkpoint_clock: base_clock,
            degraded: false,
            active_txn: None,
            recovery: Some(stats),
        });
        // End recovery with a checkpoint (ARIES restart does the same):
        // the torn tail is discarded, replayed history is compacted, and
        // the next crash recovers from a clean prefix.
        db.checkpoint()?;
        db.system_ctx = false;
        // The recovered state's horizon, before the first advance.
        db.refresh_forecast_gauges();
        Ok(db)
    }

    /// Rebuilds tables, clock, and SQL-defined views from a checkpoint.
    /// Rows in a checkpoint are live (`texp > clock`), so inserting them
    /// at time 0 and then advancing to the checkpoint clock fires no
    /// spurious expirations.
    fn apply_checkpoint(&mut self, ck: &Checkpoint) -> DbResult<()> {
        for snap in &ck.tables {
            let schema = Schema::new(
                snap.columns
                    .iter()
                    .map(|(n, ty)| exptime_core::schema::Attribute::new(n.clone(), *ty))
                    .collect(),
            )?;
            self.create_table(&snap.name, schema)?;
            let now = self.clock.now();
            let table = self
                .tables
                .get_mut(&snap.name.to_ascii_lowercase())
                .expect("just created");
            for (values, texp) in &snap.rows {
                table.insert(Tuple::new(values.clone()), *texp, now)?;
            }
        }
        if ck.clock > 0 {
            self.advance_to(Time::new(ck.clock));
        }
        for sql in &ck.view_sql {
            self.execute(sql)?;
        }
        Ok(())
    }

    /// Redoes one committed log record. Runs with `self.wal == None`, so
    /// nothing here re-logs.
    fn apply_wal_op(&mut self, op: &WalRecord) -> DbResult<()> {
        match op {
            WalRecord::Insert {
                table,
                values,
                texp,
                ..
            } => {
                let now = self.clock.now();
                let t = self
                    .tables
                    .get_mut(table)
                    .ok_or_else(|| DbError::Wal(format!("replay: unknown table `{table}`")))?;
                t.insert(Tuple::new(values.clone()), *texp, now)?;
                self.bump_version(table);
            }
            WalRecord::Delete { table, values, .. } => {
                let t = self
                    .tables
                    .get_mut(table)
                    .ok_or_else(|| DbError::Wal(format!("replay: unknown table `{table}`")))?;
                if t.delete(&Tuple::new(values.clone())).is_some() {
                    self.bump_version(table);
                }
            }
            WalRecord::UpdateTexp {
                table,
                values,
                texp,
                ..
            } => {
                let now = self.clock.now();
                let t = self
                    .tables
                    .get_mut(table)
                    .ok_or_else(|| DbError::Wal(format!("replay: unknown table `{table}`")))?;
                t.update_texp(&Tuple::new(values.clone()), *texp, now)?;
                self.bump_version(table);
            }
            WalRecord::ClockAdvance { to } => {
                let target = Time::new(*to);
                if target > self.clock.now() {
                    self.advance_to(target);
                }
            }
            WalRecord::Ddl { sql } => {
                self.execute(sql)?;
            }
            WalRecord::TxnBegin { .. } | WalRecord::TxnCommit { .. } => {}
        }
        Ok(())
    }

    /// Writes a checkpoint now: fsyncs the log, snapshots the clock plus
    /// every table's live rows and every SQL-defined view, atomically
    /// replaces the checkpoint blob, and truncates the log. Clears the
    /// degraded flag — durable state is exactly in-memory state again.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Wal`] on IO failure or for volatile databases.
    pub fn checkpoint(&mut self) -> DbResult<CheckpointStats> {
        let now = self.clock.now();
        let at = now.finite().unwrap_or(u64::MAX);
        let ck = Checkpoint {
            clock: at,
            tables: self
                .tables
                .iter()
                .map(|(name, table)| TableSnapshot {
                    name: name.clone(),
                    columns: table
                        .schema()
                        .attributes()
                        .iter()
                        .map(|a| (a.name.clone(), a.ty))
                        .collect(),
                    rows: table
                        .scan_at(now)
                        .map(|(tuple, texp)| (tuple.values().to_vec(), texp))
                        .collect(),
                })
                .collect(),
            // TTL policies checkpoint as `ALTER TABLE … SET TTL …` DDL,
            // replayed (before the views) once the tables exist; policy
            // shapes with no SQL spelling are session-scoped by design.
            view_sql: self
                .tables
                .keys()
                .filter_map(|name| {
                    self.ttl_policy(name)
                        .filter(|p| !p.is_identity())
                        .and_then(|p| alter_ttl_sql(name, &p))
                })
                .chain(self.views.iter().filter_map(|(name, entry)| {
                    entry.definition().map(|query| {
                        exptime_sql::unparse::statement_to_sql(&Statement::CreateView {
                            name: name.clone(),
                            materialized: matches!(entry, ViewEntry::Materialized { .. }),
                            query: query.clone(),
                        })
                    })
                }))
                .collect(),
        };
        let session = self
            .wal
            .as_mut()
            .ok_or_else(|| DbError::Wal("checkpoint on a volatile database".into()))?;
        let stats = session
            .wal
            .write_checkpoint(&ck)
            .map_err(|e| DbError::Wal(format!("checkpoint: {e}")))?;
        session.last_checkpoint_clock = at;
        session.degraded = false;
        let out = CheckpointStats {
            at,
            live_rows: stats.live_rows,
            reclaimed_bytes: stats.reclaimed_bytes,
            checkpoint_bytes: stats.checkpoint_bytes,
        };
        self.obs.emit_with(now.finite(), || EventKind::Checkpoint {
            at,
            live_rows: out.live_rows,
            log_bytes_reclaimed: out.reclaimed_bytes,
        });
        Ok(out)
    }

    /// WAL status, or `None` for a volatile database.
    #[must_use]
    pub fn wal_status(&self) -> Option<WalStatus> {
        self.wal.as_ref().map(|s| WalStatus {
            log_bytes: s.wal.log_len(),
            group_commit: match self.config.durability {
                Durability::Wal { group_commit, .. } => group_commit,
                Durability::Volatile => 1,
            },
            checkpoint_every: s.checkpoint_every,
            expiration_aware: s.expiration_aware,
            last_checkpoint_clock: s.last_checkpoint_clock,
            degraded: s.degraded,
            recovery: s.recovery,
        })
    }

    /// What recovery did when this database was opened, if it was opened
    /// from a WAL.
    #[must_use]
    pub fn recovery_stats(&self) -> Option<RecoveryStats> {
        self.wal.as_ref().and_then(|s| s.recovery)
    }

    /// Forces an fsync of the log (beyond the group-commit cadence).
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Wal`] on IO failure; no-op when volatile.
    pub fn wal_sync(&mut self) -> DbResult<()> {
        if let Some(s) = self.wal.as_mut() {
            s.wal.sync().map_err(|e| {
                s.degraded = true;
                DbError::Wal(format!("sync: {e}"))
            })?;
        }
        Ok(())
    }

    /// Opens a statement-scoped WAL transaction if none is active.
    /// Returns whether this call owns (and must commit) it.
    fn wal_stmt_begin(&mut self) -> DbResult<bool> {
        let Some(s) = self.wal.as_mut() else {
            return Ok(false);
        };
        if s.active_txn.is_some() {
            return Ok(false);
        }
        let txn = s.wal.begin_txn();
        s.wal.append(&WalRecord::TxnBegin { txn }).map_err(|e| {
            s.degraded = true;
            DbError::Wal(format!("append: {e}"))
        })?;
        s.active_txn = Some(txn);
        Ok(true)
    }

    /// Commits the statement's WAL transaction (when `owned`). Written
    /// even after a statement error: the engine's statements are not
    /// atomic, so the operations that did apply must stay durable.
    fn wal_stmt_end(&mut self, owned: bool) -> DbResult<()> {
        if !owned {
            return Ok(());
        }
        let Some(s) = self.wal.as_mut() else {
            return Ok(());
        };
        let Some(txn) = s.active_txn.take() else {
            return Ok(());
        };
        s.wal
            .append(&WalRecord::TxnCommit { txn })
            .and_then(|()| s.wal.commit())
            .map_err(|e| {
                s.degraded = true;
                DbError::Wal(format!("commit: {e}"))
            })
    }

    /// Logs one applied operation under the active statement transaction.
    fn wal_log_op(&mut self, build: impl FnOnce(u64) -> WalRecord) -> DbResult<()> {
        let Some(s) = self.wal.as_mut() else {
            return Ok(());
        };
        let Some(txn) = s.active_txn else {
            return Ok(());
        };
        s.wal.append(&build(txn)).map_err(|e| {
            s.degraded = true;
            DbError::Wal(format!("append: {e}"))
        })
    }

    /// Logs a self-committing DDL record (counts toward group commit).
    /// Callers gate on [`self.wal.is_some()`] so the SQL string is only
    /// built for durable databases.
    fn wal_log_ddl(&mut self, sql: String) -> DbResult<()> {
        let Some(s) = self.wal.as_mut() else {
            return Ok(());
        };
        s.wal
            .append(&WalRecord::Ddl { sql })
            .and_then(|()| s.wal.commit())
            .map_err(|e| {
                s.degraded = true;
                DbError::Wal(format!("ddl: {e}"))
            })
    }

    /// Logs a clock advance and runs the automatic checkpoint cadence.
    /// Called from [`Database::advance_to`], which is infallible: WAL
    /// errors here mark the session degraded instead of propagating.
    fn wal_after_advance(&mut self, to: Time) {
        let Some(to_u) = to.finite() else { return };
        let due = match self.wal.as_mut() {
            None => return,
            Some(s) => {
                if let Err(_e) = s
                    .wal
                    .append(&WalRecord::ClockAdvance { to: to_u })
                    .and_then(|()| s.wal.commit())
                {
                    s.degraded = true;
                    return;
                }
                s.checkpoint_every > 0 && to_u - s.last_checkpoint_clock >= s.checkpoint_every
            }
        };
        if due {
            // Cadence checkpoints are best-effort: a failure leaves the
            // log longer (and the session degraded), never the state wrong.
            if let Err(_e) = self.checkpoint() {
                if let Some(s) = self.wal.as_mut() {
                    s.degraded = true;
                }
            }
        }
    }

    /// The current logical time `τ`.
    #[must_use]
    pub fn now(&self) -> Time {
        self.clock.now()
    }

    /// Engine statistics (a snapshot of the `db.*` registry counters).
    #[must_use]
    pub fn stats(&self) -> DbStats {
        self.counters.snapshot()
    }

    /// The engine's observability handle: its [`MetricsRegistry`] (every
    /// `db.*`, `storage.<table>.*`, and `view.<name>.*` metric) and event
    /// stream. Install a sink (e.g. [`exptime_obs::RingSink`]) to watch
    /// expirations, trigger firings, vacuum passes, clock advances, view
    /// refresh decisions, and optimizer rewrites as they happen.
    #[must_use]
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Shorthand for `self.obs().registry()`.
    #[must_use]
    pub fn metrics(&self) -> &MetricsRegistry {
        self.obs.registry()
    }

    /// The engine's [`Tracer`]. Disabled by default (spans cost one
    /// relaxed load); call `db.tracer().enable()` to record the query
    /// pipeline (parse → plan → rewrite → eval → view refresh) and
    /// storage expiry passes as hierarchical spans.
    #[must_use]
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The always-on statement profiler's aggregate: scalar totals for
    /// every statement, per-operator detail from the sampling cadence.
    /// The CLI's `\profile` renders this.
    #[must_use]
    pub fn profile_stats(&self) -> ProfileStats {
        self.profiler.snapshot()
    }

    /// The statement profiler handle (shared — clones see the same
    /// aggregate), for embedders that want to reset between phases.
    #[must_use]
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// A health snapshot: per-view time-to-expiration (from materialised
    /// `texp` — Theorems 1–3), SLO breach counts, and latency/lateness
    /// distributions. Refreshes the staleness gauges first, so the report
    /// reflects *this* instant even if the clock has not moved since the
    /// last advance.
    #[must_use]
    pub fn health(&self) -> Health {
        self.observe_view_staleness();
        self.monitor.health()
    }

    /// Pushes every materialised view's `texp` into the staleness
    /// monitor's `view.<name>.ttx` gauges.
    fn observe_view_staleness(&self) {
        let now = self.clock.now().finite().unwrap_or(u64::MAX);
        let items: Vec<(&str, Option<u64>, Option<RefreshDecision>)> = self
            .views
            .iter()
            .filter_map(|(name, entry)| match entry {
                ViewEntry::Materialized { view, .. } => {
                    Some((name.as_str(), view.texp().finite(), view.last_decision()))
                }
                ViewEntry::Virtual { .. } => None,
            })
            .collect();
        self.monitor.observe_views(now, items);
    }

    /// Forecasts future expiration load: every table's expiry index is
    /// folded into log₂ horizon buckets (`[now + 2^k, now + 2^(k+1))`),
    /// materialised views report their predicted refresh deadlines, and
    /// buckets denser than [`ForecastConfig::storm_threshold`] per tick
    /// are flagged as storms. Everything here is *computable today*
    /// because a tuple's future visibility is a pure function of its
    /// expiration time — the paper's central observation, pointed
    /// forward.
    #[must_use]
    pub fn forecast(&self) -> DbForecast {
        let now_t = self.clock.now();
        let now = now_t.finite().unwrap_or(u64::MAX);
        let mut horizon = HorizonForecast::new(now);
        let mut tables = Vec::new();
        for (name, table) in &self.tables {
            let f = table.expiry_horizon(now_t);
            horizon.merge(&f);
            tables.push((name.clone(), f));
        }
        let views = self
            .views
            .iter()
            .filter_map(|(name, entry)| match entry {
                ViewEntry::Materialized { view, .. } => Some((
                    name.clone(),
                    view.texp().finite().map(|t| t.saturating_sub(now)),
                )),
                ViewEntry::Virtual { .. } => None,
            })
            .collect();
        let threshold = self.config.forecast.storm_threshold;
        let storms = horizon.storms(threshold);
        DbForecast {
            now,
            threshold,
            horizon,
            tables,
            views,
            storms,
        }
    }

    /// Re-derives the `forecast.*` gauges from a fresh horizon scan and
    /// emits a `storm_warning` event per storming bucket. Runs once per
    /// [`Database::advance_to`] call — the same cadence as the staleness
    /// gauges — and once after WAL recovery.
    fn refresh_forecast_gauges(&self) {
        let fc = self.forecast();
        let reg = self.metrics();
        reg.gauge("forecast.live")
            .set(gauge_i64(fc.horizon.total()));
        reg.gauge("forecast.expiring")
            .set(gauge_i64(fc.horizon.expiring()));
        reg.gauge("forecast.eternal")
            .set(gauge_i64(fc.horizon.eternal()));
        reg.gauge("forecast.due_64")
            .set(gauge_i64(fc.horizon.due_within(64)));
        reg.gauge("forecast.storm_buckets")
            .set(gauge_i64(fc.storms.len() as u64));
        for (name, f) in &fc.tables {
            reg.gauge(&format!("storage.{name}.forecast_expiring"))
                .set(gauge_i64(f.expiring()));
        }
        for (name, due) in &fc.views {
            // -1 marks an eternal view: no expiration ever forces it.
            reg.gauge(&format!("view.{name}.refresh_due_in"))
                .set(due.map_or(-1, gauge_i64));
        }
        for s in &fc.storms {
            self.obs
                .emit_with(Some(fc.now), || EventKind::StormWarning {
                    lo: s.lo,
                    hi: s.hi,
                    predicted: s.predicted,
                    threshold: fc.threshold,
                    at: fc.now,
                });
        }
    }

    /// The trigger manager (register callbacks, read the event log).
    pub fn triggers(&mut self) -> &mut TriggerManager {
        &mut self.triggers
    }

    /// Registers an expiration trigger on a table.
    pub fn on_expire(
        &mut self,
        table: impl Into<String>,
        name: impl Into<String>,
        callback: TriggerFn,
    ) {
        self.triggers.on_expire(table, name, callback);
    }

    /// Adds a constraint to a table.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Catalog`] for an unknown table.
    pub fn add_constraint(&mut self, table: &str, constraint: Constraint) -> DbResult<()> {
        let key = table.to_ascii_lowercase();
        if !self.tables.contains_key(&key) {
            return Err(DbError::Catalog(format!("unknown table `{table}`")));
        }
        self.constraints.entry(key).or_default().push(constraint);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Time
    // ------------------------------------------------------------------

    /// Advances the clock by `delta` ticks, processing expirations per the
    /// removal policy. Returns the new time.
    pub fn tick(&mut self, delta: u64) -> Time {
        let target = self.clock.now() + delta;
        self.advance_to(target);
        target
    }

    /// Advances the clock to `target`.
    ///
    /// # Panics
    ///
    /// Panics if `target` is in the past or `∞` (clocks only move forward
    /// through finite instants).
    pub fn advance_to(&mut self, target: Time) {
        let from = self.clock.now();
        let mut span = self.tracer.span("clock.advance");
        span.attr("from", from);
        span.attr("to", target);
        if let Some(t) = target.finite() {
            span.at(t);
        }
        if target > from {
            self.obs
                .emit_with(target.finite(), || EventKind::ClockAdvance {
                    from: from.finite().unwrap_or(u64::MAX),
                    to: target.finite().unwrap_or(u64::MAX),
                });
        }
        match self.config.removal {
            Removal::Eager => {
                // Step through each expiration event so triggers fire at
                // their exact times.
                loop {
                    let next = self
                        .tables
                        .values_mut()
                        .filter_map(Table::next_expiration)
                        .min();
                    match next {
                        Some(t) if t <= target => {
                            self.clock.advance_to(t);
                            self.expire_all(t, t);
                        }
                        _ => break,
                    }
                }
                self.clock.advance_to(target);
            }
            Removal::Lazy { vacuum_every } => {
                self.clock.advance_to(target);
                let due = target
                    .finite()
                    .zip(self.last_vacuum.finite())
                    .is_some_and(|(t, v)| t - v >= vacuum_every);
                if due {
                    self.vacuum();
                }
            }
        }
        drop(span);
        if target > from {
            self.wal_after_advance(target);
        }
        // Every clock advance re-derives the per-view time-to-expiration
        // gauges from the materialised texp values (no sampling needed —
        // the paper's machinery makes staleness predictable), then the
        // forward-looking horizon: forecast gauges and storm warnings.
        // Once per advance_to *call*, not per tick — `tick(1024)` pays
        // for one horizon scan.
        self.observe_view_staleness();
        self.refresh_forecast_gauges();
        // Telemetry sampling rides the same cadence: persist the freshly
        // refreshed gauges as expiring history rows when a sample is due.
        self.maybe_sample_telemetry();
    }

    /// Runs a vacuum pass now: physically removes expired rows from every
    /// table and fires their triggers (with `fired_at = now`, possibly
    /// after `texp` — the lazy-removal fidelity gap).
    pub fn vacuum(&mut self) {
        let now = self.clock.now();
        let mut span = self.tracer.span("db.vacuum");
        if let Some(t) = now.finite() {
            span.at(t);
        }
        let removed = self.expire_all(now, now);
        span.attr("removed", removed);
        self.last_vacuum = now;
        self.counters.vacuums.inc();
        self.obs.emit_with(now.finite(), || EventKind::VacuumPass {
            at: now.finite().unwrap_or(u64::MAX),
            removed,
        });
    }

    fn expire_all(&mut self, tau: Time, fired_at: Time) -> u64 {
        let mut removed = 0;
        for (name, table) in &mut self.tables {
            for (tuple, texp) in table.expire_due(tau) {
                self.counters.expired.inc();
                removed += 1;
                let (texp_u, fired_u) = (
                    texp.finite().unwrap_or(u64::MAX),
                    fired_at.finite().unwrap_or(u64::MAX),
                );
                self.obs
                    .emit_with(fired_at.finite(), || EventKind::TupleExpired {
                        table: name.clone(),
                        texp: texp_u,
                        fired_at: fired_u,
                    });
                self.triggers.fire(ExpirationEvent {
                    table: name.clone(),
                    tuple,
                    texp,
                    fired_at,
                });
                self.obs
                    .emit_with(fired_at.finite(), || EventKind::TriggerFired {
                        table: name.clone(),
                        texp: texp_u,
                        fired_at: fired_u,
                    });
                // SLO: lazy removal fires triggers late by design; the
                // monitor decides whether this crossed the threshold.
                self.monitor.observe_trigger(name, texp_u, fired_u);
            }
        }
        removed
    }

    // ------------------------------------------------------------------
    // Tables and direct DML
    // ------------------------------------------------------------------

    /// Creates a table.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Catalog`] if the name is taken.
    pub fn create_table(&mut self, name: &str, schema: Schema) -> DbResult<()> {
        self.guard_reserved(name, "CREATE TABLE")?;
        let key = name.to_ascii_lowercase();
        if self.tables.contains_key(&key) || self.views.contains_key(&key) {
            return Err(DbError::Catalog(format!("`{name}` already exists")));
        }
        let mut table = Table::new(key.clone(), schema, self.config.index);
        table.attach_obs(&self.obs);
        table.attach_tracer(&self.tracer);
        self.tables.insert(key.clone(), table);
        if self.wal.is_some() {
            let sql = exptime_sql::unparse::statement_to_sql(&Statement::CreateTable {
                name: key.clone(),
                columns: self.tables[&key]
                    .schema()
                    .attributes()
                    .iter()
                    .map(|a| (a.name.clone(), a.ty))
                    .collect(),
                // Any TTL policy is set after creation and logged as its
                // own ALTER record (see [`Database::set_ttl_policy`]).
                ttl: None,
            });
            self.wal_log_ddl(sql)?;
        }
        Ok(())
    }

    /// Drops a table.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Catalog`] for an unknown table or one referenced
    /// by a view.
    pub fn drop_table(&mut self, name: &str) -> DbResult<()> {
        self.guard_reserved(name, "DROP TABLE")?;
        let key = name.to_ascii_lowercase();
        for (vname, entry) in &self.views {
            if entry
                .expr()
                .base_names()
                .iter()
                .any(|b| b.eq_ignore_ascii_case(&key))
            {
                return Err(DbError::Catalog(format!(
                    "cannot drop `{name}`: view `{vname}` depends on it"
                )));
            }
        }
        self.write_versions.remove(&key);
        self.policies.remove(&key);
        self.tables
            .remove(&key)
            .ok_or_else(|| DbError::Catalog(format!("unknown table `{name}`")))?;
        if self.wal.is_some() {
            let sql = exptime_sql::unparse::statement_to_sql(&Statement::DropTable { name: key });
            self.wal_log_ddl(sql)?;
        }
        Ok(())
    }

    /// Direct access to a table (e.g. to create secondary indexes).
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Catalog`] for an unknown table.
    pub fn table_mut(&mut self, name: &str) -> DbResult<&mut Table> {
        self.tables
            .get_mut(&name.to_ascii_lowercase())
            .ok_or_else(|| DbError::Catalog(format!("unknown table `{name}`")))
    }

    /// Immutable access to a table.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Catalog`] for an unknown table.
    pub fn table(&self, name: &str) -> DbResult<&Table> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| DbError::Catalog(format!("unknown table `{name}`")))
    }

    /// Inserts a tuple with an absolute expiration time (use
    /// [`Time::INFINITY`] for "never").
    ///
    /// # Errors
    ///
    /// Returns schema, constraint, or past-expiration errors.
    pub fn insert(&mut self, table: &str, tuple: Tuple, texp: Time) -> DbResult<()> {
        self.guard_reserved(table, "INSERT")?;
        let owned = self.wal_stmt_begin()?;
        let res = self.insert_inner(table, tuple, Some(texp));
        self.wal_stmt_end(owned).and(res)
    }

    /// Inserts a tuple whose expiration is left entirely to the table's
    /// TTL policy (`now + ttl`, clamped; `∞` without a policy) — the API
    /// twin of `INSERT … VALUES …` with no `EXPIRES` clause.
    ///
    /// # Errors
    ///
    /// As [`Database::insert`].
    pub fn insert_default(&mut self, table: &str, tuple: Tuple) -> DbResult<()> {
        self.guard_reserved(table, "INSERT")?;
        let owned = self.wal_stmt_begin()?;
        let res = self.insert_inner(table, tuple, None);
        self.wal_stmt_end(owned).and(res)
    }

    /// `requested = None` defers the expiration to the table's policy.
    fn insert_inner(&mut self, table: &str, tuple: Tuple, requested: Option<Time>) -> DbResult<()> {
        let start = Instant::now();
        let now = self.clock.now();
        let key = table.to_ascii_lowercase();
        // Policy pass (skipped in system context: WAL replay and dump
        // restore carry already-effective absolute expirations, and
        // re-clamping them would corrupt restored state).
        let tp = (!self.system_ctx)
            .then(|| self.policies.get(&key))
            .flatten();
        let (texp, clamped, modify_slides) = match tp {
            Some(tp) => {
                let fx = tp
                    .policy
                    .effective_texp(PolicyEvent::Write { requested }, now);
                (
                    fx.texp,
                    fx.clamped,
                    tp.policy.sliding.slides_on(TouchKind::Modify),
                )
            }
            None => (requested.unwrap_or(Time::INFINITY), false, false),
        };
        if let Some(cs) = self.constraints.get(&key) {
            for c in cs {
                c.check(&tuple, texp, now)?;
            }
        }
        let t = self
            .tables
            .get_mut(&key)
            .ok_or_else(|| DbError::Catalog(format!("unknown table `{table}`")))?;
        // A re-insert of an existing row under a sliding-on-modify policy
        // is a touch; record whether it actually re-armed (moved `texp`
        // forward — the keep-max upsert below makes that exactly
        // `texp > prior`).
        let slid = modify_slides && t.texp(&tuple).is_some_and(|prior| texp > prior);
        // Clone the row for the log only when a WAL transaction is open;
        // volatile inserts stay allocation-free here.
        let logged = self
            .wal
            .as_ref()
            .is_some_and(|s| s.active_txn.is_some())
            .then(|| tuple.values().to_vec());
        t.insert(tuple, texp, now)?;
        self.counters.inserts.inc();
        self.counters.insert_ns.record_duration(start.elapsed());
        if clamped || slid {
            self.note_policy_effect(&key, clamped, slid);
        }
        self.bump_version(&key);
        if let Some(values) = logged {
            self.wal_log_op(|txn| WalRecord::Insert {
                txn,
                table: key.clone(),
                values,
                texp,
            })?;
        }
        Ok(())
    }

    /// Bumps the global and per-table `policy.*` counters.
    fn note_policy_effect(&self, table_key: &str, clamped: bool, slid: bool) {
        let Some(tp) = self.policies.get(table_key) else {
            return;
        };
        if clamped {
            self.policy_counters.clamped.inc();
            tp.clamped.inc();
        }
        if slid {
            self.policy_counters.sliding_touches.inc();
            tp.sliding_touches.inc();
        }
    }

    fn bump_version(&mut self, table_key: &str) {
        *self
            .write_versions
            .entry(table_key.to_string())
            .or_insert(0) += 1;
    }

    fn current_versions(&self, expr: &Expr) -> Vec<(String, u64)> {
        expr.base_names()
            .into_iter()
            .map(|n| {
                let k = n.to_ascii_lowercase();
                let v = self.write_versions.get(&k).copied().unwrap_or(0);
                (k, v)
            })
            .collect()
    }

    /// Inserts a tuple that expires `ttl` ticks from now.
    ///
    /// # Errors
    ///
    /// As [`Database::insert`].
    pub fn insert_ttl(&mut self, table: &str, tuple: Tuple, ttl: u64) -> DbResult<()> {
        let texp = self.clock.now() + ttl;
        self.insert(table, tuple, texp)
    }

    // ------------------------------------------------------------------
    // TTL policies (DESIGN.md §13)
    // ------------------------------------------------------------------

    /// Sets `table`'s TTL policy (an identity policy clears it) — the API
    /// twin of `ALTER TABLE … SET TTL …`.
    ///
    /// Durable databases log the change as DDL when the policy has a SQL
    /// spelling (it needs a default TTL); API-only shapes — maintenance
    /// windows, clamps without a TTL — are session-scoped, like triggers
    /// and constraints. Setting a sliding policy under an existing
    /// materialised view emits a `W102` lint event per dependent view:
    /// every touch bumps the base's write version and forces a refresh,
    /// voiding the paper's monotone-`texp` maintenance assumption.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Catalog`] for unknown or reserved tables.
    pub fn set_ttl_policy(&mut self, table: &str, policy: TtlPolicy) -> DbResult<()> {
        self.guard_reserved(table, "ALTER TABLE")?;
        let key = table.to_ascii_lowercase();
        if !self.tables.contains_key(&key) {
            return Err(DbError::Catalog(format!("unknown table `{table}`")));
        }
        if policy.is_identity() {
            self.policies.remove(&key);
        } else if let Some(tp) = self.policies.get_mut(&key) {
            tp.policy = policy;
        } else {
            let tp = TablePolicy::in_registry(self.obs.registry(), &key, policy);
            self.policies.insert(key.clone(), tp);
        }
        // A policy change invalidates every bound the last audit proved
        // (loosening a clamp can admit longer-lived rows than the proof
        // covered). Clear them; the next audit re-derives.
        self.monitor.set_staleness_bounds(std::iter::empty());
        let at = self.clock.now().finite();
        self.obs.emit_with(at, || EventKind::PolicyChange {
            table: key.clone(),
            policy: policy.to_string(),
            at: at.unwrap_or(u64::MAX),
        });
        if policy.sliding != Sliding::Absolute {
            let dependents: Vec<String> = self
                .views
                .iter()
                .filter(|(_, e)| matches!(e, ViewEntry::Materialized { .. }))
                .filter(|(_, e)| {
                    e.expr()
                        .base_names()
                        .iter()
                        .any(|b| b.eq_ignore_ascii_case(&key))
                })
                .map(|(v, _)| v.clone())
                .collect();
            for view in &dependents {
                let d = sliding_matview_diag(&key, view);
                self.obs.emit_with(at, || EventKind::LintDiagnostic {
                    code: d.code.to_string(),
                    severity: d.severity.to_string(),
                    subject: view.clone(),
                });
                self.obs.registry().counter("lint.diagnostics").inc();
            }
        }
        if self.wal.is_some() {
            let sql = if policy.is_identity() {
                Some(exptime_sql::unparse::statement_to_sql(
                    &Statement::AlterTtl {
                        table: key,
                        ttl: None,
                    },
                ))
            } else {
                alter_ttl_sql(&key, &policy)
            };
            if let Some(sql) = sql {
                self.wal_log_ddl(sql)?;
            }
        }
        Ok(())
    }

    /// The table's TTL policy, if one is set.
    #[must_use]
    pub fn ttl_policy(&self, table: &str) -> Option<TtlPolicy> {
        self.policies
            .get(&table.to_ascii_lowercase())
            .map(|tp| tp.policy)
    }

    /// Installs (or, with `None`, lifts) a maintenance window on `table`'s
    /// policy: expirations that would land inside `[start, end)` are
    /// deferred to `end`, so the removal storm fires after the window.
    /// Windows are API-only (no SQL spelling) and session-scoped.
    ///
    /// # Errors
    ///
    /// As [`Database::set_ttl_policy`].
    pub fn set_maintenance_window(
        &mut self,
        table: &str,
        window: Option<MaintenanceWindow>,
    ) -> DbResult<()> {
        let mut policy = self.ttl_policy(table).unwrap_or_default();
        policy.maintenance = window;
        self.set_ttl_policy(table, policy)
    }

    /// One row per table: its effective policy (identity when none is
    /// set), the live `policy.<table>.*` counter values, and the live row
    /// count. Backs `SHOW TTL` and the CLI's `\policy status`.
    #[must_use]
    pub fn policy_status(&self) -> Vec<PolicyStatus> {
        let now = self.clock.now();
        self.tables
            .iter()
            .map(|(name, t)| {
                let tp = self.policies.get(name);
                PolicyStatus {
                    table: name.clone(),
                    policy: tp.map(|tp| tp.policy).unwrap_or_default(),
                    sliding_touches: tp.map_or(0, |tp| tp.sliding_touches.get()),
                    clamped: tp.map_or(0, |tp| tp.clamped.get()),
                    live_rows: t.live_count(now) as u64,
                }
            })
            .collect()
    }

    fn exec_show_ttl(&self, table: Option<&str>) -> DbResult<ExecResult> {
        use exptime_core::schema::Attribute;
        let schema = Schema::new(vec![
            Attribute::new("table".to_string(), ValueType::Str),
            Attribute::new("policy".to_string(), ValueType::Str),
            Attribute::new("sliding_touches".to_string(), ValueType::Int),
            Attribute::new("clamped".to_string(), ValueType::Int),
            Attribute::new("live_rows".to_string(), ValueType::Int),
        ])?;
        let statuses = match table {
            Some(t) => {
                let key = t.to_ascii_lowercase();
                if !self.tables.contains_key(&key) {
                    return Err(DbError::Catalog(format!("unknown table `{t}`")));
                }
                self.policy_status()
                    .into_iter()
                    .filter(|s| s.table == key)
                    .collect()
            }
            None => self.policy_status(),
        };
        let as_int = |n: u64| Value::Int(i64::try_from(n).unwrap_or(i64::MAX));
        let rel = Relation::from_rows(
            schema,
            statuses.into_iter().map(|s| {
                (
                    Tuple::new(vec![
                        Value::str(s.table.as_str()),
                        Value::str(s.policy.to_string().as_str()),
                        as_int(s.sliding_touches),
                        as_int(s.clamped),
                        as_int(s.live_rows),
                    ]),
                    Time::INFINITY,
                )
            }),
        )?;
        Ok(ExecResult::Rows(rel))
    }

    /// Sliding-on-access pass for a SQL `SELECT`: every base table the
    /// query names whose policy slides on access gets its read rows
    /// re-armed (keep-max, `O(log n)` per row through the expiry index).
    /// Single-table bodies narrow the touch set with the `WHERE`
    /// predicate; other shapes conservatively touch every live row.
    /// Touches run in their own WAL statement transaction so they are
    /// durable — a recovered database does not forget that a session was
    /// recently seen.
    fn apply_access_touches(&mut self, query: &exptime_sql::ast::Query) -> DbResult<()> {
        if self.system_ctx {
            return Ok(());
        }
        let bodies: Vec<&exptime_sql::ast::QueryBody> = std::iter::once(&query.body)
            .chain(query.compound.iter().map(|(_, b)| b))
            .collect();
        // Cheap pre-check: read-only workloads over non-sliding tables
        // must not open WAL transactions (or pay anything else).
        let any = bodies.iter().any(|b| {
            b.from.iter().any(|t| {
                self.policies
                    .get(&t.to_ascii_lowercase())
                    .is_some_and(|tp| tp.policy.sliding.slides_on(TouchKind::Access))
            })
        });
        if !any {
            return Ok(());
        }
        let owned = self.wal_stmt_begin()?;
        let res = self.apply_access_touches_inner(&bodies);
        self.wal_stmt_end(owned).and(res)
    }

    fn apply_access_touches_inner(
        &mut self,
        bodies: &[&exptime_sql::ast::QueryBody],
    ) -> DbResult<()> {
        let now = self.clock.now();
        for body in bodies {
            for table in &body.from {
                let key = table.to_ascii_lowercase();
                let Some(tp) = self.policies.get(&key) else {
                    continue;
                };
                if !tp.policy.sliding.slides_on(TouchKind::Access) {
                    continue;
                }
                let policy = tp.policy;
                if !self.tables.contains_key(&key) {
                    continue;
                }
                // Narrow by WHERE when it plans as a per-tuple predicate
                // over this one table; degrade to touch-all otherwise.
                let pred = if body.from.len() == 1 {
                    body.selection
                        .as_ref()
                        .and_then(|c| plan_table_cond(c, table, &DbSchemas(self)).ok())
                } else {
                    None
                };
                let victims: Vec<(Tuple, Time)> = self.tables[&key]
                    .scan_at(now)
                    .filter(|(tu, _)| pred.as_ref().map_or(true, |p| p.eval(tu)))
                    .map(|(tu, texp)| (tu.clone(), texp))
                    .collect();
                let mut touched = 0u64;
                for (tu, current) in &victims {
                    let fx = policy.effective_texp(
                        PolicyEvent::Touch {
                            kind: TouchKind::Access,
                            current: *current,
                        },
                        now,
                    );
                    if !fx.slid {
                        continue;
                    }
                    let t = self.tables.get_mut(&key).expect("checked above");
                    if t.update_texp(tu, fx.texp, now)? {
                        touched += 1;
                        self.note_policy_effect(&key, fx.clamped, true);
                        self.wal_log_op(|txn| WalRecord::UpdateTexp {
                            txn,
                            table: key.clone(),
                            values: tu.values().to_vec(),
                            texp: fx.texp,
                        })?;
                    }
                }
                if touched > 0 {
                    self.bump_version(&key);
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Querying
    // ------------------------------------------------------------------

    /// Snapshots all base tables into an algebra [`Catalog`] at the
    /// current time.
    #[must_use]
    pub fn snapshot(&self) -> Catalog {
        let now = self.clock.now();
        let mut c = Catalog::new();
        let mut cloned = 0u64;
        for (name, table) in &self.tables {
            let rel = table.to_relation(now);
            cloned += rel.len() as u64;
            c.register(name.clone(), rel);
        }
        // Snapshotting clones every live tuple — the engine's dominant
        // materialization site, billed to the statement's profile.
        self.alloc.note(cloned);
        c
    }

    /// Evaluates an algebra expression at the current time. View names in
    /// the expression are inlined first.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn query_expr(&mut self, expr: &Expr) -> DbResult<Materialized> {
        let start = Instant::now();
        let mut root = self.tracer.span("query");
        if let Some(t) = self.clock.now().finite() {
            root.at(t);
        }
        let (expr, snapshot) = self.prepare_expr(expr);
        // Per-operator detail only on the profiler's sampling cadence:
        // the profiled evaluator runs a separate (timed) recursion, so
        // unsampled statements stay on the hot path.
        let sampled = self.profiler.next_is_sampled();
        let (m, operators) = {
            let mut sp = self.tracer.span("eval");
            let (m, operators) = if sampled {
                let (m, prof) =
                    eval_profiled(&expr, &snapshot, self.clock.now(), &self.config.eval)?;
                (m, flatten_profile(&prof))
            } else {
                let m = eval(&expr, &snapshot, self.clock.now(), &self.config.eval)?;
                (m, Vec::new())
            };
            sp.attr("rows_out", m.rel.len());
            sp.attr("texp", m.texp);
            (m, operators)
        };
        root.attr("rows", m.rel.len());
        self.counters.queries.inc();
        let elapsed = start.elapsed();
        self.counters.query_ns.record_duration(elapsed);
        // Views were inlined, so no patch-queue work happened here.
        self.profiler.record(QueryProfile {
            label: expr.to_string(),
            rows_scanned: scanned_rows(&expr, &snapshot),
            tuples_materialized: m.rel.len() as u64,
            change_points: expr_node_count(&expr),
            patch_ops: 0,
            allocations: self.alloc.take(),
            wall_ns: duration_ns(elapsed),
            operators,
        });
        Ok(m)
    }

    /// Inlines views, snapshots the catalog, and (when configured) runs
    /// the cost-gated rewriter, emitting a [`EventKind::RewriteApplied`]
    /// event when the plan actually changed.
    fn prepare_expr(&mut self, expr: &Expr) -> (Expr, Catalog) {
        let expr = self.inline_views(expr);
        let snapshot = self.snapshot();
        let expr = if self.config.optimize {
            let mut sp = self.tracer.span("rewrite");
            let rewritten = exptime_core::cost::optimize(&expr, &snapshot, self.clock.now());
            sp.attr("applied", rewritten != expr);
            if rewritten != expr {
                self.obs
                    .emit_with(self.clock.now().finite(), || EventKind::RewriteApplied {
                        rule: "cost_gated_rewrite".into(),
                        detail: format!("{expr} => {rewritten}"),
                    });
            }
            rewritten
        } else {
            expr
        };
        (expr, snapshot)
    }

    /// Replaces view references with their defining expressions, so every
    /// expression bottoms out at base tables.
    #[must_use]
    pub fn inline_views(&self, expr: &Expr) -> Expr {
        match expr {
            Expr::Base(name) => match self.views.get(&name.to_ascii_lowercase()) {
                Some(entry) => entry.expr().clone(),
                None => expr.clone(),
            },
            Expr::Select { input, predicate } => Expr::Select {
                input: Box::new(self.inline_views(input)),
                predicate: predicate.clone(),
            },
            Expr::Project { input, positions } => Expr::Project {
                input: Box::new(self.inline_views(input)),
                positions: positions.clone(),
            },
            Expr::Product { left, right } => Expr::Product {
                left: Box::new(self.inline_views(left)),
                right: Box::new(self.inline_views(right)),
            },
            Expr::Union { left, right } => Expr::Union {
                left: Box::new(self.inline_views(left)),
                right: Box::new(self.inline_views(right)),
            },
            Expr::Join {
                left,
                right,
                predicate,
            } => Expr::Join {
                left: Box::new(self.inline_views(left)),
                right: Box::new(self.inline_views(right)),
                predicate: predicate.clone(),
            },
            Expr::Intersect { left, right } => Expr::Intersect {
                left: Box::new(self.inline_views(left)),
                right: Box::new(self.inline_views(right)),
            },
            Expr::Difference { left, right } => Expr::Difference {
                left: Box::new(self.inline_views(left)),
                right: Box::new(self.inline_views(right)),
            },
            Expr::Aggregate {
                input,
                group_by,
                func,
            } => Expr::Aggregate {
                input: Box::new(self.inline_views(input)),
                group_by: group_by.clone(),
                func: *func,
            },
        }
    }

    /// Creates a materialised view over an algebra expression (view names
    /// inlined). The view maintains itself per the configured policies.
    ///
    /// # Errors
    ///
    /// Returns catalog or evaluation errors.
    pub fn create_materialized_view(&mut self, name: &str, expr: Expr) -> DbResult<()> {
        self.create_materialized_view_inner(name, expr, None)
    }

    fn create_materialized_view_inner(
        &mut self,
        name: &str,
        expr: Expr,
        definition: Option<exptime_sql::ast::Query>,
    ) -> DbResult<()> {
        self.guard_reserved(name, "CREATE MATERIALIZED VIEW")?;
        let key = name.to_ascii_lowercase();
        if self.tables.contains_key(&key) || self.views.contains_key(&key) {
            return Err(DbError::Catalog(format!("`{name}` already exists")));
        }
        let expr = self.inline_views(&expr);
        let snapshot = self.snapshot();
        let schema = expr.schema(&snapshot)?;
        let mut view = MaterializedView::new(
            expr,
            &snapshot,
            self.clock.now(),
            self.config.eval,
            self.config.view_refresh,
            RemovalPolicy::Lazy,
        )?;
        view.attach_obs(&self.obs, &key);
        view.attach_tracer(&self.tracer);
        let base_versions = self.current_versions(view.expr());
        let diagnostics = self.lint_materialization(&key, definition.as_ref(), &view);
        let log_sql = match (&definition, &self.wal) {
            (Some(query), Some(_)) => Some(exptime_sql::unparse::statement_to_sql(
                &Statement::CreateView {
                    name: key.clone(),
                    materialized: true,
                    query: query.clone(),
                },
            )),
            // API-created views have no SQL definition and are not
            // durable — same limitation as dump_sql, documented there.
            _ => None,
        };
        self.views.insert(
            key,
            ViewEntry::Materialized {
                view,
                schema,
                base_versions,
                definition,
                diagnostics,
            },
        );
        if let Some(sql) = log_sql {
            self.wal_log_ddl(sql)?;
        }
        Ok(())
    }

    /// Creates a virtual (non-materialised) view.
    ///
    /// # Errors
    ///
    /// Returns catalog or schema errors.
    pub fn create_view(&mut self, name: &str, expr: Expr) -> DbResult<()> {
        self.create_view_inner(name, expr, None)
    }

    fn create_view_inner(
        &mut self,
        name: &str,
        expr: Expr,
        definition: Option<exptime_sql::ast::Query>,
    ) -> DbResult<()> {
        self.guard_reserved(name, "CREATE VIEW")?;
        let key = name.to_ascii_lowercase();
        if self.tables.contains_key(&key) || self.views.contains_key(&key) {
            return Err(DbError::Catalog(format!("`{name}` already exists")));
        }
        let expr = self.inline_views(&expr);
        let schema = expr.schema(&self.snapshot())?;
        let log_sql = match (&definition, &self.wal) {
            (Some(query), Some(_)) => Some(exptime_sql::unparse::statement_to_sql(
                &Statement::CreateView {
                    name: key.clone(),
                    materialized: false,
                    query: query.clone(),
                },
            )),
            _ => None,
        };
        self.views.insert(
            key,
            ViewEntry::Virtual {
                expr,
                schema,
                definition,
            },
        );
        if let Some(sql) = log_sql {
            self.wal_log_ddl(sql)?;
        }
        Ok(())
    }

    /// Drops a view.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Catalog`] for an unknown view.
    pub fn drop_view(&mut self, name: &str) -> DbResult<()> {
        self.guard_reserved(name, "DROP VIEW")?;
        let key = name.to_ascii_lowercase();
        self.views
            .remove(&key)
            .ok_or_else(|| DbError::Catalog(format!("unknown view `{name}`")))?;
        if self.wal.is_some() {
            let sql = exptime_sql::unparse::statement_to_sql(&Statement::DropView { name: key });
            self.wal_log_ddl(sql)?;
        }
        Ok(())
    }

    /// Reads a view at the current time. Materialised views serve from
    /// their local state when fresh (Theorems 1–3) and recompute otherwise;
    /// virtual views always evaluate.
    ///
    /// # Errors
    ///
    /// Returns catalog or evaluation errors.
    pub fn read_view(&mut self, name: &str) -> DbResult<Relation> {
        let key = name.to_ascii_lowercase();
        if !self.views.contains_key(&key) {
            return Err(DbError::Catalog(format!("unknown view `{name}`")));
        }
        let start = Instant::now();
        let mut root = self.tracer.span("query");
        root.attr("view", &key);
        if let Some(t) = self.clock.now().finite() {
            root.at(t);
        }
        let patches_before = self.patches_applied_total();
        let rel = self.read_view_inner(&key)?;
        root.attr("rows", rel.len());
        self.counters.queries.inc();
        let elapsed = start.elapsed();
        self.counters.query_ns.record_duration(elapsed);
        let now = self.clock.now();
        let entry = self.views.get(&key).expect("read above");
        self.profiler.record(QueryProfile {
            label: format!("view {key}"),
            rows_scanned: entry
                .expr()
                .base_names()
                .into_iter()
                .map(|n| {
                    self.tables
                        .get(&n.to_ascii_lowercase())
                        .map_or(0, |t| t.live_count(now) as u64)
                })
                .sum(),
            tuples_materialized: rel.len() as u64,
            change_points: expr_node_count(entry.expr()),
            patch_ops: self.patches_applied_total().saturating_sub(patches_before),
            allocations: self.alloc.take(),
            wall_ns: duration_ns(elapsed),
            operators: Vec::new(),
        });
        Ok(rel)
    }

    /// Sum of every `view.*.patches_applied` counter — the registry-wide
    /// patch-queue operation count, differenced per statement to bill
    /// Theorem 3 work to the query that triggered it.
    fn patches_applied_total(&self) -> u64 {
        self.metrics()
            .counters()
            .into_iter()
            .filter(|(name, _)| name.ends_with(".patches_applied"))
            .map(|(_, v)| v)
            .sum()
    }

    /// The read path proper, without query accounting (so callers that
    /// refresh a view as part of a larger query — e.g.
    /// [`Database::explain_analyze`] — don't double-count).
    fn read_view_inner(&mut self, key: &str) -> DbResult<Relation> {
        let now = self.clock.now();
        let snapshot = self.snapshot();
        // Views must see base-table *updates* (inserts / explicit
        // deletes / expiration-time changes), which the paper's
        // expiration-only maintenance model excludes: compare write
        // versions and force a refresh when they moved.
        let wanted = match self.views.get(key) {
            Some(ViewEntry::Materialized { view, .. }) => Some(self.current_versions(view.expr())),
            Some(ViewEntry::Virtual { .. }) => None,
            None => return Err(DbError::Catalog(format!("unknown view `{key}`"))),
        };
        match self.views.get_mut(key).expect("checked above") {
            ViewEntry::Virtual { expr, .. } => {
                Ok(eval(expr, &snapshot, now, &self.config.eval)?.rel)
            }
            ViewEntry::Materialized {
                view,
                base_versions,
                ..
            } => {
                let refresh_start = Instant::now();
                let mut sp = self.tracer.span("view.refresh");
                sp.attr("view", key);
                if let Some(t) = now.finite() {
                    sp.at(t);
                }
                let wanted = wanted.expect("materialised branch");
                if *base_versions != wanted {
                    view.force_refresh(&snapshot, now)?;
                    *base_versions = wanted;
                }
                let rel = view.read(&snapshot, now)?;
                if let Some(d) = view.last_decision() {
                    sp.attr("decision", d);
                }
                drop(sp);
                // Refresh-latency SLO: maintaining + serving this view.
                let ns = refresh_start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                self.monitor
                    .observe_refresh(key, ns, now.finite().unwrap_or(u64::MAX));
                Ok(rel)
            }
        }
    }

    /// The names of all views, in name order.
    #[must_use]
    pub fn view_names(&self) -> Vec<String> {
        self.views.keys().cloned().collect()
    }

    /// The schema of a table or view, for external planners (e.g. the
    /// CLI's `\plan`).
    ///
    /// # Errors
    ///
    /// Returns a plan error for unknown names.
    pub fn schema_of_relation(&self, name: &str) -> Result<Schema, SqlError> {
        DbSchemas(self).schema_of(name)
    }

    /// Statistics of a materialised view (recomputations, local reads, …).
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Catalog`] if the name is not a materialised view.
    pub fn view_stats(&self, name: &str) -> DbResult<exptime_core::materialize::ViewStats> {
        match self.views.get(&name.to_ascii_lowercase()) {
            Some(ViewEntry::Materialized { view, .. }) => Ok(view.stats()),
            _ => Err(DbError::Catalog(format!(
                "`{name}` is not a materialised view"
            ))),
        }
    }

    // ------------------------------------------------------------------
    // Static analysis (exptime-lint)
    // ------------------------------------------------------------------

    /// Runs the static expiration-soundness analyzer over a statement
    /// *without executing it*: `SELECT` queries and `CREATE [MATERIALIZED]
    /// VIEW` statements are planned (view names inlined) and checked
    /// against the paper's results. See DESIGN.md §11 for the code
    /// registry. Bare `SELECT`s are analysed as materialisation
    /// candidates, since that is the question the analyzer answers.
    ///
    /// # Errors
    ///
    /// Returns SQL parse/plan errors, and [`DbError::Catalog`] for
    /// statements that are neither `SELECT` nor `CREATE VIEW`.
    pub fn lint(&self, sql: &str) -> DbResult<exptime_lint::LintReport> {
        let stmt = exptime_sql::parse(sql)?;
        let (query, materialized) = match &stmt {
            Statement::Select(query) => (query, true),
            Statement::CreateView {
                query,
                materialized,
                ..
            } => (query, *materialized),
            _ => {
                return Err(DbError::Catalog(
                    "lint expects a SELECT or CREATE [MATERIALIZED] VIEW statement".into(),
                ))
            }
        };
        let expr = plan_query(query, &DbSchemas(self))?;
        let expr = self.inline_views(&expr);
        let opts = exptime_lint::AnalyzerOptions {
            materialized,
            patch_root_difference: self.config.eval.patch_root_difference,
            schrodinger: self.config.eval.eq12_validity,
        };
        Ok(exptime_lint::analyze(Some(query), &expr, &opts))
    }

    /// [`Database::lint`] rendered with source excerpts and caret lines —
    /// the output behind the CLI's `\lint` and `EXPLAIN LINT`.
    ///
    /// # Errors
    ///
    /// Same as [`Database::lint`].
    pub fn explain_lint(&self, sql: &str) -> DbResult<String> {
        let report = self.lint(sql)?;
        Ok(exptime_lint::render(&report, sql))
    }

    /// The diagnostics the analyzer recorded when a materialised view was
    /// created (including the operational `W101` SLO check).
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Catalog`] if the name is not a materialised view.
    pub fn view_diagnostics(&self, name: &str) -> DbResult<exptime_lint::LintReport> {
        match self.views.get(&name.to_ascii_lowercase()) {
            Some(ViewEntry::Materialized { diagnostics, .. }) => Ok(diagnostics.clone()),
            _ => Err(DbError::Catalog(format!(
                "`{name}` is not a materialised view"
            ))),
        }
    }

    /// Analyzer pass run at `CREATE MATERIALIZED VIEW` time: the static
    /// checks plus the operational `W101` — the view's first refresh falls
    /// due within the SLO's tolerated trigger lateness, so a legally late
    /// trigger would miss the refresh window. Every diagnostic becomes an
    /// obs event and bumps the `lint.diagnostics` counter.
    fn lint_materialization(
        &self,
        name: &str,
        definition: Option<&exptime_sql::ast::Query>,
        view: &MaterializedView,
    ) -> exptime_lint::LintReport {
        let opts = exptime_lint::AnalyzerOptions {
            materialized: true,
            patch_root_difference: self.config.eval.patch_root_difference,
            schrodinger: self.config.eval.eq12_validity,
        };
        let report = exptime_lint::analyze(definition, view.expr(), &opts);
        let mut diagnostics = report.diagnostics;
        if let (Some(texp), Some(now)) = (view.texp().finite(), self.clock.now().finite()) {
            let window = texp.saturating_sub(now);
            if window <= self.config.slo.max_trigger_lateness {
                diagnostics.push(
                    exptime_lint::Diagnostic::new(
                        exptime_lint::Code::W101,
                        exptime_lint::Severity::Warning,
                        format!(
                            "view refresh falls due in {window} tick(s), within the SLO's \
                             tolerated trigger lateness of {}; a legally late trigger misses \
                             the refresh window",
                            self.config.slo.max_trigger_lateness
                        ),
                        exptime_sql::span::Span::DUMMY,
                    )
                    .with_suggestion(
                        "tighten SloConfig::max_trigger_lateness, switch to eager removal, \
                         or give the view's inputs longer expiration times"
                            .to_string(),
                    ),
                );
            }
        }
        // W102: the view materialises over a base whose TTL slides — each
        // touch bumps the base's write version and forces a refresh.
        for base in view.expr().base_names() {
            let key = base.to_ascii_lowercase();
            if self
                .policies
                .get(&key)
                .is_some_and(|tp| tp.policy.sliding != Sliding::Absolute)
            {
                diagnostics.push(sliding_matview_diag(&key, name));
            }
        }
        let report = exptime_lint::LintReport::new(diagnostics);
        let at = self.clock.now().finite();
        for d in &report.diagnostics {
            self.obs.emit_with(at, || EventKind::LintDiagnostic {
                code: d.code.to_string(),
                severity: d.severity.to_string(),
                subject: name.to_string(),
            });
        }
        if !report.is_clean() {
            self.obs
                .registry()
                .counter("lint.diagnostics")
                .add(report.diagnostics.len() as u64);
        }
        report
    }

    // ------------------------------------------------------------------
    // Whole-database audit (exptime-audit, DESIGN.md §11.1)
    // ------------------------------------------------------------------

    /// Registers (or, with `None`, clears) the stale-serving endpoint a
    /// net server exposes over this database, so [`Database::audit`] can
    /// reason about degraded reads. Called by `NetServer::serve`.
    pub fn set_serving_config(&mut self, serving: Option<exptime_lint::StaleServing>) {
        self.serving = serving;
    }

    /// The registered stale-serving endpoint, if any.
    #[must_use]
    pub fn serving_config(&self) -> Option<&exptime_lint::StaleServing> {
        self.serving.as_ref()
    }

    /// The staleness bound the last audit registered for `subject`
    /// (a view or endpoint name), if still in force.
    #[must_use]
    pub fn staleness_bound(&self, subject: &str) -> Option<StalenessBound> {
        self.monitor.staleness_bound(subject)
    }

    /// Flattens the engine into the audit's dependency graph: every base
    /// table with its policy and observed live-row horizon, every view
    /// with the soundness of its inlined plan, the telemetry retention,
    /// and the stale-serving endpoint when one is registered.
    #[must_use]
    pub fn audit_graph(&self) -> exptime_lint::AuditGraph {
        let now_t = self.clock.now();
        let now = now_t.finite().unwrap_or(u64::MAX);
        let mut graph = exptime_lint::AuditGraph::empty(now);
        for (name, table) in &self.tables {
            let mut horizon = TickBound::ZERO;
            for (_, texp) in table.scan_at(now_t) {
                horizon = horizon.join(match texp.finite() {
                    Some(t) => TickBound::Finite(t.saturating_sub(now)),
                    None => TickBound::Unbounded,
                });
            }
            graph.tables.push(exptime_lint::TableNode {
                name: name.clone(),
                policy: self.policies.get(name).map(|tp| tp.policy),
                live_horizon: horizon,
            });
        }
        for (name, entry) in &self.views {
            let expr = self.inline_views(entry.expr());
            let bases = expr
                .base_names()
                .iter()
                .map(|b| b.to_ascii_lowercase())
                .collect();
            // Direct FROM-list references (tables *or* views) — the
            // view-on-view edges. API-built views carry no definition.
            let deps = entry.definition().map_or_else(Vec::new, |q| {
                std::iter::once(&q.body)
                    .chain(q.compound.iter().map(|(_, b)| b))
                    .flat_map(|b| b.from.iter())
                    .map(|n| n.to_ascii_lowercase())
                    .collect()
            });
            graph.views.push(exptime_lint::ViewNode {
                name: name.clone(),
                materialized: matches!(entry, ViewEntry::Materialized { .. }),
                soundness: expr.soundness(),
                bases,
                deps,
            });
        }
        if self.config.telemetry.enabled {
            graph.telemetry = Some(exptime_lint::TelemetryNode {
                retention: self.config.telemetry.retention,
                sample_every: self.config.telemetry.sample_every,
            });
        }
        graph.serving = self.serving.clone();
        graph
    }

    /// Runs the whole-database staleness audit (`EXPLAIN AUDIT` /
    /// `\audit`): derives a provable worst-case staleness bound per view
    /// and per serving endpoint by abstract interpretation over the
    /// dependency graph, and registers every derived bound with the SLO
    /// monitor as a `view.<subject>.staleness_bound` gauge. Bounds with
    /// `exact`/`proven` evidence are *enforced*: if a later observation
    /// ever exceeds one, the monitor emits an `audit_violation` event —
    /// that means an analyzer bug, clock misuse, or raw
    /// [`Database::table_mut`] writes that bypassed the policy layer.
    ///
    /// Bounds reflect the catalog at audit time; policy changes clear
    /// them (re-run the audit after `ALTER TABLE … SET TTL`).
    #[must_use]
    pub fn audit(&self) -> exptime_lint::AuditReport {
        let mut sp = self.tracer.span("audit");
        let at = self.clock.now().finite();
        if let Some(t) = at {
            sp.at(t);
        }
        let report = exptime_lint::audit(&self.audit_graph());
        // Views are observed by name; endpoints have no `ttx` gauge to
        // check, so their bounds are gauges only.
        let bounds = report
            .views
            .iter()
            .map(|v| {
                (
                    v.name.clone(),
                    StalenessBound {
                        bound: v.bound.finite(),
                        enforced: v.basis <= exptime_lint::BoundBasis::Proven,
                    },
                )
            })
            .chain(report.endpoints.iter().map(|e| {
                (
                    e.name.clone(),
                    StalenessBound {
                        bound: e.bound.finite(),
                        enforced: false,
                    },
                )
            }));
        self.monitor.set_staleness_bounds(bounds);
        for d in &report.lint.diagnostics {
            self.obs.emit_with(at, || EventKind::LintDiagnostic {
                code: d.code.to_string(),
                severity: d.severity.to_string(),
                subject: "audit".to_string(),
            });
        }
        if !report.lint.is_clean() {
            self.obs
                .registry()
                .counter("lint.diagnostics")
                .add(report.lint.diagnostics.len() as u64);
        }
        report
    }

    // ------------------------------------------------------------------
    // EXPLAIN ANALYZE
    // ------------------------------------------------------------------

    /// Plans and profiles a SQL `SELECT`: evaluates it for real, returning
    /// a per-operator breakdown (rows in/out, expired-filtered, elapsed)
    /// plus the refresh decisions of every materialised view the query
    /// touched. Counts as one query.
    ///
    /// # Errors
    ///
    /// Returns SQL errors, [`DbError::Catalog`] for non-SELECT statements,
    /// and evaluation errors.
    pub fn explain_analyze(&mut self, sql: &str) -> DbResult<Explain> {
        let stmt = {
            let _sp = self.tracer.span("parse");
            exptime_sql::parse(sql)?
        };
        let Statement::Select(query) = stmt else {
            return Err(DbError::Catalog(
                "EXPLAIN ANALYZE expects a SELECT statement".into(),
            ));
        };
        let expr = {
            let _sp = self.tracer.span("plan");
            plan_query(&query, &DbSchemas(self))?
        };
        self.explain_analyze_expr(&expr)
    }

    /// [`Database::explain_analyze`] over an algebra expression (view
    /// names are inlined, like [`Database::query_expr`]).
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn explain_analyze_expr(&mut self, expr: &Expr) -> DbResult<Explain> {
        let start = Instant::now();
        let mut root = self.tracer.span("query");
        let at = self.clock.now().finite();
        if let Some(t) = at {
            root.at(t);
        }
        let patches_before = self.patches_applied_total();
        // Refresh the materialised views the query references first, so
        // the report carries the decision an ordinary read would make
        // (Theorem 1/2/3 or recompute) at this instant.
        let mut decisions = Vec::new();
        for name in expr.base_names() {
            let key = name.to_ascii_lowercase();
            if matches!(self.views.get(&key), Some(ViewEntry::Materialized { .. })) {
                self.read_view_inner(&key)?;
                if let Some(ViewEntry::Materialized { view, .. }) = self.views.get(&key) {
                    if let Some(d) = view.last_decision() {
                        decisions.push((key, d));
                    }
                }
            }
        }
        let (expr, snapshot) = self.prepare_expr(expr);
        let mut eval_sp = self.tracer.span("eval");
        let (m, profile) = eval_profiled(&expr, &snapshot, self.clock.now(), &self.config.eval)?;
        // Graft the per-operator profile under the eval span: the span
        // tree's leaves are exactly the EXPLAIN ANALYZE operator rows.
        if eval_sp.is_recording() {
            let end_ns = self.tracer.now_ns();
            let elapsed = duration_ns(profile.elapsed);
            graft_profile(
                &self.tracer,
                eval_sp.id(),
                &profile,
                end_ns.saturating_sub(elapsed),
                end_ns,
                at,
            );
        }
        eval_sp.attr("rows_out", m.rel.len());
        eval_sp.attr("texp", m.texp);
        drop(eval_sp);
        root.attr("rows", m.rel.len());
        self.counters.queries.inc();
        let elapsed = start.elapsed();
        self.counters.query_ns.record_duration(elapsed);
        // EXPLAIN ANALYZE always contributes full per-operator detail:
        // the user explicitly asked for a profiled run.
        self.profiler.record(QueryProfile {
            label: expr.to_string(),
            rows_scanned: scanned_rows(&expr, &snapshot),
            tuples_materialized: m.rel.len() as u64,
            change_points: profile.node_count(),
            patch_ops: self.patches_applied_total().saturating_sub(patches_before),
            allocations: self.alloc.take(),
            wall_ns: duration_ns(elapsed),
            operators: flatten_profile(&profile),
        });
        Ok(Explain {
            profile,
            decisions,
            rows: m.rel.len(),
        })
    }

    // ------------------------------------------------------------------
    // Dump / restore
    // ------------------------------------------------------------------

    /// Serialises the database as a SQL script: every table's schema and
    /// live rows (with their absolute `EXPIRES AT` times), and every view
    /// that was created through SQL. The first line records the logical
    /// clock; [`Database::restore`] replays the script and advances the
    /// clock back to it.
    ///
    /// Not captured: expired-but-unvacuumed rows (semantically absent),
    /// triggers and constraints (runtime closures), API-created views
    /// (no SQL definition — emitted as comments), and engine statistics.
    #[must_use]
    pub fn dump_sql(&self) -> String {
        use exptime_sql::ast::{Expires, Literal, Statement as Stmt};
        use exptime_sql::unparse::statement_to_sql;

        let now = self.clock.now();
        let mut out = format!(
            "-- exptime dump at t={}\n",
            now.finite().expect("clock is finite")
        );
        for (name, table) in &self.tables {
            // TTL policies ride on the CREATE TABLE when expressible in
            // SQL; API-only shapes (maintenance windows, clamps without a
            // default TTL) are session-scoped and dumped as comments.
            let policy = self.ttl_policy(name).unwrap_or_default();
            let stmt = Stmt::CreateTable {
                name: name.clone(),
                columns: table
                    .schema()
                    .attributes()
                    .iter()
                    .map(|a| (a.name.clone(), a.ty))
                    .collect(),
                ttl: clause_of_policy(&policy),
            };
            out.push_str(&statement_to_sql(&stmt));
            out.push_str(";\n");
            if !policy.is_identity() && clause_of_policy(&policy).is_none() {
                out.push_str(&format!("-- ttl policy on {name} (API-only): {policy}\n"));
            }
            // Group live rows by expiration time: one INSERT per group.
            let mut by_texp: BTreeMap<Time, Vec<Vec<Literal>>> = BTreeMap::new();
            for (tuple, texp) in table.scan_at(now) {
                let row = tuple
                    .values()
                    .iter()
                    .map(|v| match v {
                        Value::Int(i) => Literal::Int(*i),
                        Value::Float(f) => Literal::Float(f.get()),
                        Value::Str(st) => Literal::Str(st.to_string()),
                        Value::Bool(b) => Literal::Bool(*b),
                    })
                    .collect();
                by_texp.entry(texp).or_default().push(row);
            }
            for (texp, rows) in by_texp {
                let stmt = Stmt::Insert {
                    table: name.clone(),
                    rows,
                    expires: match texp.finite() {
                        Some(t) => Expires::At(t),
                        None => Expires::Never,
                    },
                };
                out.push_str(&statement_to_sql(&stmt));
                out.push_str(";\n");
            }
        }
        for (name, entry) in &self.views {
            match entry.definition() {
                Some(query) => {
                    let stmt = Stmt::CreateView {
                        name: name.clone(),
                        materialized: matches!(entry, ViewEntry::Materialized { .. }),
                        query: query.clone(),
                    };
                    out.push_str(&statement_to_sql(&stmt));
                    out.push_str(";\n");
                }
                None => {
                    // API-created: no SQL definition to replay.
                    out.push_str(&format!(
                        "-- view {name} (no SQL definition): {}\n",
                        entry.expr()
                    ));
                }
            }
        }
        out
    }

    /// Rebuilds a database from a [`Database::dump_sql`] script, with the
    /// given configuration. The logical clock is restored from the
    /// header, so expiration behaviour continues exactly where the dump
    /// left off.
    ///
    /// # Errors
    ///
    /// Returns catalog/SQL errors from replaying the script.
    pub fn restore_with(dump: &str, config: DbConfig) -> DbResult<Self> {
        let mut db = Database::new(config);
        // The header is the first *meaningful* line: leading blank lines
        // and ordinary `--` comments (hand-edited or concatenated dumps)
        // are tolerated; any SQL before the header is not.
        let clock = dump
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .take_while(|l| l.starts_with("--"))
            .find_map(|l| l.strip_prefix("-- exptime dump at t="))
            .and_then(|n| n.trim().parse::<u64>().ok())
            .ok_or_else(|| DbError::Catalog("missing `-- exptime dump at t=N` header".into()))?;
        // A dump legitimately contains `_telemetry` DDL and rows (its
        // history is data like any other); replay them in system context.
        db.system_ctx = true;
        let replayed = db.execute_script(dump);
        db.system_ctx = false;
        replayed?;
        // Rows in the dump were live (texp > clock), so advancing fires
        // no spurious expirations.
        db.advance_to(Time::new(clock));
        db.triggers.clear_log();
        Ok(db)
    }

    /// [`Database::restore_with`] under the default configuration.
    ///
    /// # Errors
    ///
    /// As [`Database::restore_with`].
    pub fn restore(dump: &str) -> DbResult<Self> {
        Database::restore_with(dump, DbConfig::default())
    }

    // ------------------------------------------------------------------
    // SQL
    // ------------------------------------------------------------------

    /// Executes one SQL statement.
    ///
    /// # Errors
    ///
    /// Returns SQL, schema, constraint, or catalog errors.
    pub fn execute(&mut self, sql: &str) -> DbResult<ExecResult> {
        let stmt = {
            let _sp = self.tracer.span("parse");
            exptime_sql::parse(sql)?
        };
        self.execute_statement(stmt)
    }

    /// Executes a sequence of `;`-separated SQL statements, returning the
    /// last result.
    ///
    /// # Errors
    ///
    /// As [`Database::execute`]; execution stops at the first error.
    pub fn execute_script(&mut self, sql: &str) -> DbResult<ExecResult> {
        let stmts = exptime_sql::parse_many(sql)?;
        let mut last = ExecResult::Ok("empty script".into());
        for stmt in stmts {
            last = self.execute_statement(stmt)?;
        }
        Ok(last)
    }

    fn execute_statement(&mut self, stmt: Statement) -> DbResult<ExecResult> {
        let res = self.execute_statement_inner(stmt);
        // Statement boundaries are the sampler's second hook (clock
        // advances being the first): long stretches of DML between ticks
        // still leave history once a sample is due.
        self.maybe_sample_telemetry();
        res
    }

    fn execute_statement_inner(&mut self, stmt: Statement) -> DbResult<ExecResult> {
        let mut root = self.tracer.span("sql");
        if let Some(t) = self.clock.now().finite() {
            root.at(t);
        }
        root.attr("stmt", stmt.kind());
        match stmt {
            Statement::CreateTable { name, columns, ttl } => {
                let schema = Schema::new(
                    columns
                        .into_iter()
                        .map(|(n, t)| exptime_core::schema::Attribute::new(n, t))
                        .collect(),
                )?;
                self.create_table(&name, schema)?;
                if let Some(clause) = ttl {
                    self.set_ttl_policy(&name, policy_of_clause(&clause))?;
                }
                Ok(ExecResult::Ok(format!("created table {name}")))
            }
            Statement::DropTable { name } => {
                self.drop_table(&name)?;
                Ok(ExecResult::Ok(format!("dropped table {name}")))
            }
            Statement::CreateView {
                name,
                materialized,
                query,
            } => {
                let expr = plan_query(&query, &DbSchemas(self))?;
                if materialized {
                    self.create_materialized_view_inner(&name, expr, Some(query))?;
                } else {
                    self.create_view_inner(&name, expr, Some(query))?;
                }
                Ok(ExecResult::Ok(format!("created view {name}")))
            }
            Statement::DropView { name } => {
                self.drop_view(&name)?;
                Ok(ExecResult::Ok(format!("dropped view {name}")))
            }
            Statement::Insert {
                table,
                rows,
                expires,
            } => {
                let owned = self.wal_stmt_begin()?;
                let res = self.exec_insert(&table, rows, expires);
                self.wal_stmt_end(owned).and(res)
            }
            Statement::Delete { table, predicate } => {
                let owned = self.wal_stmt_begin()?;
                let res = self.exec_delete(&table, predicate.as_ref());
                self.wal_stmt_end(owned).and(res)
            }
            Statement::UpdateExpiration {
                table,
                expires,
                predicate,
            } => {
                let owned = self.wal_stmt_begin()?;
                let res = self.exec_update_expiration(&table, expires, predicate.as_ref());
                self.wal_stmt_end(owned).and(res)
            }
            Statement::AlterTtl { table, ttl } => {
                let policy = ttl.map_or_else(TtlPolicy::default, |c| policy_of_clause(&c));
                self.set_ttl_policy(&table, policy)?;
                Ok(ExecResult::Ok(format!(
                    "table {table}: {}",
                    self.ttl_policy(&table).unwrap_or_default()
                )))
            }
            Statement::ShowTtl { table } => self.exec_show_ttl(table.as_deref()),
            Statement::Audit => Ok(ExecResult::Ok(self.audit().render())),
            Statement::Select(query) => {
                let expr = {
                    let _sp = self.tracer.span("plan");
                    plan_query(&query, &DbSchemas(self))?
                };
                let m = self.query_expr(&expr)?;
                let rel = apply_presentation(m.rel, &query)?;
                // Sliding-on-access policies see the read *after* the
                // result is computed: this query observes the pre-touch
                // state; only future visibility is extended.
                self.apply_access_touches(&query)?;
                Ok(ExecResult::Rows(rel))
            }
        }
    }

    fn exec_insert(
        &mut self,
        table: &str,
        rows: Vec<Vec<exptime_sql::ast::Literal>>,
        expires: Expires,
    ) -> DbResult<ExecResult> {
        self.guard_reserved(table, "INSERT")?;
        // No `EXPIRES` clause (or an explicit `EXPIRES DEFAULT`) defers
        // the expiration to the table's TTL policy.
        let requested = match expires {
            Expires::Default => None,
            e => Some(self.resolve_expires(e)),
        };
        let schema = self.table(table)?.schema().clone();
        let mut n = 0;
        for row in rows {
            let tuple = coerce_row(&row, &schema)?;
            self.insert_inner(table, tuple, requested)?;
            n += 1;
        }
        Ok(ExecResult::Affected(n))
    }

    fn exec_delete(
        &mut self,
        table: &str,
        predicate: Option<&exptime_sql::ast::Cond>,
    ) -> DbResult<ExecResult> {
        self.guard_reserved(table, "DELETE")?;
        let now = self.clock.now();
        let pred = match predicate {
            Some(c) => Some(plan_table_cond(c, table, &DbSchemas(self))?),
            None => None,
        };
        let key = table.to_ascii_lowercase();
        let victims: Vec<Tuple> = self
            .table(table)?
            .scan_at(now)
            .filter(|(tu, _)| pred.as_ref().map_or(true, |p| p.eval(tu)))
            .map(|(tu, _)| tu.clone())
            .collect();
        let mut n = 0;
        for v in &victims {
            let t = self.tables.get_mut(&key).expect("resolved above");
            if t.delete(v).is_some() {
                n += 1;
                self.wal_log_op(|txn| WalRecord::Delete {
                    txn,
                    table: key.clone(),
                    values: v.values().to_vec(),
                })?;
            }
        }
        self.counters.deletes.add(n as u64);
        if n > 0 {
            self.bump_version(&key);
        }
        Ok(ExecResult::Affected(n))
    }

    fn exec_update_expiration(
        &mut self,
        table: &str,
        expires: Expires,
        predicate: Option<&exptime_sql::ast::Cond>,
    ) -> DbResult<ExecResult> {
        self.guard_reserved(table, "UPDATE")?;
        let now = self.clock.now();
        let pred = match predicate {
            Some(c) => Some(plan_table_cond(c, table, &DbSchemas(self))?),
            None => None,
        };
        let key = table.to_ascii_lowercase();
        // The policy decides the new `texp` per row: `SET EXPIRES DEFAULT`
        // is a *modify-touch* (sliding policies re-arm, absolute ones
        // leave the row alone); an explicit expiration is a write request
        // the policy may still clamp. System context (restore replay)
        // bypasses the policy as in [`Database::insert_inner`].
        let policy = (!self.system_ctx)
            .then(|| self.policies.get(&key).map(|tp| tp.policy))
            .flatten()
            .unwrap_or_default();
        let requested = match expires {
            Expires::Default => None,
            e => Some(self.resolve_expires(e)),
        };
        let targets: Vec<(Tuple, Time)> = self
            .table(table)?
            .scan_at(now)
            .filter(|(tu, _)| pred.as_ref().map_or(true, |p| p.eval(tu)))
            .map(|(tu, texp)| (tu.clone(), texp))
            .collect();
        let mut n = 0;
        for (tu, current) in &targets {
            let fx = match requested {
                None => policy.effective_texp(
                    PolicyEvent::Touch {
                        kind: TouchKind::Modify,
                        current: *current,
                    },
                    now,
                ),
                Some(req) => policy.effective_texp(
                    PolicyEvent::Write {
                        requested: Some(req),
                    },
                    now,
                ),
            };
            if requested.is_none() && fx.texp == *current {
                // Touch under a non-sliding policy: nothing to re-arm.
                continue;
            }
            let t = self.tables.get_mut(&key).expect("resolved above");
            if t.update_texp(tu, fx.texp, now)? {
                n += 1;
                if fx.clamped || fx.slid {
                    self.note_policy_effect(&key, fx.clamped, fx.slid);
                }
                self.wal_log_op(|txn| WalRecord::UpdateTexp {
                    txn,
                    table: key.clone(),
                    values: tu.values().to_vec(),
                    texp: fx.texp,
                })?;
            }
        }
        if n > 0 {
            self.bump_version(&key);
        }
        Ok(ExecResult::Affected(n))
    }

    fn resolve_expires(&self, e: Expires) -> Time {
        match e {
            Expires::Never => Time::INFINITY,
            Expires::At(t) => Time::new(t),
            Expires::In(d) => self.clock.now() + d,
            // Only reached with no policy in play (callers route Default
            // through the policy first): "default" means "never".
            Expires::Default => Time::INFINITY,
        }
    }

    // ------------------------------------------------------------------
    // Telemetry plane (DESIGN.md §8.5)
    // ------------------------------------------------------------------

    /// Rejects user writes to the reserved `_telemetry` schema. Stands
    /// down in system context (recovery replay, dump restore, and the
    /// sampler itself); reads are always allowed.
    fn guard_reserved(&self, name: &str, action: &str) -> DbResult<()> {
        if !self.system_ctx && crate::telemetry::is_reserved(name) {
            return Err(DbError::Catalog(format!(
                "{action} on `{name}`: the `_telemetry` schema is reserved for the \
                 engine's own telemetry history (read it with SELECT)"
            )));
        }
        Ok(())
    }

    /// Sampler status: configuration, samples taken by this process, and
    /// the live row counts of the `_telemetry` history tables (which
    /// shrink by expiration alone as retention elapses).
    #[must_use]
    pub fn telemetry_status(&self) -> TelemetryStatus {
        let now = self.clock.now();
        let live = |name: &str| {
            self.tables
                .get(name)
                .map_or(0, |t| t.live_count(now) as u64)
        };
        TelemetryStatus {
            enabled: self.config.telemetry.enabled,
            sample_every: self.config.telemetry.sample_every,
            retention: self.config.telemetry.retention,
            samples: self.telemetry_samples,
            last_sample_at: self.telemetry_last_sample,
            metrics_rows: live(TELEMETRY_METRICS),
            health_rows: live(TELEMETRY_HEALTH),
        }
    }

    /// Samples metrics/health into `_telemetry.*` when one is due. Never
    /// fails the calling statement: sampling errors increment
    /// `telemetry.sample_errors` and are swallowed.
    fn maybe_sample_telemetry(&mut self) {
        if !self.config.telemetry.enabled || self.system_ctx {
            return;
        }
        let Some(now) = self.clock.now().finite() else {
            return;
        };
        let every = self.config.telemetry.sample_every.max(1);
        let due = self
            .telemetry_last_sample
            .map_or(true, |last| now.saturating_sub(last) >= every);
        if !due {
            return;
        }
        self.telemetry_last_sample = Some(now);
        self.system_ctx = true;
        let res = self.sample_telemetry(now);
        self.system_ctx = false;
        match res {
            Ok(rows) => {
                self.telemetry_samples += 1;
                let retention = self.config.telemetry.retention;
                self.metrics().counter("telemetry.samples").inc();
                self.metrics().counter("telemetry.rows").add(rows);
                self.metrics()
                    .gauge("telemetry.last_sample_at")
                    .set(gauge_i64(now));
                self.obs
                    .emit_with(Some(now), || EventKind::TelemetrySample {
                        at: now,
                        rows,
                        retention,
                    });
            }
            Err(_) => {
                self.metrics().counter("telemetry.sample_errors").inc();
            }
        }
    }

    /// One sample: ensure the `_telemetry` tables exist, then insert the
    /// registry snapshot, the SLO monitor's view, and the horizon
    /// forecast as rows with `texp = now + retention`. Every write goes
    /// through the ordinary insert path — one WAL statement transaction
    /// for the whole sample, group-committed like user data — and
    /// retention is nothing but the rows' expiration times: no deletion
    /// code exists anywhere in this path.
    fn sample_telemetry(&mut self, now: u64) -> DbResult<u64> {
        use exptime_core::schema::Attribute;
        let retention = self.config.telemetry.retention.max(1);
        let texp = Time::new(now.saturating_add(retention));
        if !self.tables.contains_key(TELEMETRY_METRICS) {
            self.create_table(
                TELEMETRY_METRICS,
                Schema::new(vec![
                    Attribute::new("ts", ValueType::Int),
                    Attribute::new("kind", ValueType::Str),
                    Attribute::new("name", ValueType::Str),
                    Attribute::new("value", ValueType::Float),
                ])?,
            )?;
        }
        if !self.tables.contains_key(TELEMETRY_HEALTH) {
            self.create_table(
                TELEMETRY_HEALTH,
                Schema::new(vec![
                    Attribute::new("ts", ValueType::Int),
                    Attribute::new("status", ValueType::Str),
                    Attribute::new("views", ValueType::Int),
                    Attribute::new("stale", ValueType::Int),
                    Attribute::new("breaches", ValueType::Int),
                    Attribute::new("live", ValueType::Int),
                    Attribute::new("expiring", ValueType::Int),
                    Attribute::new("eternal", ValueType::Int),
                    Attribute::new("due64", ValueType::Int),
                    Attribute::new("storms", ValueType::Int),
                ])?,
            )?;
        }
        let ts = gauge_i64(now);
        let counters = self.metrics().counters();
        let gauges = self.metrics().gauges();
        let histograms = self.metrics().histograms();
        let health = self.health();
        let fc = self.forecast();
        let owned = self.wal_stmt_begin()?;
        let mut rows = 0u64;
        let res = (|| -> DbResult<u64> {
            let mut metric =
                |db: &mut Self, kind: &str, name: String, value: f64| -> DbResult<()> {
                    let tuple = Tuple::new(vec![
                        Value::Int(ts),
                        Value::from(kind),
                        Value::from(name),
                        Value::from(value),
                    ]);
                    db.insert(TELEMETRY_METRICS, tuple, texp)?;
                    rows += 1;
                    Ok(())
                };
            for (name, v) in counters {
                metric(self, "counter", name, v as f64)?;
            }
            for (name, v) in gauges {
                metric(self, "gauge", name, v as f64)?;
            }
            for (name, h) in histograms {
                metric(self, "histogram", format!("{name}.count"), h.count as f64)?;
                metric(self, "histogram", format!("{name}.p50"), h.p50())?;
                metric(self, "histogram", format!("{name}.p99"), h.p99())?;
            }
            let stale = health
                .views
                .iter()
                .filter(|v| v.ttx.is_some_and(|t| t <= 0))
                .count();
            let health_row = Tuple::new(vec![
                Value::Int(ts),
                Value::from(health.status.to_string()),
                Value::Int(gauge_i64(health.views.len() as u64)),
                Value::Int(gauge_i64(stale as u64)),
                Value::Int(gauge_i64(health.total_breaches())),
                Value::Int(gauge_i64(fc.horizon.total())),
                Value::Int(gauge_i64(fc.horizon.expiring())),
                Value::Int(gauge_i64(fc.horizon.eternal())),
                Value::Int(gauge_i64(fc.horizon.due_within(64))),
                Value::Int(gauge_i64(fc.storms.len() as u64)),
            ]);
            self.insert(TELEMETRY_HEALTH, health_row, texp)?;
            rows += 1;
            Ok(rows)
        })();
        self.wal_stmt_end(owned).and(res)
    }
}

/// Applies the presentation-level `ORDER BY` / `LIMIT` clauses to a final
/// result. The expiration-time algebra is set-based, so ordering is not an
/// operator; it reorders (and truncates) the result relation's iteration
/// order. `ORDER BY` references *output* column names.
fn apply_presentation(rel: Relation, query: &exptime_sql::ast::Query) -> Result<Relation, DbError> {
    if query.order_by.is_empty() && query.limit.is_none() {
        return Ok(rel);
    }
    let schema = rel.schema().clone();
    let mut keys = Vec::with_capacity(query.order_by.len());
    for (col, desc) in &query.order_by {
        if col.table.is_some() {
            return Err(DbError::Sql(SqlError::Plan {
                message: format!("ORDER BY uses output column names; `{col}` is qualified"),
                span: col.span,
            }));
        }
        let pos = schema.position(&col.column).ok_or_else(|| {
            DbError::Sql(SqlError::Plan {
                message: format!("ORDER BY column `{col}` is not in the result"),
                span: col.span,
            })
        })?;
        keys.push((pos, *desc));
    }
    let mut rows: Vec<(Tuple, Time)> = rel.iter().map(|(t, e)| (t.clone(), e)).collect();
    rows.sort_by(|(a, _), (b, _)| {
        for &(pos, desc) in &keys {
            let ord = a.attr(pos).total_cmp(b.attr(pos));
            if !ord.is_eq() {
                return if desc { ord.reverse() } else { ord };
            }
        }
        std::cmp::Ordering::Equal
    });
    if let Some(n) = query.limit {
        rows.truncate(n);
    }
    let mut out = Relation::new(schema);
    for (t, e) in rows {
        out.insert(t, e).map_err(DbError::Core)?;
    }
    Ok(out)
}

/// A [`std::time::Duration`] as saturating nanoseconds.
fn duration_ns(d: std::time::Duration) -> u64 {
    d.as_nanos().min(u128::from(u64::MAX)) as u64
}

/// A `u64` metric value as a saturating gauge reading.
fn gauge_i64(v: u64) -> i64 {
    i64::try_from(v).unwrap_or(i64::MAX)
}

/// Number of operator nodes in an expression. Each node computes its
/// result's expiration time from its inputs' (Section 3 of the paper),
/// so this is the statement's change-point count.
fn expr_node_count(expr: &Expr) -> u64 {
    match expr {
        Expr::Base(_) => 1,
        Expr::Select { input, .. }
        | Expr::Project { input, .. }
        | Expr::Aggregate { input, .. } => 1 + expr_node_count(input),
        Expr::Product { left, right }
        | Expr::Union { left, right }
        | Expr::Join { left, right, .. }
        | Expr::Intersect { left, right }
        | Expr::Difference { left, right } => 1 + expr_node_count(left) + expr_node_count(right),
    }
}

/// Live rows the expression reads at its base relations, from the
/// snapshot it was evaluated against.
fn scanned_rows(expr: &Expr, snapshot: &Catalog) -> u64 {
    expr.base_names()
        .into_iter()
        .map(|n| snapshot.get(&n).map_or(0, |r| r.len() as u64))
        .sum()
}

/// Flattens an executed [`PlanProfile`] tree into per-operator costs
/// (self time, excluding children), pre-order.
fn flatten_profile(profile: &PlanProfile) -> Vec<OperatorCost> {
    fn walk(p: &PlanProfile, out: &mut Vec<OperatorCost>) {
        out.push(OperatorCost {
            label: p.label.clone(),
            rows_out: p.rows_out,
            self_ns: duration_ns(p.self_elapsed()),
        });
        for c in &p.children {
            walk(c, out);
        }
    }
    let mut out = Vec::new();
    walk(profile, &mut out);
    out
}

/// Records a [`PlanProfile`] tree as spans under `parent`, so the span
/// tree's leaves mirror the EXPLAIN ANALYZE operator rows. The root is
/// pinned to `[start_ns, end_ns]`; children are laid out sequentially
/// from the parent's start, each clamped to end within the parent —
/// profile timings are inclusive of children, so containment (the
/// invariant the span property tests check) is preserved exactly.
fn graft_profile(
    tracer: &Tracer,
    parent: u64,
    profile: &PlanProfile,
    start_ns: u64,
    end_ns: u64,
    at: Option<u64>,
) {
    let attrs = vec![
        ("rows_out".to_string(), profile.rows_out.to_string()),
        (
            "expired_filtered".to_string(),
            profile.expired_filtered.to_string(),
        ),
        ("texp".to_string(), profile.texp.to_string()),
    ];
    let id = tracer.record_child(Some(parent), &profile.label, start_ns, end_ns, at, attrs);
    if id == 0 {
        return;
    }
    let mut cursor = start_ns;
    for child in &profile.children {
        let cend = cursor
            .saturating_add(duration_ns(child.elapsed))
            .min(end_ns);
        graft_profile(tracer, id, child, cursor, cend, at);
        cursor = cend;
    }
}

/// Coerces SQL literals to a schema (integer literals fill float columns).
fn coerce_row(row: &[exptime_sql::ast::Literal], schema: &Schema) -> Result<Tuple, DbError> {
    let mut values = Vec::with_capacity(row.len());
    for (i, lit) in row.iter().enumerate() {
        let v = lit.to_value();
        let v = match (schema.attributes().get(i).map(|a| a.ty), &v) {
            (Some(ValueType::Float), Value::Int(x)) => Value::float(*x as f64),
            _ => v,
        };
        values.push(v);
    }
    let tuple = Tuple::new(values);
    schema.check(&tuple).map_err(DbError::Core)?;
    Ok(tuple)
}

/// The policy a `TTL …` clause declares (clauses cannot express
/// maintenance windows — those are API-only).
fn policy_of_clause(clause: &TtlClause) -> TtlPolicy {
    TtlPolicy {
        ttl: Some(clause.ttl),
        sliding: clause.sliding,
        clamp: clause.clamp,
        maintenance: None,
    }
}

/// The `TTL …` clause spelling a policy, when it has one: a default TTL
/// is the clause's anchor, so TTL-less shapes (clamp-only policies,
/// maintenance windows) have no SQL spelling and return `None`.
fn clause_of_policy(policy: &TtlPolicy) -> Option<TtlClause> {
    if policy.maintenance.is_some() {
        return None;
    }
    let ttl = policy.ttl.filter(|&d| d > 0)?;
    Some(TtlClause {
        ttl,
        sliding: policy.sliding,
        clamp: policy.clamp,
        span: exptime_sql::span::Span::DUMMY,
    })
}

/// `ALTER TABLE … SET TTL …` DDL for a non-identity policy with a SQL
/// spelling; `None` otherwise.
fn alter_ttl_sql(table: &str, policy: &TtlPolicy) -> Option<String> {
    let clause = clause_of_policy(policy)?;
    Some(exptime_sql::unparse::statement_to_sql(
        &Statement::AlterTtl {
            table: table.to_string(),
            ttl: Some(clause),
        },
    ))
}

/// The `W102` diagnostic: a materialised view over a base table whose
/// TTL slides. Emitted both when the view is created over an already-
/// sliding base and when `ALTER TABLE … SET TTL … SLIDING` arrives
/// under an existing view.
fn sliding_matview_diag(table: &str, view: &str) -> exptime_lint::Diagnostic {
    exptime_lint::Diagnostic::new(
        exptime_lint::Code::W102,
        exptime_lint::Severity::Warning,
        format!(
            "materialised view `{view}` reads `{table}`, whose TTL policy slides: \
             every touch rewrites a base `texp`, so the monotone-expiration \
             assumption behind Theorems 1–3 no longer holds and each touched \
             read forces a view refresh"
        ),
        exptime_sql::span::Span::DUMMY,
    )
    .with_suggestion(format!(
        "make `{table}`'s TTL absolute, or use a virtual (non-materialised) view"
    ))
}

/// Schema provider over the database's tables and views.
struct DbSchemas<'a>(&'a Database);

impl SchemaProvider for DbSchemas<'_> {
    fn schema_of(&self, name: &str) -> Result<Schema, SqlError> {
        let key = name.to_ascii_lowercase();
        if let Some(t) = self.0.tables.get(&key) {
            return Ok(t.schema().clone());
        }
        if let Some(v) = self.0.views.get(&key) {
            return Ok(v.schema().clone());
        }
        Err(SqlError::plan(format!("unknown relation `{name}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exptime_core::tuple;

    fn t(v: u64) -> Time {
        Time::new(v)
    }

    /// Builds the paper's Figure 1 database through SQL.
    fn figure1_db() -> Database {
        let mut db = Database::default();
        db.execute_script(
            "CREATE TABLE pol (uid INT, deg INT);
             CREATE TABLE el (uid INT, deg INT);
             INSERT INTO pol VALUES (1, 25) EXPIRES AT 10;
             INSERT INTO pol VALUES (2, 25) EXPIRES AT 15;
             INSERT INTO pol VALUES (3, 35) EXPIRES AT 10;
             INSERT INTO el VALUES (1, 75) EXPIRES AT 5;
             INSERT INTO el VALUES (2, 85) EXPIRES AT 3;
             INSERT INTO el VALUES (4, 90) EXPIRES AT 2;",
        )
        .unwrap();
        db
    }

    #[test]
    fn sql_roundtrip_figure_2_join() {
        let mut db = figure1_db();
        let q = "SELECT * FROM pol JOIN el ON pol.uid = el.uid";
        let r = db.execute(q).unwrap();
        assert_eq!(r.rows().unwrap().len(), 2);
        db.tick(3);
        let r = db.execute(q).unwrap();
        assert_eq!(r.rows().unwrap().len(), 1, "Figure 2(f)");
        db.tick(2);
        let r = db.execute(q).unwrap();
        assert!(r.rows().unwrap().is_empty(), "Figure 2(g)");
    }

    #[test]
    fn audit_registers_bounds_and_policy_changes_clear_them() {
        let mut db = Database::default();
        db.execute_script(
            "CREATE TABLE sessions (sid INT, uid INT) TTL 30 SLIDING ON ACCESS;
             CREATE TABLE hits (sid INT) TTL 50 CLAMP 5..60;
             CREATE MATERIALIZED VIEW per_user AS
                 SELECT uid, COUNT(*) FROM sessions GROUP BY uid;
             CREATE MATERIALIZED VIEW hit_count AS SELECT COUNT(*) FROM hits;",
        )
        .unwrap();
        let report = db.audit();
        let per_user = report.view("per_user").unwrap();
        assert_eq!(per_user.bound, TickBound::Finite(30));
        assert_eq!(per_user.basis, exptime_lint::BoundBasis::Declared);
        let hit_count = report.view("hit_count").unwrap();
        assert_eq!(hit_count.bound, TickBound::Finite(60));
        assert_eq!(hit_count.basis, exptime_lint::BoundBasis::Proven);
        // TTL 50 sits inside CLAMP 5..60 — the dead-clamp warning.
        assert!(report.lint.codes().contains(&exptime_lint::Code::W105));

        // Bounds land in the monitor: gauges for both, enforcement only
        // for the proven one.
        assert_eq!(
            db.metrics().gauge_value("view.per_user.staleness_bound"),
            30
        );
        assert_eq!(
            db.metrics().gauge_value("view.hit_count.staleness_bound"),
            60
        );
        assert!(!db.staleness_bound("per_user").unwrap().enforced);
        assert!(db.staleness_bound("hit_count").unwrap().enforced);

        // Normal operation never trips an enforced bound.
        db.execute("INSERT INTO hits VALUES (1)").unwrap();
        db.execute("INSERT INTO hits VALUES (2) EXPIRES AT 500")
            .unwrap(); // clamped to now + 60
        db.tick(7);
        let _ = db.execute("SELECT * FROM hit_count").unwrap();
        db.tick(7);
        assert_eq!(db.health().audit_violations, 0);

        // A policy change invalidates the proof: bounds clear until the
        // next audit re-derives them.
        db.execute("ALTER TABLE hits SET TTL 50").unwrap();
        assert!(db.staleness_bound("hit_count").is_none());
        let report = db.audit();
        // Without the clamp the declared TTL is the evidence again.
        assert_eq!(
            report.view("hit_count").unwrap().basis,
            exptime_lint::BoundBasis::Declared
        );
    }

    #[test]
    fn explain_audit_statement_renders_the_report() {
        let mut db = figure1_db();
        let r = db.execute("EXPLAIN AUDIT").unwrap();
        let ExecResult::Ok(text) = r else {
            panic!("EXPLAIN AUDIT returns rendered text, got {r:?}")
        };
        assert!(text.contains("exptime audit @ t=0"), "{text}");
        assert!(
            text.contains("pol: policy none; row lifetime <= 15 ticks (snapshot)"),
            "{text}"
        );
        assert!(text.contains("views:\n  (none)"), "{text}");
    }

    #[test]
    fn forecast_conserves_live_count_and_refreshes_gauges() {
        let mut db = figure1_db();
        let fc = db.forecast();
        assert_eq!(fc.now, 0);
        assert_eq!(fc.horizon.total(), 6, "all six Figure 1 rows are live");
        let per_table: u64 = fc.tables.iter().map(|(_, f)| f.total()).sum();
        assert_eq!(per_table, 6, "merged horizon equals the table sum");
        assert!(fc.storms.is_empty(), "default threshold stays quiet");

        db.tick(3); // el loses texp=2 and texp=3
        assert_eq!(db.metrics().gauge_value("forecast.live"), 4);
        assert_eq!(db.metrics().gauge_value("forecast.expiring"), 4);
        assert_eq!(db.metrics().gauge_value("forecast.eternal"), 0);
        assert_eq!(db.metrics().gauge_value("storage.pol.forecast_expiring"), 3);
        assert_eq!(db.metrics().gauge_value("storage.el.forecast_expiring"), 1);
        let rendered = db.forecast().render(20);
        assert!(rendered.contains("4 expiring"), "{rendered}");
        assert!(rendered.contains("table pol: 3 expiring"), "{rendered}");
    }

    #[test]
    fn storm_warnings_fire_on_dense_buckets_and_views_report_deadlines() {
        let mut db = Database::new(DbConfig {
            forecast: ForecastConfig { storm_threshold: 2 },
            ..DbConfig::default()
        });
        let ring = db.obs().install_ring(64);
        db.execute("CREATE TABLE s (k INT)").unwrap();
        // Five rows one tick out: bucket 0 (width 1) predicts 5/tick > 2.
        for k in 0..5 {
            db.execute(&format!("INSERT INTO s VALUES ({k}) EXPIRES AT 2"))
                .unwrap();
        }
        // Monotonic views never expire (texp = ∞); a difference view has
        // a finite texp — the reappearance time of a hidden tuple that
        // outlives its blocker.
        db.execute("CREATE TABLE base (k INT)").unwrap();
        db.execute("CREATE TABLE ex (k INT)").unwrap();
        db.execute("INSERT INTO base VALUES (0) EXPIRES AT 20")
            .unwrap();
        db.execute("INSERT INTO ex VALUES (0) EXPIRES AT 3")
            .unwrap();
        db.create_materialized_view("v", Expr::base("base").difference(Expr::base("ex")))
            .unwrap();
        db.tick(1);
        let storms: Vec<_> = ring
            .recent(64)
            .into_iter()
            .filter(|e| e.kind.tag() == "storm_warning")
            .collect();
        assert_eq!(storms.len(), 1, "one dense bucket, one warning");
        let EventKind::StormWarning {
            lo,
            hi,
            predicted,
            threshold,
            at,
        } = storms[0].kind
        else {
            unreachable!()
        };
        assert_eq!((lo, hi, predicted, threshold, at), (1, 1, 5, 2, 1));
        // The view's refresh deadline is its texp distance: the hidden
        // tuple reappears at 3, so two ticks out from t=1.
        assert_eq!(db.metrics().gauge_value("view.v.refresh_due_in"), 2);
        assert_eq!(db.forecast().views, vec![("v".to_string(), Some(2))]);
        // Past the dense expirations the storm clears; only the
        // long-lived `base` row remains on the horizon.
        db.tick(5);
        assert_eq!(db.metrics().gauge_value("forecast.live"), 1);
        assert_eq!(db.metrics().gauge_value("forecast.storm_buckets"), 0);
    }

    #[test]
    fn statement_profiles_feed_the_sampled_aggregate() {
        let mut db = figure1_db();
        db.execute("SELECT * FROM pol").unwrap();
        db.execute("SELECT * FROM pol JOIN el ON pol.uid = el.uid")
            .unwrap();
        let s = db.profile_stats();
        assert_eq!(s.statements, 2);
        assert!(s.sampled >= 1, "the first statement is always sampled");
        assert_eq!(s.rows_scanned, 9, "3 (pol) + 3+3 (join inputs)");
        assert!(s.allocations > 0, "snapshot clones are billed");
        assert!(s.change_points >= 2, "every operator is a change-point");
        let last = s.last.as_ref().expect("a sampled profile is retained");
        assert!(
            !last.operators.is_empty(),
            "sampled statements carry per-operator detail"
        );
        assert!(
            s.by_operator.keys().any(|k| k.contains("Base")),
            "{:?}",
            s.by_operator.keys().collect::<Vec<_>>()
        );
        let rendered = s.render();
        assert!(rendered.contains("statements=2"), "{rendered}");
    }

    #[test]
    fn explain_analyze_and_view_reads_bill_the_profiler() {
        let mut db = figure1_db();
        db.execute("CREATE MATERIALIZED VIEW deg25 AS SELECT uid FROM pol WHERE deg = 25")
            .unwrap();
        let before = db.profile_stats().statements;
        db.read_view("deg25").unwrap();
        db.explain_analyze("SELECT * FROM pol").unwrap();
        let s = db.profile_stats();
        assert_eq!(s.statements, before + 2);
        let last = s.last.as_ref().expect("explain analyze is always sampled");
        assert!(last.label.contains("Pol") || last.label.contains("pol"));
        assert!(!last.operators.is_empty());
    }

    #[test]
    fn expiration_is_transparent_to_queries() {
        let mut db = figure1_db();
        db.tick(10);
        let r = db.execute("SELECT deg FROM pol").unwrap();
        let rows = r.rows().unwrap();
        assert_eq!(rows.len(), 1, "Figure 2(d): only ⟨25⟩ remains");
        assert!(rows.contains(&tuple![25]));
    }

    #[test]
    fn eager_triggers_fire_at_exact_times() {
        let mut db = figure1_db();
        db.tick(20);
        let log = db.triggers().log().to_vec();
        assert_eq!(log.len(), 6, "all six rows expired");
        for e in &log {
            assert_eq!(e.texp, e.fired_at, "eager: fired exactly at texp");
        }
        // Events are in time order.
        assert!(log.windows(2).all(|w| w[0].fired_at <= w[1].fired_at));
        assert_eq!(db.stats().expired, 6);
    }

    #[test]
    fn lazy_triggers_fire_at_vacuum_time() {
        let mut db = Database::new(DbConfig {
            removal: Removal::Lazy { vacuum_every: 10 },
            ..DbConfig::default()
        });
        db.execute("CREATE TABLE s (k INT)").unwrap();
        db.execute("INSERT INTO s VALUES (1) EXPIRES AT 3").unwrap();
        db.tick(5); // no vacuum yet
        assert_eq!(db.triggers().log().len(), 0);
        // Reads still exclude the expired row.
        assert!(db
            .execute("SELECT * FROM s")
            .unwrap()
            .rows()
            .unwrap()
            .is_empty());
        assert_eq!(db.table("s").unwrap().len(), 1, "physically present");
        db.tick(5); // vacuum at 10
        let log = db.triggers().log();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].texp, t(3));
        assert_eq!(log[0].fired_at, t(10), "lazy: fired late");
        assert_eq!(db.stats().vacuums, 1);
    }

    #[test]
    fn trigger_callbacks_run() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let mut db = figure1_db();
        let n = Arc::new(AtomicUsize::new(0));
        let c = n.clone();
        db.on_expire(
            "pol",
            "renew_profile",
            Box::new(move |_| {
                c.fetch_add(1, Ordering::SeqCst);
            }),
        );
        db.tick(20);
        assert_eq!(n.load(Ordering::SeqCst), 3, "three pol rows expired");
    }

    #[test]
    fn constraints_reject_inserts() {
        let mut db = Database::default();
        db.execute("CREATE TABLE s (k INT)").unwrap();
        db.add_constraint(
            "s",
            Constraint::MaxLifetime {
                name: "ttl".into(),
                ticks: 100,
            },
        )
        .unwrap();
        assert!(db.execute("INSERT INTO s VALUES (1) EXPIRES AT 50").is_ok());
        assert!(matches!(
            db.execute("INSERT INTO s VALUES (2) EXPIRES AT 200"),
            Err(DbError::Constraint(_))
        ));
        assert!(matches!(
            db.execute("INSERT INTO s VALUES (3) EXPIRES NEVER"),
            Err(DbError::Constraint(_))
        ));
        assert!(db
            .add_constraint(
                "missing",
                Constraint::MaxLifetime {
                    name: "x".into(),
                    ticks: 1
                }
            )
            .is_err());
    }

    #[test]
    fn materialized_view_maintains_itself() {
        let mut db = figure1_db();
        db.execute("CREATE MATERIALIZED VIEW hot AS SELECT uid FROM pol WHERE deg = 25")
            .unwrap();
        let r = db.execute("SELECT * FROM hot").unwrap();
        assert_eq!(r.rows().unwrap().len(), 2);
        db.tick(10);
        let rel = db.read_view("hot").unwrap();
        assert_eq!(rel.len(), 1);
        assert!(rel.contains(&tuple![2]));
        // Monotonic view: zero recomputations.
        assert_eq!(db.view_stats("hot").unwrap().recomputations, 0);
    }

    #[test]
    fn non_monotonic_view_recomputes() {
        let mut db = figure1_db();
        db.execute(
            "CREATE MATERIALIZED VIEW others AS
             SELECT uid FROM pol EXCEPT SELECT uid FROM el",
        )
        .unwrap();
        assert_eq!(db.read_view("others").unwrap().len(), 1);
        db.tick(5);
        let rel = db.read_view("others").unwrap();
        assert_eq!(rel.len(), 3, "⟨1⟩,⟨2⟩,⟨3⟩ at time 5 (Figure 3d)");
        assert!(db.view_stats("others").unwrap().recomputations >= 1);
    }

    #[test]
    fn virtual_views_plan_per_read() {
        let mut db = figure1_db();
        db.execute("CREATE VIEW v AS SELECT deg, COUNT(*) FROM pol GROUP BY deg")
            .unwrap();
        let r = db.read_view("v").unwrap();
        assert_eq!(r.len(), 2);
        assert!(r.contains(&tuple![25, 2]));
        db.tick(10);
        let r = db.read_view("v").unwrap();
        assert_eq!(r.len(), 1);
        assert!(r.contains(&tuple![25, 1]), "fresh evaluation at 10");
        assert!(db.view_stats("v").is_err(), "virtual views have no stats");
    }

    #[test]
    fn views_over_views_inline() {
        let mut db = figure1_db();
        db.execute("CREATE VIEW a AS SELECT uid, deg FROM pol WHERE deg = 25")
            .unwrap();
        db.execute("CREATE MATERIALIZED VIEW b AS SELECT uid FROM a")
            .unwrap();
        let r = db.read_view("b").unwrap();
        assert_eq!(r.len(), 2);
        // Dropping pol must be blocked by both views.
        assert!(db.drop_table("pol").is_err());
        db.drop_view("b").unwrap();
        db.drop_view("a").unwrap();
        db.drop_table("pol").unwrap();
    }

    #[test]
    fn delete_and_update_expiration_via_sql() {
        let mut db = figure1_db();
        let n = db
            .execute("DELETE FROM pol WHERE deg = 25")
            .unwrap()
            .affected()
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(
            db.execute("SELECT * FROM pol")
                .unwrap()
                .rows()
                .unwrap()
                .len(),
            1
        );

        // Extend the remaining row's life.
        let n = db
            .execute("UPDATE pol SET EXPIRES AT 50 WHERE uid = 3")
            .unwrap()
            .affected()
            .unwrap();
        assert_eq!(n, 1);
        db.tick(20);
        assert_eq!(
            db.execute("SELECT * FROM pol")
                .unwrap()
                .rows()
                .unwrap()
                .len(),
            1,
            "outlived its original texp of 10"
        );
        // EXPIRES IN is relative to now (20).
        db.execute("UPDATE pol SET EXPIRES IN 5 TICKS").unwrap();
        db.tick(5);
        assert!(db
            .execute("SELECT * FROM pol")
            .unwrap()
            .rows()
            .unwrap()
            .is_empty());
    }

    #[test]
    fn insert_coerces_int_literals_into_float_columns() {
        let mut db = Database::default();
        db.execute("CREATE TABLE m (temp FLOAT)").unwrap();
        db.execute("INSERT INTO m VALUES (21), (22.5) EXPIRES IN 10")
            .unwrap();
        let r = db.execute("SELECT * FROM m").unwrap();
        assert_eq!(r.rows().unwrap().len(), 2);
        assert!(r.rows().unwrap().contains(&tuple![21.0]));
    }

    #[test]
    fn catalog_errors() {
        let mut db = Database::default();
        db.execute("CREATE TABLE s (k INT)").unwrap();
        assert!(matches!(
            db.execute("CREATE TABLE s (k INT)"),
            Err(DbError::Catalog(_))
        ));
        assert!(db.execute("DROP TABLE nope").is_err());
        assert!(db.execute("DROP VIEW nope").is_err());
        assert!(db.execute("SELECT * FROM nope").is_err());
        assert!(db.execute("INSERT INTO s VALUES ('wrong type')").is_err());
        assert!(db.read_view("nope").is_err());
        // Name collision between view and table namespaces.
        db.execute("CREATE VIEW w AS SELECT * FROM s").unwrap();
        assert!(db.execute("CREATE TABLE w (k INT)").is_err());
        assert!(db.execute("CREATE VIEW s AS SELECT * FROM s").is_err());
    }

    #[test]
    fn insert_expires_at_past_time_fails() {
        let mut db = Database::default();
        db.execute("CREATE TABLE s (k INT)").unwrap();
        db.tick(10);
        assert!(matches!(
            db.execute("INSERT INTO s VALUES (1) EXPIRES AT 10"),
            Err(DbError::Core(
                exptime_core::error::Error::ExpirationInPast { .. }
            ))
        ));
    }

    #[test]
    fn dump_restore_roundtrip_preserves_everything_observable() {
        let mut db = figure1_db();
        db.execute("CREATE TABLE notes (body TEXT, pinned BOOL)")
            .unwrap();
        db.execute("INSERT INTO notes VALUES ('it''s a test', TRUE) EXPIRES NEVER")
            .unwrap();
        db.execute("CREATE MATERIALIZED VIEW hot AS SELECT uid FROM pol WHERE deg = 25")
            .unwrap();
        db.execute("CREATE VIEW all_el AS SELECT * FROM el")
            .unwrap();
        db.tick(4); // some rows expire before the dump

        let dump = db.dump_sql();
        assert!(dump.starts_with("-- exptime dump at t=4"));
        let mut restored = Database::restore(&dump).unwrap();
        assert_eq!(restored.now(), t(4));

        // Every query answers identically on both, now and in the future.
        for delta in [0u64, 2, 7, 12] {
            if delta > 0 {
                db.tick(delta);
                restored.tick(delta);
            }
            for q in [
                "SELECT * FROM pol",
                "SELECT * FROM el",
                "SELECT * FROM notes",
                "SELECT uid FROM pol EXCEPT SELECT uid FROM el",
            ] {
                let a = db.execute(q).unwrap().rows().unwrap().clone();
                let b = restored.execute(q).unwrap().rows().unwrap().clone();
                assert!(a.set_eq(&b), "{q} diverged after +{delta}: {a:?} vs {b:?}");
            }
            let a = db.read_view("hot").unwrap();
            let b = restored.read_view("hot").unwrap();
            assert!(a.set_eq(&b), "view diverged after +{delta}");
            let a = db.read_view("all_el").unwrap();
            let b = restored.read_view("all_el").unwrap();
            assert!(a.set_eq(&b));
        }
    }

    #[test]
    fn dump_is_stable_under_roundtrip() {
        let mut db = figure1_db();
        db.execute("CREATE MATERIALIZED VIEW hot AS SELECT uid FROM pol WHERE deg = 25")
            .unwrap();
        let dump1 = db.dump_sql();
        let restored = Database::restore(&dump1).unwrap();
        let dump2 = restored.dump_sql();
        assert_eq!(dump1, dump2, "dump ∘ restore is a fixpoint");
    }

    #[test]
    fn restore_rejects_headerless_scripts() {
        assert!(matches!(
            Database::restore("CREATE TABLE t (a INT);"),
            Err(DbError::Catalog(_))
        ));
        // Comments alone don't make a header either.
        assert!(matches!(
            Database::restore("-- just a note\nCREATE TABLE t (a INT);"),
            Err(DbError::Catalog(_))
        ));
    }

    #[test]
    fn restore_tolerates_leading_blanks_and_comments() {
        let mut db = figure1_db();
        db.tick(4);
        let dump = db.dump_sql();
        let decorated =
            format!("\n   \n-- produced by backup tooling\n-- second comment line\n\n{dump}");
        let restored = Database::restore(&decorated).unwrap();
        assert_eq!(restored.now(), t(4));
        let mut a = db;
        let mut b = restored;
        let ra = a.execute("SELECT * FROM pol").unwrap();
        let rb = b.execute("SELECT * FROM pol").unwrap();
        assert!(ra.rows().unwrap().set_eq(rb.rows().unwrap()));
    }

    #[test]
    fn durable_database_survives_reopen() {
        use crate::durability::{Durability, MemStore};
        let config = DbConfig {
            durability: Durability::Wal {
                group_commit: 1,
                checkpoint_every: 0, // manual only: exercise pure log replay
                expiration_aware: true,
            },
            ..DbConfig::default()
        };
        let disk = MemStore::new();
        {
            let mut db = Database::open_with_store(Box::new(disk.clone()), config).unwrap();
            db.execute("CREATE TABLE s (k INT, v TEXT)").unwrap();
            db.execute("INSERT INTO s VALUES (1, 'keep') EXPIRES AT 100")
                .unwrap();
            db.execute("INSERT INTO s VALUES (2, 'dies') EXPIRES AT 5")
                .unwrap();
            db.execute("CREATE VIEW sv AS SELECT k FROM s").unwrap();
            db.tick(10);
            assert!(db.wal_status().unwrap().log_bytes > 0);
        }
        let mut db = Database::open_with_store(Box::new(disk.clone()), config).unwrap();
        assert_eq!(db.now(), t(10));
        let rows = db.execute("SELECT * FROM s").unwrap();
        assert_eq!(rows.rows().unwrap().len(), 1, "row 2 expired at t=5");
        let view = db.execute("SELECT * FROM sv").unwrap();
        assert_eq!(view.rows().unwrap().len(), 1);
        let rec = db.recovery_stats().unwrap();
        assert_eq!(rec.skipped_expired, 1, "the texp=5 insert is dead at t=10");
        assert_eq!(rec.clock, 10);
        // Recovery ends with a checkpoint: the log is clean again.
        assert_eq!(db.wal_status().unwrap().log_bytes, 0);
    }

    #[test]
    fn open_refuses_volatile_config() {
        use crate::durability::MemStore;
        assert!(matches!(
            Database::open_with_store(Box::new(MemStore::new()), DbConfig::default()),
            Err(DbError::Wal(_))
        ));
    }

    #[test]
    fn checkpoint_truncates_log_and_recovers_without_replay() {
        use crate::durability::{Durability, MemStore};
        let config = DbConfig {
            durability: Durability::wal(),
            ..DbConfig::default()
        };
        let disk = MemStore::new();
        {
            let mut db = Database::open_with_store(Box::new(disk.clone()), config).unwrap();
            db.execute("CREATE TABLE s (k INT)").unwrap();
            for i in 0..20 {
                db.execute(&format!("INSERT INTO s VALUES ({i}) EXPIRES AT 1000"))
                    .unwrap();
            }
            let stats = db.checkpoint().unwrap();
            assert_eq!(stats.live_rows, 20);
            assert!(stats.reclaimed_bytes > 0);
            assert_eq!(db.wal_status().unwrap().log_bytes, 0);
        }
        let db = Database::open_with_store(Box::new(disk.clone()), config).unwrap();
        let rec = db.recovery_stats().unwrap();
        assert_eq!(rec.replayed, 0, "everything came from the checkpoint");
        assert_eq!(rec.checkpoint_rows, 20);
        assert_eq!(db.table("s").unwrap().len(), 20);
    }

    #[test]
    fn api_created_views_dump_as_comments() {
        let mut db = figure1_db();
        db.create_view("v", Expr::base("pol").project([0])).unwrap();
        let dump = db.dump_sql();
        assert!(dump.contains("-- view v (no SQL definition)"), "{dump}");
        // The dump still restores (the comment is skipped).
        assert!(Database::restore(&dump).is_ok());
    }

    #[test]
    fn optimizer_config_preserves_semantics() {
        let build = |optimize: bool| {
            let mut db = Database::new(DbConfig {
                optimize,
                ..DbConfig::default()
            });
            db.execute_script(
                "CREATE TABLE pol (uid INT, deg INT);
                 CREATE TABLE el (uid INT, deg INT);
                 INSERT INTO pol VALUES (1, 25) EXPIRES AT 10;
                 INSERT INTO pol VALUES (2, 25) EXPIRES AT 15;
                 INSERT INTO pol VALUES (3, 35) EXPIRES AT 10;
                 INSERT INTO el VALUES (1, 25) EXPIRES AT 5;
                 INSERT INTO el VALUES (2, 85) EXPIRES AT 3;",
            )
            .unwrap();
            db
        };
        let mut plain = build(false);
        let mut opt = build(true);
        // A selection above a difference: the optimizer pushes it down;
        // answers must be identical at every instant.
        let q = "SELECT uid FROM pol EXCEPT SELECT uid FROM el";
        let q2 = "SELECT deg, COUNT(*) FROM pol WHERE deg = 25 GROUP BY deg";
        for _ in 0..16 {
            for sql in [q, q2] {
                let a = plain.execute(sql).unwrap().rows().unwrap().clone();
                let b = opt.execute(sql).unwrap().rows().unwrap().clone();
                assert!(a.set_eq(&b), "{sql} at {:?}", plain.now());
            }
            plain.tick(1);
            opt.tick(1);
        }
    }

    #[test]
    fn stats_accumulate() {
        let mut db = figure1_db();
        assert_eq!(db.stats().inserts, 6);
        db.execute("SELECT * FROM pol").unwrap();
        db.execute("SELECT * FROM el").unwrap();
        assert_eq!(db.stats().queries, 2);
        db.tick(20);
        assert_eq!(db.stats().expired, 6);
    }

    #[test]
    fn stats_are_registry_snapshots_and_count_queries_uniformly() {
        let mut db = figure1_db();
        // The same counts through the registry and through stats().
        assert_eq!(db.metrics().counter_value("db.inserts"), 6);
        assert_eq!(db.metrics().counter_value("storage.pol.inserts"), 3);

        // Every successful evaluation counts once, whatever the door:
        db.execute("SELECT * FROM pol").unwrap(); // SQL
        db.query_expr(&Expr::base("el")).unwrap(); // direct expression
        db.execute("CREATE VIEW v AS SELECT uid FROM pol").unwrap();
        db.read_view("v").unwrap(); // view read
        assert_eq!(db.stats().queries, 3);
        // Failed evaluations don't count (the seed counted unknown-view
        // reads but not unknown-table SELECTs).
        assert!(db.read_view("nope").is_err());
        assert!(db.execute("SELECT * FROM nope").is_err());
        assert_eq!(db.stats().queries, 3);

        // The latency histogram moves in lock-step with the counter.
        let h = db.metrics().histogram("db.query_ns").snapshot();
        assert_eq!(h.count, db.stats().queries);
        let hi = db.metrics().histogram("db.insert_ns").snapshot();
        assert_eq!(hi.count, db.stats().inserts);
    }

    #[test]
    fn lazy_removal_telemetry_shows_late_triggers_and_correct_reads() {
        let mut db = Database::new(DbConfig {
            removal: Removal::Lazy { vacuum_every: 10 },
            ..DbConfig::default()
        });
        let ring = db.obs().install_ring(64);
        db.execute("CREATE TABLE s (k INT)").unwrap();
        db.execute("INSERT INTO s VALUES (1) EXPIRES AT 3").unwrap();
        db.execute("INSERT INTO s VALUES (2) EXPIRES AT 7").unwrap();

        db.tick(8); // past both texp, before any vacuum
                    // Reads are already correct: expiration is logical.
        assert!(db
            .execute("SELECT * FROM s")
            .unwrap()
            .rows()
            .unwrap()
            .is_empty());
        // …but no trigger has fired yet; the event log shows only the
        // clock moving.
        let fired: Vec<_> = ring
            .recent(64)
            .into_iter()
            .filter(|e| e.kind.tag() == "trigger_fired")
            .collect();
        assert!(fired.is_empty(), "no vacuum yet: {fired:?}");

        db.tick(2); // vacuum at 10
        let events = ring.recent(64);
        let fired: Vec<_> = events
            .iter()
            .filter(|e| e.kind.tag() == "trigger_fired")
            .collect();
        assert_eq!(fired.len(), 2);
        for e in &fired {
            let EventKind::TriggerFired { texp, fired_at, .. } = &e.kind else {
                unreachable!()
            };
            assert_eq!(*fired_at, 10, "lazy: fired at vacuum time");
            assert!(fired_at > texp, "…which is after texp");
        }
        let vacuums: Vec<_> = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::VacuumPass { at: 10, removed: 2 }))
            .collect();
        assert_eq!(vacuums.len(), 1);
    }

    #[test]
    fn lint_analyses_statements_without_executing_them() {
        let db = figure1_db();
        // Monotonic workload: clean.
        let r = db.lint("SELECT uid FROM pol WHERE deg >= 25").unwrap();
        assert!(r.is_clean(), "{:?}", r.diagnostics);
        // Fig. 3(a): aggregate under a projection → X001 + X003.
        let r = db
            .lint("SELECT deg, COUNT(*) FROM pol GROUP BY deg")
            .unwrap();
        assert_eq!(
            r.codes(),
            vec![exptime_lint::Code::X001, exptime_lint::Code::X003]
        );
        // Materialised difference → X002 (error).
        let r = db
            .lint("CREATE MATERIALIZED VIEW d AS SELECT uid FROM pol EXCEPT SELECT uid FROM el")
            .unwrap();
        assert_eq!(r.codes(), vec![exptime_lint::Code::X002]);
        // A virtual view is not materialised: no X002.
        let r = db
            .lint("CREATE VIEW d AS SELECT uid FROM pol EXCEPT SELECT uid FROM el")
            .unwrap();
        assert!(r.is_clean(), "{:?}", r.diagnostics);
        // Nothing was executed: no view exists, and non-lintable
        // statements are rejected.
        assert!(db.view_diagnostics("d").is_err());
        assert!(db.lint("INSERT INTO pol VALUES (9, 9)").is_err());
        // explain_lint renders carets into the source.
        let out = db
            .explain_lint("SELECT uid FROM pol EXCEPT SELECT uid FROM el")
            .unwrap();
        assert!(out.contains("X002 [error] at 1:21"), "{out}");
        assert!(out.contains("^^^^^^"), "{out}");
    }

    #[test]
    fn create_materialized_view_records_diagnostics_and_emits_events() {
        let mut db = figure1_db();
        let ring = db.obs().install_ring(64);
        db.execute("CREATE MATERIALIZED VIEW d AS SELECT uid FROM pol EXCEPT SELECT uid FROM el")
            .unwrap();
        let r = db.view_diagnostics("d").unwrap();
        assert_eq!(r.codes(), vec![exptime_lint::Code::X002]);
        assert_eq!(db.metrics().counter_value("lint.diagnostics"), 1);
        let events = ring.recent(64);
        assert!(
            events.iter().any(|e| matches!(
                &e.kind,
                EventKind::LintDiagnostic { code, subject, .. }
                    if code == "X002" && subject == "d"
            )),
            "{events:?}"
        );
        // A monotonic view records a clean report and no events.
        db.execute("CREATE MATERIALIZED VIEW hot AS SELECT uid FROM pol WHERE deg = 25")
            .unwrap();
        assert!(db.view_diagnostics("hot").unwrap().is_clean());
        assert_eq!(db.metrics().counter_value("lint.diagnostics"), 1);
    }

    #[test]
    fn w101_fires_when_refresh_is_due_within_the_slo_window() {
        // Tolerating 100 ticks of trigger lateness while the view's
        // content expires at t=10 means a legally late trigger misses the
        // refresh window entirely.
        let mut config = DbConfig::default();
        config.slo.max_trigger_lateness = 100;
        let mut db = Database::new(config);
        db.execute_script(
            "CREATE TABLE pol (uid INT, deg INT);
             INSERT INTO pol VALUES (1, 25) EXPIRES AT 10;
             INSERT INTO pol VALUES (2, 25) EXPIRES AT 20;",
        )
        .unwrap();
        db.execute("CREATE MATERIALIZED VIEW soon AS SELECT deg, COUNT(*) FROM pol GROUP BY deg")
            .unwrap();
        let r = db.view_diagnostics("soon").unwrap();
        assert!(
            r.codes().contains(&exptime_lint::Code::W101),
            "{:?}",
            r.codes()
        );
        let w = r
            .diagnostics
            .iter()
            .find(|d| d.code == exptime_lint::Code::W101)
            .unwrap();
        assert!(w.message.contains("10 tick(s)"), "{}", w.message);
        assert!(w.message.contains("100"), "{}", w.message);
        // With a punctual SLO (default lateness 0) the same view is fine.
        let mut db = figure1_db();
        db.execute("CREATE MATERIALIZED VIEW soon AS SELECT deg, COUNT(*) FROM pol GROUP BY deg")
            .unwrap();
        assert!(!db
            .view_diagnostics("soon")
            .unwrap()
            .codes()
            .contains(&exptime_lint::Code::W101));
    }

    #[test]
    fn explain_analyze_reports_plan_and_view_decisions() {
        let mut db = figure1_db();
        db.execute("CREATE MATERIALIZED VIEW hot AS SELECT uid FROM pol WHERE deg = 25")
            .unwrap();

        let explain = db.explain_analyze("SELECT * FROM hot").unwrap();
        assert_eq!(explain.rows, 2);
        // Monotonic view: Theorem 1, never recomputed.
        assert_eq!(
            explain.decisions,
            vec![("hot".to_string(), RefreshDecision::Eternal)]
        );
        let text = explain.to_string();
        assert!(text.contains("rows="), "{text}");
        assert!(text.contains("Theorem 1"), "{text}");
        assert!(text.contains("result: 2 rows"), "{text}");
        // The profile is a real execution: σ over the base table, with
        // per-operator row counts.
        assert_eq!(explain.profile.rows_out, 2);

        // Non-SELECT statements are rejected.
        assert!(db.explain_analyze("CREATE TABLE x (a INT)").is_err());

        // Joins profile the whole tree.
        let e = db
            .explain_analyze("SELECT * FROM pol JOIN el ON pol.uid = el.uid")
            .unwrap();
        assert_eq!(e.rows, 2);
        assert!(e.profile.node_count() >= 3, "join + two bases");
    }

    // ------------------------------------------------------------------
    // TTL policies
    // ------------------------------------------------------------------

    #[test]
    fn ttl_policy_defaults_and_clamps_on_insert() {
        let mut db = Database::default();
        db.execute("CREATE TABLE sess (sid INT) TTL 30 CLAMP 10..50")
            .unwrap();
        db.tick(100);
        // No EXPIRES clause: policy default now+30.
        db.execute("INSERT INTO sess VALUES (1)").unwrap();
        let tu = tuple![1i64];
        assert_eq!(db.table("sess").unwrap().texp(&tu), Some(t(130)));
        // Over the clamp: forced down to now+50.
        db.execute("INSERT INTO sess VALUES (2) EXPIRES IN 500")
            .unwrap();
        assert_eq!(db.table("sess").unwrap().texp(&tuple![2i64]), Some(t(150)));
        // NEVER is finite-ized by the clamp max.
        db.execute("INSERT INTO sess VALUES (3) EXPIRES NEVER")
            .unwrap();
        assert_eq!(db.table("sess").unwrap().texp(&tuple![3i64]), Some(t(150)));
        // Under the clamp: raised to now+10.
        db.execute("INSERT INTO sess VALUES (4) EXPIRES IN 2")
            .unwrap();
        assert_eq!(db.table("sess").unwrap().texp(&tuple![4i64]), Some(t(110)));
        assert_eq!(db.metrics().counter("policy.clamped").get(), 3);
        assert_eq!(db.metrics().counter("policy.sess.clamped").get(), 3);
        assert_eq!(db.metrics().counter("policy.sliding_touches").get(), 0);
    }

    #[test]
    fn sliding_on_access_reads_rearm_and_show_ttl_reports() {
        let mut db = Database::default();
        db.execute("CREATE TABLE sess (sid INT) TTL 30 SLIDING ON ACCESS")
            .unwrap();
        db.execute("INSERT INTO sess VALUES (1)").unwrap();
        db.execute("INSERT INTO sess VALUES (2)").unwrap();
        db.tick(20);
        // Reading sid=1 re-arms it to 20+30; sid=2 keeps texp=30.
        db.execute("SELECT * FROM sess WHERE sid = 1").unwrap();
        assert_eq!(db.table("sess").unwrap().texp(&tuple![1i64]), Some(t(50)));
        assert_eq!(db.table("sess").unwrap().texp(&tuple![2i64]), Some(t(30)));
        db.tick(15); // t=35: the untouched session is gone
        let rows = db.execute("SELECT * FROM sess").unwrap();
        assert_eq!(rows.rows().unwrap().len(), 1);
        assert_eq!(db.metrics().counter("policy.sliding_touches").get(), 2);
        // SHOW TTL: one row per table with the rendered policy + counters.
        let show = db.execute("SHOW TTL FOR sess").unwrap();
        let rel = show.rows().unwrap();
        assert_eq!(rel.len(), 1);
        let row = rel.iter().next().unwrap().0;
        assert_eq!(row.values()[0], Value::str("sess"));
        assert_eq!(row.values()[1], Value::str("TTL 30 SLIDING ON ACCESS"));
        assert_eq!(row.values()[2], Value::Int(2), "sliding_touches");
    }

    #[test]
    fn update_expires_default_is_a_modify_touch() {
        let mut db = Database::default();
        db.execute("CREATE TABLE sess (sid INT) TTL 30 SLIDING")
            .unwrap();
        db.execute("INSERT INTO sess VALUES (1)").unwrap();
        db.tick(10);
        // Modify-touch slides texp to 10+30; reads do NOT slide here.
        db.execute("SELECT * FROM sess").unwrap();
        assert_eq!(db.table("sess").unwrap().texp(&tuple![1i64]), Some(t(30)));
        assert!(matches!(
            db.execute("UPDATE sess SET EXPIRES DEFAULT").unwrap(),
            ExecResult::Affected(1)
        ));
        assert_eq!(db.table("sess").unwrap().texp(&tuple![1i64]), Some(t(40)));
        // A second touch at the same instant is a no-op (monotone).
        assert!(matches!(
            db.execute("UPDATE sess SET EXPIRES DEFAULT").unwrap(),
            ExecResult::Affected(0)
        ));
        // Re-inserting the same row is also a modify touch (keep-max).
        db.tick(5);
        db.execute("INSERT INTO sess VALUES (1)").unwrap();
        assert_eq!(db.table("sess").unwrap().texp(&tuple![1i64]), Some(t(45)));
        assert_eq!(db.metrics().counter("policy.sliding_touches").get(), 2);
    }

    #[test]
    fn alter_ttl_swaps_and_clears_policies() {
        let mut db = Database::default();
        db.execute("CREATE TABLE s (k INT)").unwrap();
        assert_eq!(db.ttl_policy("s"), None);
        db.execute("ALTER TABLE s SET TTL 60 SLIDING ON ACCESS CLAMP 5..400")
            .unwrap();
        let p = db.ttl_policy("s").unwrap();
        assert_eq!(p.ttl, Some(60));
        assert!(p.sliding.slides_on(TouchKind::Access));
        db.execute("INSERT INTO s VALUES (1)").unwrap();
        assert_eq!(db.table("s").unwrap().texp(&tuple![1i64]), Some(t(60)));
        db.execute("ALTER TABLE s SET TTL NONE").unwrap();
        assert_eq!(db.ttl_policy("s"), None);
        // Cleared: inserts are immortal again, rows keep their old texp.
        db.execute("INSERT INTO s VALUES (2)").unwrap();
        assert_eq!(
            db.table("s").unwrap().texp(&tuple![2i64]),
            Some(Time::INFINITY)
        );
        assert_eq!(db.table("s").unwrap().texp(&tuple![1i64]), Some(t(60)));
        assert!(db
            .execute("ALTER TABLE nope SET TTL 5")
            .unwrap_err()
            .to_string()
            .contains("unknown table"));
    }

    #[test]
    fn sliding_policy_under_matview_warns_w102() {
        let mut db = Database::default();
        db.execute("CREATE TABLE s (k INT) TTL 30 SLIDING ON ACCESS")
            .unwrap();
        db.execute("CREATE MATERIALIZED VIEW mv AS SELECT k FROM s")
            .unwrap();
        let report = db.view_diagnostics("mv").unwrap();
        assert!(
            report.codes().contains(&exptime_lint::Code::W102),
            "{report:?}"
        );
        // The other direction: ALTER under an existing matview emits the
        // W102 event (the stored report predates the policy).
        let mut db = Database::default();
        db.execute("CREATE TABLE s (k INT)").unwrap();
        db.execute("CREATE MATERIALIZED VIEW mv AS SELECT k FROM s")
            .unwrap();
        let before = db.metrics().counter("lint.diagnostics").get();
        db.execute("ALTER TABLE s SET TTL 30 SLIDING").unwrap();
        assert_eq!(db.metrics().counter("lint.diagnostics").get(), before + 1);
    }

    #[test]
    fn maintenance_window_defers_expirations_api_only() {
        let mut db = Database::default();
        db.execute("CREATE TABLE s (k INT) TTL 10").unwrap();
        db.set_maintenance_window("s", Some(MaintenanceWindow::new(5, 25)))
            .unwrap();
        db.execute("INSERT INTO s VALUES (1)").unwrap(); // now+10 = 10 ∈ [5,25) → 25
        assert_eq!(db.table("s").unwrap().texp(&tuple![1i64]), Some(t(25)));
        // Windows have no SQL spelling: the whole policy is dumped as an
        // API-only comment rather than a clause that would lose the window.
        let dump = db.dump_sql();
        assert!(dump.contains("API-only"), "{dump}");
        assert!(dump.contains("maintenance 5..25"), "{dump}");
        db.set_maintenance_window("s", None).unwrap();
        assert_eq!(db.ttl_policy("s").unwrap().maintenance, None);
    }

    #[test]
    fn policies_and_sliding_touches_survive_wal_recovery() {
        use crate::durability::{Durability, MemStore};
        let config = DbConfig {
            durability: Durability::Wal {
                group_commit: 1,
                checkpoint_every: 0, // pure log replay
                expiration_aware: true,
            },
            ..DbConfig::default()
        };
        let disk = MemStore::new();
        {
            let mut db = Database::open_with_store(Box::new(disk.clone()), config).unwrap();
            db.execute("CREATE TABLE sess (sid INT) TTL 30 SLIDING ON ACCESS")
                .unwrap();
            db.execute("INSERT INTO sess VALUES (1)").unwrap();
            db.execute("INSERT INTO sess VALUES (2)").unwrap();
            db.tick(20);
            // The read re-arms sid=1 to t=50 and must be durable.
            db.execute("SELECT * FROM sess WHERE sid = 1").unwrap();
        }
        let mut db = Database::open_with_store(Box::new(disk.clone()), config).unwrap();
        assert_eq!(db.now(), t(20));
        let p = db.ttl_policy("sess").unwrap();
        assert!(p.sliding.slides_on(TouchKind::Access), "policy recovered");
        assert_eq!(
            db.table("sess").unwrap().texp(&tuple![1i64]),
            Some(t(50)),
            "durable sliding touch"
        );
        db.tick(15); // t=35: untouched session expires, touched one lives
        let rows = db.execute("SELECT * FROM sess").unwrap();
        assert_eq!(rows.rows().unwrap().len(), 1);
        // Replay must not double-apply the policy: recovery is absolute.
        assert_eq!(db.table("sess").unwrap().texp(&tuple![1i64]), Some(t(65)));
        // (that read itself slid sid=1 to 35+30 — the policy is live again)
    }

    #[test]
    fn policies_survive_checkpoint_and_dump_restore() {
        use crate::durability::{Durability, MemStore};
        let config = DbConfig {
            durability: Durability::wal(),
            ..DbConfig::default()
        };
        let disk = MemStore::new();
        {
            let mut db = Database::open_with_store(Box::new(disk.clone()), config).unwrap();
            db.execute("CREATE TABLE sess (sid INT) TTL 30 SLIDING CLAMP 5..400")
                .unwrap();
            db.execute("INSERT INTO sess VALUES (1)").unwrap();
            db.checkpoint().unwrap(); // policy must live in the checkpoint
        }
        let db = Database::open_with_store(Box::new(disk.clone()), config).unwrap();
        let p = db.ttl_policy("sess").unwrap();
        assert_eq!(p.ttl, Some(30));
        assert_eq!(p.clamp.map(|c| (c.min, c.max)), Some((5, 400)));

        // Dump → restore: policy rides on CREATE TABLE; restored rows keep
        // their absolute texp (no re-clamping in system context).
        let mut db = Database::default();
        db.execute("CREATE TABLE s (k INT) TTL 10 CLAMP 5..20")
            .unwrap();
        db.execute("INSERT INTO s VALUES (1) EXPIRES IN 15")
            .unwrap();
        db.tick(3);
        let dump = db.dump_sql();
        let restored = Database::restore(&dump).unwrap();
        assert_eq!(restored.ttl_policy("s").unwrap().ttl, Some(10));
        assert_eq!(
            restored.table("s").unwrap().texp(&tuple![1i64]),
            Some(t(15)),
            "restored texp is absolute, not re-derived"
        );
    }

    #[test]
    fn policy_status_lists_every_table() {
        let mut db = Database::default();
        db.execute("CREATE TABLE plain (k INT)").unwrap();
        db.execute("CREATE TABLE sess (sid INT) TTL 30 SLIDING ON ACCESS")
            .unwrap();
        db.execute("INSERT INTO sess VALUES (1)").unwrap();
        db.tick(5); // a touch at insert time would be a no-op (same target)
        db.execute("SELECT * FROM sess").unwrap();
        let st = db.policy_status();
        assert_eq!(st.len(), 2);
        let plain = st.iter().find(|s| s.table == "plain").unwrap();
        assert!(plain.policy.is_identity());
        let sess = st.iter().find(|s| s.table == "sess").unwrap();
        assert_eq!(sess.live_rows, 1);
        assert_eq!(sess.sliding_touches, 1);
    }
}
