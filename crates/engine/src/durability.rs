//! Durability configuration and status types for the WAL-backed engine.
//!
//! The mechanics live in `exptime-wal` (record format, stores, replay
//! planning) and in `db.rs` (which operations log which records); this
//! module holds the knobs and the reports.
//!
//! The protocol, end to end:
//!
//! * Every SQL statement (and every direct API `insert`) runs as one WAL
//!   transaction: `TxnBegin`, one record per *applied* operation,
//!   `TxnCommit`. The engine's statements are not atomic — a failing
//!   multi-row `INSERT` keeps its earlier rows — so the commit is written
//!   even when the statement errors, keeping durable state identical to
//!   in-memory state. A crash mid-statement leaves the transaction
//!   without its commit record and replay drops it whole.
//! * Clock advances and DDL are self-committing records: durable iff
//!   fully framed.
//! * `fsync` happens every `group_commit` commits (group commit), on
//!   checkpoint, and when the database is dropped.
//! * A checkpoint snapshots the clock, every table's *live* rows
//!   (`texp > clock` — dead rows are unobservable and need no
//!   durability), and the SQL of every SQL-defined view; then the log is
//!   truncated. This is expiration-aware truncation: log bytes spent on
//!   tuples that died before the checkpoint are reclaimed with it.
//! * Recovery on open replays the committed prefix of the log on top of
//!   the checkpoint, skipping (in [`expiration_aware`] mode) insert
//!   records whose tuples are provably dead at the recovered clock, then
//!   writes a fresh checkpoint so the torn tail is discarded and the
//!   next crash starts from a clean log.
//!
//! [`expiration_aware`]: Durability::Wal::expiration_aware

pub use exptime_wal::{FileStore, MemStore, TruncationStats, Wal, WalStore};

/// Whether and how a [`Database`](crate::Database) persists its writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// No WAL: the database lives and dies in memory (the pre-WAL
    /// behaviour, and still the right mode for benches and simulations).
    #[default]
    Volatile,
    /// Write-ahead logging with periodic checkpoints.
    Wal {
        /// Commits per fsync. `1` = sync every commit (safest, slowest);
        /// `n` batches up to `n` commits per fsync, risking at most the
        /// last `n-1` committed statements on power loss.
        group_commit: usize,
        /// Automatic checkpoint cadence in logical ticks (`0` = manual
        /// checkpoints only, via [`Database::checkpoint`](crate::Database::checkpoint)).
        checkpoint_every: u64,
        /// Skip replaying insert records whose tuples are already dead at
        /// the recovered clock (and provably never resurrected). Replay
        /// work becomes proportional to live data instead of history.
        expiration_aware: bool,
    },
}

impl Durability {
    /// WAL durability with the defaults used by the CLI and tests:
    /// sync every commit, checkpoint every 64 ticks, expiration-aware.
    #[must_use]
    pub fn wal() -> Self {
        Durability::Wal {
            group_commit: 1,
            checkpoint_every: 64,
            expiration_aware: true,
        }
    }
}

/// What recovery did when the database was opened (see
/// [`Database::recovery_stats`](crate::Database::recovery_stats)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryStats {
    /// Clock recovered from the checkpoint, before log replay.
    pub checkpoint_clock: u64,
    /// Rows restored from the checkpoint snapshot.
    pub checkpoint_rows: u64,
    /// Log records actually replayed.
    pub replayed: u64,
    /// Committed insert records skipped as already expired
    /// (expiration-aware replay only).
    pub skipped_expired: u64,
    /// Records dropped because their transaction never committed.
    pub skipped_uncommitted: u64,
    /// Log bytes after the last intact frame (the crash tail).
    pub torn_bytes: u64,
    /// The clock after recovery.
    pub clock: u64,
}

/// The result of a checkpoint (see
/// [`Database::checkpoint`](crate::Database::checkpoint)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Logical time of the snapshot.
    pub at: u64,
    /// Live rows captured.
    pub live_rows: u64,
    /// Log bytes reclaimed by truncation.
    pub reclaimed_bytes: u64,
    /// Size of the checkpoint blob.
    pub checkpoint_bytes: u64,
}

/// Point-in-time WAL status (see
/// [`Database::wal_status`](crate::Database::wal_status) and the CLI's
/// `\wal status`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalStatus {
    /// Current log length in bytes.
    pub log_bytes: u64,
    /// Commits per fsync.
    pub group_commit: usize,
    /// Automatic checkpoint cadence (`0` = manual only).
    pub checkpoint_every: u64,
    /// Whether replay skips provably dead inserts.
    pub expiration_aware: bool,
    /// Logical time of the last checkpoint.
    pub last_checkpoint_clock: u64,
    /// Set when a WAL write failed after its statement partially
    /// applied: durable and in-memory state may have diverged by that
    /// statement. A successful [`Database::checkpoint`](crate::Database::checkpoint)
    /// re-snapshots everything and clears the flag.
    pub degraded: bool,
    /// Recovery statistics from open, if this database recovered.
    pub recovery: Option<RecoveryStats>,
}

/// The live WAL attachment a durable [`Database`](crate::Database)
/// carries. Crate-internal: `db.rs` drives it.
pub(crate) struct WalSession {
    pub(crate) wal: Wal,
    pub(crate) checkpoint_every: u64,
    pub(crate) expiration_aware: bool,
    pub(crate) last_checkpoint_clock: u64,
    pub(crate) degraded: bool,
    pub(crate) active_txn: Option<u64>,
    pub(crate) recovery: Option<RecoveryStats>,
}

impl std::fmt::Debug for WalSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalSession")
            .field("log_bytes", &self.wal.log_len())
            .field("degraded", &self.degraded)
            .finish_non_exhaustive()
    }
}
