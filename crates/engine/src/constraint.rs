//! Integrity constraints checked on insertion.
//!
//! The paper (Section 1) lists integrity-constraint checking among the
//! "usual benefits of data management" that expiration-time databases
//! retain. Two kinds are supported:
//!
//! * **CHECK** — a per-tuple predicate;
//! * **Maximum lifetime** — a bound on `texp − now`, useful for policies
//!   like "session keys live at most 3600 ticks" (the paper's
//!   short-lived-credential motivation).

use exptime_core::predicate::Predicate;
use exptime_core::time::Time;
use exptime_core::tuple::Tuple;
use std::fmt;

/// A violation report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstraintViolation {
    /// The violated constraint's name.
    pub constraint: String,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ConstraintViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "constraint `{}` violated: {}",
            self.constraint, self.message
        )
    }
}

impl std::error::Error for ConstraintViolation {}

/// A constraint on one table.
#[derive(Debug, Clone)]
pub enum Constraint {
    /// The tuple must satisfy the predicate.
    Check {
        /// Constraint name.
        name: String,
        /// The predicate every inserted tuple must satisfy.
        predicate: Predicate,
    },
    /// `texp − now ≤ max_lifetime` for every insert (`∞` always violates).
    MaxLifetime {
        /// Constraint name.
        name: String,
        /// Maximum allowed lifetime in ticks.
        ticks: u64,
    },
}

impl Constraint {
    /// The constraint's name.
    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            Constraint::Check { name, .. } | Constraint::MaxLifetime { name, .. } => name,
        }
    }

    /// Checks an insertion.
    ///
    /// # Errors
    ///
    /// Returns a [`ConstraintViolation`] describing the failure.
    pub fn check(&self, tuple: &Tuple, texp: Time, now: Time) -> Result<(), ConstraintViolation> {
        match self {
            Constraint::Check { name, predicate } => {
                if predicate.eval(tuple) {
                    Ok(())
                } else {
                    Err(ConstraintViolation {
                        constraint: name.clone(),
                        message: format!("tuple {tuple} fails CHECK ({predicate})"),
                    })
                }
            }
            Constraint::MaxLifetime { name, ticks } => {
                let ok = match (texp.finite(), now.finite()) {
                    (Some(e), Some(n)) => e.saturating_sub(n) <= *ticks,
                    _ => false, // ∞ lifetime exceeds any bound
                };
                if ok {
                    Ok(())
                } else {
                    Err(ConstraintViolation {
                        constraint: name.clone(),
                        message: format!(
                            "lifetime {} exceeds maximum {ticks} ticks",
                            match texp.finite() {
                                Some(e) => (e - now.finite().unwrap_or(0)).to_string(),
                                None => "∞".to_string(),
                            }
                        ),
                    })
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exptime_core::predicate::CmpOp;
    use exptime_core::tuple;

    #[test]
    fn check_constraint() {
        let c =
            Constraint::Check {
                name: "deg_range".into(),
                predicate: Predicate::attr_cmp_const(1, CmpOp::Le, 100)
                    .and(Predicate::attr_cmp_const(1, CmpOp::Ge, 0)),
            };
        assert_eq!(c.name(), "deg_range");
        assert!(c.check(&tuple![1, 50], Time::new(5), Time::ZERO).is_ok());
        let err = c
            .check(&tuple![1, 150], Time::new(5), Time::ZERO)
            .unwrap_err();
        assert!(err.to_string().contains("deg_range"));
        assert!(err.to_string().contains("CHECK"));
    }

    #[test]
    fn max_lifetime_constraint() {
        let c = Constraint::MaxLifetime {
            name: "session_ttl".into(),
            ticks: 100,
        };
        assert!(c.check(&tuple![1], Time::new(100), Time::ZERO).is_ok());
        assert!(c.check(&tuple![1], Time::new(150), Time::new(60)).is_ok());
        assert!(c.check(&tuple![1], Time::new(161), Time::new(60)).is_err());
        let err = c.check(&tuple![1], Time::INFINITY, Time::ZERO).unwrap_err();
        assert!(err.to_string().contains("∞"));
    }
}
