//! # exptime-engine
//!
//! A single-node expiration-time DBMS assembled from the `exptime-*`
//! crates: tables with expiration indexes, a logical clock whose advance
//! processes expirations and fires triggers, integrity constraints,
//! virtual and materialised views that maintain themselves independently
//! of the base data (paper Theorems 1–3), and a SQL front end in which
//! expiration times appear only on `INSERT`/`UPDATE` — exactly the
//! transparency the paper argues for.
//!
//! ```
//! use exptime_engine::{Database, DbConfig};
//!
//! let mut db = Database::new(DbConfig::default());
//! db.execute("CREATE TABLE sessions (sid INT, uid INT)").unwrap();
//! db.execute("INSERT INTO sessions VALUES (1, 42) EXPIRES IN 30 TICKS").unwrap();
//! db.tick(29);
//! assert_eq!(db.execute("SELECT * FROM sessions").unwrap().rows().unwrap().len(), 1);
//! db.tick(1); // the session silently vanishes — no DELETE statement anywhere
//! assert!(db.execute("SELECT * FROM sessions").unwrap().rows().unwrap().is_empty());
//! ```

#![forbid(unsafe_code)]

pub mod constraint;
pub mod db;
pub mod durability;
pub mod shared;
pub mod telemetry;
pub mod trigger;

pub use constraint::{Constraint, ConstraintViolation};
pub use db::{
    Database, DbConfig, DbError, DbForecast, DbResult, DbStats, ExecResult, Explain,
    ForecastConfig, PolicyStatus, Removal,
};
pub use durability::{CheckpointStats, Durability, RecoveryStats, WalStatus};
pub use exptime_lint::{audit, AuditGraph, AuditReport, BoundBasis, StaleServing};
pub use exptime_obs::{
    Health, HealthStatus, HorizonForecast, ProfileStats, Profiler, QueryProfile, SloConfig,
    StalenessBound, StormBucket, TraceContext, Tracer, ViewHealth,
};
pub use exptime_policy::{Clamp, MaintenanceWindow, Sliding, TouchKind, TtlPolicy};
pub use shared::{SharedDatabase, TickerHandle};
pub use telemetry::{
    TelemetryConfig, TelemetryStatus, TELEMETRY_HEALTH, TELEMETRY_METRICS, TELEMETRY_SCHEMA,
};
pub use trigger::{ExpirationEvent, TriggerFn, TriggerManager};
