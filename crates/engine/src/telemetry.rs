//! Self-hosted telemetry history: the engine samples its own metrics,
//! SLO monitor, and expiration-horizon forecast into ordinary tables
//! whose rows carry `texp = now + retention` — the paper's expiration
//! machinery (expiry index, eager/lazy removal, vacuum, WAL replay) *is*
//! the retention policy. No deletion code exists anywhere in this path.
//!
//! The samples land in the reserved `_telemetry` schema:
//!
//! * `_telemetry.metrics (ts INT, kind TEXT, name TEXT, value FLOAT)` —
//!   one row per counter/gauge (and three per histogram: `.count`,
//!   `.p50`, `.p99`) per sample instant;
//! * `_telemetry.health (ts INT, status TEXT, views INT, stale INT,
//!   breaches INT, live INT, expiring INT, eternal INT, due64 INT,
//!   storms INT)` — one row per sample instant combining the staleness
//!   monitor and the horizon forecast.
//!
//! History is queryable with plain SQL — `SELECT * FROM
//! _telemetry.metrics WHERE name = 'wal.fsyncs'` — and, because the
//! sampler writes through [`crate::db::Database::insert`], every sample
//! flows through the WAL group commit and is replayed by ordinary crash
//! recovery. User statements may read the `_telemetry` schema freely but
//! cannot write or drop it (the engine rejects non-system DDL/DML).

#![allow(clippy::module_name_repetitions)]

/// Reserved schema prefix for the engine's own tables.
pub const TELEMETRY_SCHEMA: &str = "_telemetry";

/// Metric-sample table (`ts INT, kind TEXT, name TEXT, value FLOAT`).
pub const TELEMETRY_METRICS: &str = "_telemetry.metrics";

/// Health/forecast-sample table.
pub const TELEMETRY_HEALTH: &str = "_telemetry.health";

/// Is `name` inside the reserved `_telemetry` schema? (Case-insensitive;
/// covers both the bare schema name and any `_telemetry.x` member.)
#[must_use]
pub fn is_reserved(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    lower == TELEMETRY_SCHEMA || lower.starts_with("_telemetry.")
}

/// Sampler configuration ([`crate::db::DbConfig::telemetry`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Master switch; off by default (sampling costs one registry
    /// snapshot plus a few dozen inserts per sample).
    pub enabled: bool,
    /// Minimum logical ticks between samples. The sampler fires at clock
    /// advances and statement boundaries once this much logical time has
    /// passed since the previous sample.
    pub sample_every: u64,
    /// How long each sample lives, in logical ticks: every sample row is
    /// inserted with `texp = now + retention`, so ordinary expiration
    /// processing retires history with zero retention-specific code.
    pub retention: u64,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            enabled: false,
            sample_every: 8,
            retention: 256,
        }
    }
}

impl TelemetryConfig {
    /// An enabled config with the given cadence and retention.
    #[must_use]
    pub fn enabled(sample_every: u64, retention: u64) -> Self {
        TelemetryConfig {
            enabled: true,
            sample_every,
            retention,
        }
    }
}

/// Point-in-time sampler status ([`crate::db::Database::telemetry_status`]);
/// rendered by the CLI's `\telemetry status`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TelemetryStatus {
    /// Whether the sampler is on.
    pub enabled: bool,
    /// Configured cadence (ticks).
    pub sample_every: u64,
    /// Configured retention (ticks).
    pub retention: u64,
    /// Samples taken since this process opened the database (recovery
    /// replays history as rows, not as sampler activity).
    pub samples: u64,
    /// Logical instant of the most recent sample, if any.
    pub last_sample_at: Option<u64>,
    /// Live rows in `_telemetry.metrics` (shrinks as retention elapses).
    pub metrics_rows: u64,
    /// Live rows in `_telemetry.health`.
    pub health_rows: u64,
}

impl std::fmt::Display for TelemetryStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "sampler: {}  (every {} tick(s), retention {} tick(s))",
            if self.enabled { "on" } else { "off" },
            self.sample_every,
            self.retention
        )?;
        match self.last_sample_at {
            Some(t) => writeln!(f, "samples: {} (last at t={t})", self.samples)?,
            None => writeln!(f, "samples: {}", self.samples)?,
        }
        write!(
            f,
            "history: {} metric row(s), {} health row(s) live",
            self.metrics_rows, self.health_rows
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserved_prefix_is_case_insensitive_and_member_aware() {
        assert!(is_reserved("_telemetry"));
        assert!(is_reserved("_Telemetry.Metrics"));
        assert!(is_reserved("_telemetry.health"));
        assert!(!is_reserved("telemetry"));
        assert!(!is_reserved("_telemetrybis"));
        assert!(!is_reserved("orders"));
    }

    #[test]
    fn status_renders_both_states() {
        let off = TelemetryStatus::default();
        assert!(off.to_string().contains("sampler: off"));
        let on = TelemetryStatus {
            enabled: true,
            sample_every: 4,
            retention: 64,
            samples: 3,
            last_sample_at: Some(12),
            metrics_rows: 90,
            health_rows: 3,
        };
        let s = on.to_string();
        assert!(s.contains("sampler: on"));
        assert!(s.contains("last at t=12"));
        assert!(s.contains("90 metric row(s)"));
    }
}
