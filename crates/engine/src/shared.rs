//! A thread-safe database handle with an optional real-time ticker.
//!
//! The paper's model is logical-time and single-writer; deployments want
//! concurrent sessions and wall-clock expiry. [`SharedDatabase`] wraps a
//! [`Database`] behind a mutex (coarse-grained — the engine's operations
//! are short and CPU-bound), and [`SharedDatabase::start_ticker`] spawns
//! a background thread that maps wall-clock intervals onto logical ticks,
//! so expirations and triggers happen in real time without any session
//! driving the clock.

use crate::db::{Database, DbConfig, DbResult, ExecResult};
use exptime_core::time::Time;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// A cloneable, thread-safe handle to one database.
#[derive(Clone)]
pub struct SharedDatabase {
    inner: Arc<Mutex<Database>>,
}

impl std::fmt::Debug for SharedDatabase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.inner.lock() {
            Ok(db) => write!(f, "SharedDatabase({db:?})"),
            Err(_) => write!(f, "SharedDatabase(<poisoned>)"),
        }
    }
}

impl SharedDatabase {
    /// Wraps a fresh database.
    #[must_use]
    pub fn new(config: DbConfig) -> Self {
        SharedDatabase {
            inner: Arc::new(Mutex::new(Database::new(config))),
        }
    }

    /// Wraps an existing database (e.g. a restored one).
    #[must_use]
    pub fn from_database(db: Database) -> Self {
        SharedDatabase {
            inner: Arc::new(Mutex::new(db)),
        }
    }

    /// Runs a closure with exclusive access to the database.
    ///
    /// # Panics
    ///
    /// Panics if a previous holder panicked while holding the lock.
    pub fn with<R>(&self, f: impl FnOnce(&mut Database) -> R) -> R {
        let mut guard = self.inner.lock().expect("database mutex poisoned");
        f(&mut guard)
    }

    /// Runs a closure with exclusive access *only if the lock is free
    /// right now*; returns `None` without blocking when another session
    /// holds it. The network front-end's degraded read path uses this to
    /// serve texp-valid cached results instead of queueing on a
    /// contended engine.
    ///
    /// # Panics
    ///
    /// Panics if a previous holder panicked while holding the lock.
    pub fn try_with<R>(&self, f: impl FnOnce(&mut Database) -> R) -> Option<R> {
        match self.inner.try_lock() {
            Ok(mut guard) => Some(f(&mut guard)),
            Err(std::sync::TryLockError::WouldBlock) => None,
            Err(std::sync::TryLockError::Poisoned(_)) => panic!("database mutex poisoned"),
        }
    }

    /// Executes one SQL statement.
    ///
    /// # Errors
    ///
    /// As [`Database::execute`].
    pub fn execute(&self, sql: &str) -> DbResult<ExecResult> {
        self.with(|db| db.execute(sql))
    }

    /// The current logical time.
    #[must_use]
    pub fn now(&self) -> Time {
        self.with(|db| db.now())
    }

    /// Advances the logical clock by `delta` ticks.
    pub fn tick(&self, delta: u64) -> Time {
        self.with(|db| db.tick(delta))
    }

    /// Spawns a background thread that advances the logical clock by one
    /// tick every `tick_every` of wall-clock time, processing expirations
    /// and firing triggers as it goes. The ticker stops when the returned
    /// handle is dropped (or [`TickerHandle::stop`] is called).
    #[must_use]
    pub fn start_ticker(&self, tick_every: Duration) -> TickerHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = stop.clone();
        let db = self.clone();
        let thread = std::thread::spawn(move || {
            while !flag.load(Ordering::Relaxed) {
                std::thread::sleep(tick_every);
                if flag.load(Ordering::Relaxed) {
                    break;
                }
                db.tick(1);
            }
        });
        TickerHandle {
            stop,
            thread: Some(thread),
        }
    }
}

/// Stops the background ticker when dropped.
#[derive(Debug)]
pub struct TickerHandle {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl TickerHandle {
    /// Stops the ticker and waits for the thread to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            t.join().ok();
        }
    }
}

impl Drop for TickerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exptime_core::tuple;

    #[test]
    fn concurrent_sessions_share_one_database() {
        let db = SharedDatabase::new(DbConfig::default());
        db.execute("CREATE TABLE t (worker INT, seq INT)").unwrap();
        let mut handles = Vec::new();
        for w in 0..4i64 {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50i64 {
                    db.with(|d| d.insert_ttl("t", tuple![w, i], 1_000)).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let n = db.execute("SELECT * FROM t").unwrap().rows().unwrap().len();
        assert_eq!(n, 200);
        assert_eq!(db.with(|d| d.stats().inserts), 200);
    }

    #[test]
    fn readers_and_writers_interleave_safely() {
        let db = SharedDatabase::new(DbConfig::default());
        db.execute("CREATE TABLE t (k INT, v INT)").unwrap();
        let writer = {
            let db = db.clone();
            std::thread::spawn(move || {
                for i in 0..100i64 {
                    db.with(|d| d.insert_ttl("t", tuple![i, i], 500)).unwrap();
                    if i % 10 == 0 {
                        db.tick(1);
                    }
                }
            })
        };
        let reader = {
            let db = db.clone();
            std::thread::spawn(move || {
                let mut last = 0;
                for _ in 0..100 {
                    let n = db.execute("SELECT * FROM t").unwrap().rows().unwrap().len();
                    assert!(n >= last, "row count is monotone while TTLs are long");
                    last = n;
                }
                last
            })
        };
        writer.join().unwrap();
        let seen = reader.join().unwrap();
        assert!(seen <= 100);
        assert_eq!(
            db.execute("SELECT * FROM t").unwrap().rows().unwrap().len(),
            100
        );
    }

    #[test]
    fn ticker_advances_and_expires_in_real_time() {
        let db = SharedDatabase::new(DbConfig::default());
        db.execute("CREATE TABLE s (k INT)").unwrap();
        db.execute("INSERT INTO s VALUES (1) EXPIRES IN 3 TICKS")
            .unwrap();
        let ticker = db.start_ticker(Duration::from_millis(2));
        // Wait (bounded) for the clock to pass 3.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while db.now() < Time::new(3) {
            assert!(std::time::Instant::now() < deadline, "ticker stalled");
            std::thread::sleep(Duration::from_millis(1));
        }
        ticker.stop();
        assert!(db
            .execute("SELECT * FROM s")
            .unwrap()
            .rows()
            .unwrap()
            .is_empty());
        assert_eq!(db.with(|d| d.stats().expired), 1);
        // After stop, the clock no longer advances.
        let frozen = db.now();
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(db.now(), frozen);
    }

    #[test]
    fn ticker_stops_on_drop() {
        let db = SharedDatabase::new(DbConfig::default());
        {
            let _ticker = db.start_ticker(Duration::from_millis(1));
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            while db.now() == Time::ZERO {
                assert!(std::time::Instant::now() < deadline, "ticker never ticked");
                std::thread::sleep(Duration::from_millis(1));
            }
        } // dropped here
        let frozen = db.now();
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(db.now(), frozen, "dropped ticker must not keep ticking");
    }

    #[test]
    fn from_database_preserves_state() {
        let mut inner = Database::default();
        inner.execute("CREATE TABLE t (k INT)").unwrap();
        inner
            .execute("INSERT INTO t VALUES (7) EXPIRES NEVER")
            .unwrap();
        inner.tick(5);
        let db = SharedDatabase::from_database(inner);
        assert_eq!(db.now(), Time::new(5));
        assert_eq!(
            db.execute("SELECT * FROM t").unwrap().rows().unwrap().len(),
            1
        );
    }
}
