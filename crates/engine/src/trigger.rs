//! Triggers that fire on tuple expiration.
//!
//! The paper (Section 1): "triggers can be supported that fire on
//! expirations … This leads to a seamless integration of expiration into
//! database applications" — e.g. regenerating a user profile when it
//! expires, or renewing a session key. A [`TriggerManager`] holds named
//! callbacks per table; the engine fires them with the expired tuple and
//! the time it expired.

use exptime_core::time::Time;
use exptime_core::tuple::Tuple;
use std::collections::HashMap;

/// An expiration event: a tuple left `table` because its time passed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpirationEvent {
    /// The table the tuple expired from.
    pub table: String,
    /// The expired tuple.
    pub tuple: Tuple,
    /// Its expiration time (the instant it ceased to be current).
    pub texp: Time,
    /// The engine time at which the trigger fired. Equal to `texp` under
    /// eager removal; possibly later under lazy removal — the fidelity gap
    /// experiment E3 measures.
    pub fired_at: Time,
}

/// A trigger callback.
pub type TriggerFn = Box<dyn FnMut(&ExpirationEvent) + Send>;

/// Named expiration triggers, registered per table.
#[derive(Default)]
pub struct TriggerManager {
    triggers: HashMap<String, Vec<(String, TriggerFn)>>,
    /// Every event fired, in order — the audit log tests and experiments
    /// read.
    log: Vec<ExpirationEvent>,
}

impl std::fmt::Debug for TriggerManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TriggerManager")
            .field(
                "triggers",
                &self
                    .triggers
                    .iter()
                    .map(|(t, v)| (t, v.iter().map(|(n, _)| n).collect::<Vec<_>>()))
                    .collect::<Vec<_>>(),
            )
            .field("fired", &self.log.len())
            .finish()
    }
}

impl TriggerManager {
    /// An empty manager.
    #[must_use]
    pub fn new() -> Self {
        TriggerManager::default()
    }

    /// Registers `callback` under `trigger_name` for expirations on
    /// `table`.
    pub fn on_expire(
        &mut self,
        table: impl Into<String>,
        trigger_name: impl Into<String>,
        callback: TriggerFn,
    ) {
        self.triggers
            .entry(table.into().to_ascii_lowercase())
            .or_default()
            .push((trigger_name.into(), callback));
    }

    /// Removes a named trigger; returns whether it existed.
    pub fn drop_trigger(&mut self, table: &str, trigger_name: &str) -> bool {
        if let Some(list) = self.triggers.get_mut(&table.to_ascii_lowercase()) {
            let before = list.len();
            list.retain(|(n, _)| n != trigger_name);
            return list.len() != before;
        }
        false
    }

    /// Fires all triggers for an expiration and appends it to the log.
    pub fn fire(&mut self, event: ExpirationEvent) {
        if let Some(list) = self.triggers.get_mut(&event.table.to_ascii_lowercase()) {
            for (_, f) in list {
                f(&event);
            }
        }
        self.log.push(event);
    }

    /// The full event log, oldest first.
    #[must_use]
    pub fn log(&self) -> &[ExpirationEvent] {
        &self.log
    }

    /// Events for one table.
    pub fn log_for<'a>(&'a self, table: &'a str) -> impl Iterator<Item = &'a ExpirationEvent> {
        self.log
            .iter()
            .filter(move |e| e.table.eq_ignore_ascii_case(table))
    }

    /// Clears the event log (the triggers stay registered).
    pub fn clear_log(&mut self) {
        self.log.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exptime_core::tuple;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn event(table: &str, texp: u64, fired: u64) -> ExpirationEvent {
        ExpirationEvent {
            table: table.into(),
            tuple: tuple![1, 2],
            texp: Time::new(texp),
            fired_at: Time::new(fired),
        }
    }

    #[test]
    fn triggers_fire_for_their_table_only() {
        let mut tm = TriggerManager::new();
        let count = Arc::new(AtomicUsize::new(0));
        let c = count.clone();
        tm.on_expire(
            "pol",
            "count_expiries",
            Box::new(move |_| {
                c.fetch_add(1, Ordering::SeqCst);
            }),
        );
        tm.fire(event("pol", 5, 5));
        tm.fire(event("el", 5, 5));
        tm.fire(event("POL", 7, 7)); // case-insensitive table match
        assert_eq!(count.load(Ordering::SeqCst), 2);
        assert_eq!(tm.log().len(), 3);
        assert_eq!(tm.log_for("pol").count(), 2);
    }

    #[test]
    fn triggers_receive_event_details() {
        let mut tm = TriggerManager::new();
        let seen: Arc<std::sync::Mutex<Vec<(Time, Time)>>> =
            Arc::new(std::sync::Mutex::new(Vec::new()));
        let s = seen.clone();
        tm.on_expire(
            "pol",
            "capture",
            Box::new(move |e| {
                s.lock().unwrap().push((e.texp, e.fired_at));
            }),
        );
        tm.fire(event("pol", 5, 8)); // lazy: fired later than texp
        let got = seen.lock().unwrap();
        assert_eq!(got[0], (Time::new(5), Time::new(8)));
    }

    #[test]
    fn drop_trigger() {
        let mut tm = TriggerManager::new();
        let count = Arc::new(AtomicUsize::new(0));
        let c = count.clone();
        tm.on_expire(
            "pol",
            "t1",
            Box::new(move |_| {
                c.fetch_add(1, Ordering::SeqCst);
            }),
        );
        assert!(tm.drop_trigger("pol", "t1"));
        assert!(!tm.drop_trigger("pol", "t1"));
        assert!(!tm.drop_trigger("el", "t1"));
        tm.fire(event("pol", 5, 5));
        assert_eq!(count.load(Ordering::SeqCst), 0, "dropped trigger is gone");
        assert_eq!(tm.log().len(), 1, "log still records the event");
    }

    #[test]
    fn clear_log() {
        let mut tm = TriggerManager::new();
        tm.fire(event("pol", 1, 1));
        tm.clear_log();
        assert!(tm.log().is_empty());
    }
}
