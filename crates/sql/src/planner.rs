//! Planning: SQL AST → expiration-time algebra expressions.
//!
//! The planner resolves names against a [`SchemaProvider`], folds `FROM`
//! lists into left-deep products, `WHERE`/`ON` conditions into selections,
//! `GROUP BY` + aggregate items into the paper's aggregation operator
//! followed by a projection (exactly the `πexp(aggexp(R))` shape of the
//! paper's Figure 3(a)), and compound `UNION`/`EXCEPT`/`INTERSECT` into the
//! set operators.

use crate::ast::*;
use crate::error::SqlError;
use exptime_core::aggregate::AggFunc;
use exptime_core::algebra::Expr;
use exptime_core::predicate::{Operand, Predicate};
use exptime_core::schema::Schema;

/// Resolves table names to schemas during planning.
pub trait SchemaProvider {
    /// The schema of `name`, or a plan error.
    ///
    /// # Errors
    ///
    /// Returns [`SqlError::Plan`] for unknown names.
    fn schema_of(&self, name: &str) -> Result<Schema, SqlError>;
}

impl SchemaProvider for exptime_core::catalog::Catalog {
    fn schema_of(&self, name: &str) -> Result<Schema, SqlError> {
        self.get(name)
            .map(|r| r.schema().clone())
            .map_err(|_| SqlError::plan(format!("unknown relation `{name}`")))
    }
}

/// A name-resolution scope: the tables of one `FROM` list with their
/// attribute offsets in the concatenated row.
struct Scope {
    tables: Vec<(String, Schema, usize)>,
    arity: usize,
}

impl Scope {
    fn build(from: &[String], provider: &dyn SchemaProvider) -> Result<Scope, SqlError> {
        let mut tables = Vec::new();
        let mut offset = 0;
        for name in from {
            let schema = provider.schema_of(name)?;
            let arity = schema.arity();
            tables.push((name.clone(), schema, offset));
            offset += arity;
        }
        Ok(Scope {
            tables,
            arity: offset,
        })
    }

    /// Resolves a column reference to an absolute position.
    fn resolve(&self, col: &ColumnRef) -> Result<usize, SqlError> {
        match &col.table {
            Some(t) => {
                let (_, schema, offset) = self
                    .tables
                    .iter()
                    .find(|(name, _, _)| name.eq_ignore_ascii_case(t))
                    .ok_or_else(|| SqlError::Plan {
                        message: format!("unknown table `{t}` in column `{col}`"),
                        span: col.span,
                    })?;
                let pos = schema.position(&col.column).ok_or_else(|| SqlError::Plan {
                    message: format!("unknown column `{col}`"),
                    span: col.span,
                })?;
                Ok(offset + pos)
            }
            None => {
                let mut hits = Vec::new();
                for (name, schema, offset) in &self.tables {
                    if let Some(pos) = schema.position(&col.column) {
                        hits.push((name.clone(), offset + pos));
                    }
                }
                match hits.len() {
                    0 => Err(SqlError::Plan {
                        message: format!("unknown column `{col}`"),
                        span: col.span,
                    }),
                    1 => Ok(hits[0].1),
                    _ => Err(SqlError::Plan {
                        message: format!(
                            "ambiguous column `{col}`: candidates in {}",
                            hits.iter()
                                .map(|(t, _)| t.as_str())
                                .collect::<Vec<_>>()
                                .join(", ")
                        ),
                        span: col.span,
                    }),
                }
            }
        }
    }
}

/// Plans a condition into an algebra predicate over a scope.
fn plan_cond(cond: &Cond, scope: &Scope) -> Result<Predicate, SqlError> {
    Ok(match cond {
        Cond::Cmp { left, op, right } => {
            let l = plan_scalar(left, scope)?;
            let r = plan_scalar(right, scope)?;
            Predicate::Cmp {
                left: l,
                op: *op,
                right: r,
            }
        }
        Cond::And(a, b) => plan_cond(a, scope)?.and(plan_cond(b, scope)?),
        Cond::Or(a, b) => plan_cond(a, scope)?.or(plan_cond(b, scope)?),
        Cond::Not(a) => plan_cond(a, scope)?.not(),
    })
}

fn plan_scalar(s: &Scalar, scope: &Scope) -> Result<Operand, SqlError> {
    Ok(match s {
        Scalar::Column(c) => Operand::Attr(scope.resolve(c)?),
        Scalar::Literal(l) => Operand::Const(l.to_value()),
        Scalar::Aggregate { func, .. } => {
            return Err(SqlError::plan(format!(
                "aggregate {func:?} is only allowed in HAVING"
            )))
        }
    })
}

fn plan_agg(func: AggName, arg: Option<usize>) -> Result<AggFunc, SqlError> {
    Ok(match (func, arg) {
        (AggName::Count, _) => AggFunc::Count,
        (AggName::Sum, Some(i)) => AggFunc::Sum(i),
        (AggName::Avg, Some(i)) => AggFunc::Avg(i),
        (AggName::Min, Some(i)) => AggFunc::Min(i),
        (AggName::Max, Some(i)) => AggFunc::Max(i),
        (f, None) => return Err(SqlError::plan(format!("{f:?} requires a column argument"))),
    })
}

/// Plans one query body.
fn plan_body(body: &QueryBody, provider: &dyn SchemaProvider) -> Result<Expr, SqlError> {
    if body.from.is_empty() {
        return Err(SqlError::Plan {
            message: "FROM list is empty".into(),
            span: body.span,
        });
    }
    let scope = Scope::build(&body.from, provider)?;

    // Left-deep product of the FROM tables.
    let mut expr = Expr::base(&body.from[0]);
    for name in &body.from[1..] {
        expr = expr.product(Expr::base(name));
    }

    if let Some(cond) = &body.selection {
        expr = expr.select(plan_cond(cond, &scope)?);
    }

    // Split projection into aggregates and plain columns (keeping each
    // plain column's source span for diagnostics).
    let mut aggs: Vec<(AggName, Option<usize>)> = Vec::new();
    let mut plain: Vec<(usize, crate::span::Span)> = Vec::new();
    let mut wildcard = false;
    for item in &body.projection {
        match item {
            SelectItem::Wildcard => wildcard = true,
            SelectItem::Column(c) => plain.push((scope.resolve(c)?, c.span)),
            SelectItem::Aggregate { func, arg, .. } => {
                let pos = arg.as_ref().map(|c| scope.resolve(c)).transpose()?;
                aggs.push((*func, pos));
            }
        }
    }

    let grouped = !body.group_by.is_empty() || !aggs.is_empty();
    if !grouped {
        if wildcard {
            return Ok(expr);
        }
        return Ok(expr.project(plain.into_iter().map(|(p, _)| p).collect::<Vec<_>>()));
    }

    if wildcard {
        return Err(SqlError::Plan {
            message: "`*` cannot be combined with GROUP BY / aggregates".into(),
            span: body.span,
        });
    }
    let group_positions: Vec<usize> = body
        .group_by
        .iter()
        .map(|c| scope.resolve(c))
        .collect::<Result<_, _>>()?;
    // SQL rule: plain projected columns must be grouped.
    for &(p, span) in &plain {
        if !group_positions.contains(&p) {
            return Err(SqlError::Plan {
                message: format!(
                    "projected column #{} is neither aggregated nor in GROUP BY",
                    p + 1
                ),
                span,
            });
        }
    }
    // HAVING may introduce aggregates not in the SELECT list; they are
    // computed alongside (joined in) and filtered on, but not projected.
    let mut having_aggs: Vec<(AggName, Option<usize>)> = Vec::new();
    if let Some(h) = &body.having {
        collect_having_aggs(h, &scope, &mut having_aggs)?;
    }
    if aggs.is_empty() && having_aggs.is_empty() {
        return Err(SqlError::Plan {
            message: "GROUP BY without an aggregate".into(),
            span: body.span,
        });
    }
    let mut all_aggs: Vec<(AggName, Option<usize>)> = aggs.clone();
    for ha in &having_aggs {
        if !all_aggs.contains(ha) {
            all_aggs.push(*ha);
        }
    }
    let funcs: Vec<AggFunc> = all_aggs
        .iter()
        .map(|&(func, arg)| plan_agg(func, arg))
        .collect::<Result<_, _>>()?;
    let input_arity = scope.arity;

    // One aggregation operator per function (the paper's operator takes a
    // single `f`), Klug-style outputs joined 1:1 on the *full* input tuple
    // (every output keeps all input attributes — Eq. 8), so each input row
    // ends up with all its aggregate values side by side. The join's
    // min-texp rule (Eq. 5 via Eq. 2) is exactly right: the combined row
    // is valid while every aggregate value on it is.
    let mut combined = expr.clone().aggregate(group_positions.clone(), funcs[0]);
    // After joining k aggregates, the layout is:
    //   input attrs (arity A), agg_1, [input attrs, agg_2], …
    // with agg_i at position i*(A+1) + A.
    for (i, &f) in funcs.iter().enumerate().skip(1) {
        let rhs = expr.clone().aggregate(group_positions.clone(), f);
        // The accumulated left side holds i copies of (input attrs + one
        // aggregate column).
        let lhs_arity = (input_arity + 1) * i;
        let mut on = Predicate::True;
        for a in 0..input_arity {
            let eq = Predicate::attr_eq_attr(a, lhs_arity + a);
            on = if a == 0 { eq } else { on.and(eq) };
        }
        combined = combined.join(rhs, on);
    }

    // HAVING filters the combined layout before projection. Aggregate
    // scalars resolve to their slot i*(A+1) + A; column scalars must be
    // grouping columns (first copy of the input attributes).
    if let Some(h) = &body.having {
        let pred = plan_having_cond(h, &scope, &all_aggs, &group_positions, input_arity)?;
        combined = combined.select(pred);
    }

    // Project the selected items in their written order. Group columns
    // come from the first copy of the input attributes; the SELECT list's
    // aggregates are a prefix of `all_aggs`, so the i-th SELECT aggregate
    // sits at i*(A+1) + A.
    let mut out_positions = Vec::with_capacity(body.projection.len());
    for item in &body.projection {
        match item {
            SelectItem::Column(c) => out_positions.push(scope.resolve(c)?),
            SelectItem::Aggregate { func, arg, .. } => {
                let key = (*func, arg.as_ref().map(|c| scope.resolve(c)).transpose()?);
                let slot = all_aggs
                    .iter()
                    .position(|a| *a == key)
                    .expect("SELECT aggregates are in all_aggs");
                out_positions.push(slot * (input_arity + 1) + input_arity);
            }
            SelectItem::Wildcard => unreachable!("rejected above"),
        }
    }
    Ok(combined.project(out_positions))
}

/// Collects the aggregate applications of a HAVING condition, resolving
/// their argument columns against the scope.
fn collect_having_aggs(
    cond: &Cond,
    scope: &Scope,
    out: &mut Vec<(AggName, Option<usize>)>,
) -> Result<(), SqlError> {
    let mut visit_scalar = |s: &Scalar| -> Result<(), SqlError> {
        if let Scalar::Aggregate { func, arg } = s {
            let key = (*func, arg.as_ref().map(|c| scope.resolve(c)).transpose()?);
            if !out.contains(&key) {
                out.push(key);
            }
        }
        Ok(())
    };
    match cond {
        Cond::Cmp { left, right, .. } => {
            visit_scalar(left)?;
            visit_scalar(right)?;
        }
        Cond::And(a, b) | Cond::Or(a, b) => {
            collect_having_aggs(a, scope, out)?;
            collect_having_aggs(b, scope, out)?;
        }
        Cond::Not(a) => collect_having_aggs(a, scope, out)?,
    }
    Ok(())
}

/// Plans a HAVING condition over the combined multi-aggregate layout.
fn plan_having_cond(
    cond: &Cond,
    scope: &Scope,
    all_aggs: &[(AggName, Option<usize>)],
    group_positions: &[usize],
    input_arity: usize,
) -> Result<Predicate, SqlError> {
    let scalar = |s: &Scalar| -> Result<Operand, SqlError> {
        Ok(match s {
            Scalar::Literal(l) => Operand::Const(l.to_value()),
            Scalar::Column(c) => {
                let pos = scope.resolve(c)?;
                if !group_positions.contains(&pos) {
                    return Err(SqlError::Plan {
                        message: format!(
                            "HAVING column `{c}` is neither aggregated nor in GROUP BY"
                        ),
                        span: c.span,
                    });
                }
                Operand::Attr(pos)
            }
            Scalar::Aggregate { func, arg } => {
                let key = (*func, arg.as_ref().map(|c| scope.resolve(c)).transpose()?);
                let slot = all_aggs
                    .iter()
                    .position(|a| *a == key)
                    .expect("collected beforehand");
                Operand::Attr(slot * (input_arity + 1) + input_arity)
            }
        })
    };
    Ok(match cond {
        Cond::Cmp { left, op, right } => Predicate::Cmp {
            left: scalar(left)?,
            op: *op,
            right: scalar(right)?,
        },
        Cond::And(a, b) => plan_having_cond(a, scope, all_aggs, group_positions, input_arity)?.and(
            plan_having_cond(b, scope, all_aggs, group_positions, input_arity)?,
        ),
        Cond::Or(a, b) => plan_having_cond(a, scope, all_aggs, group_positions, input_arity)?.or(
            plan_having_cond(b, scope, all_aggs, group_positions, input_arity)?,
        ),
        Cond::Not(a) => plan_having_cond(a, scope, all_aggs, group_positions, input_arity)?.not(),
    })
}

/// Plans a full query (body + compounds) into an algebra expression.
///
/// # Errors
///
/// Returns [`SqlError::Plan`] on name-resolution or shape errors.
pub fn plan_query(query: &Query, provider: &dyn SchemaProvider) -> Result<Expr, SqlError> {
    let mut expr = plan_body(&query.body, provider)?;
    for (op, body) in &query.compound {
        let rhs = plan_body(body, provider)?;
        expr = match op {
            SetOp::Union => expr.union(rhs),
            SetOp::Except => expr.difference(rhs),
            SetOp::Intersect => expr.intersect(rhs),
        };
    }
    Ok(expr)
}

/// Plans a `WHERE` clause against a single table (used by `DELETE` and
/// `UPDATE … SET EXPIRES`).
///
/// # Errors
///
/// Returns [`SqlError::Plan`] on name-resolution errors.
pub fn plan_table_cond(
    cond: &Cond,
    table: &str,
    provider: &dyn SchemaProvider,
) -> Result<Predicate, SqlError> {
    let scope = Scope::build(&[table.to_string()], provider)?;
    plan_cond(cond, &scope)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use exptime_core::catalog::Catalog;
    use exptime_core::predicate::CmpOp;
    use exptime_core::relation::Relation;
    use exptime_core::value::ValueType;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            "pol",
            Relation::new(Schema::of(&[
                ("uid", ValueType::Int),
                ("deg", ValueType::Int),
            ])),
        );
        c.register(
            "el",
            Relation::new(Schema::of(&[
                ("uid", ValueType::Int),
                ("deg", ValueType::Int),
            ])),
        );
        c
    }

    fn plan(sql: &str) -> Result<Expr, SqlError> {
        let Statement::Select(q) = parse(sql).unwrap() else {
            panic!("not a query")
        };
        plan_query(&q, &catalog())
    }

    #[test]
    fn simple_select_star() {
        let e = plan("SELECT * FROM pol").unwrap();
        assert_eq!(e, Expr::base("pol"));
    }

    #[test]
    fn projection_and_selection() {
        let e = plan("SELECT uid FROM pol WHERE deg = 25").unwrap();
        assert_eq!(
            e,
            Expr::base("pol")
                .select(Predicate::attr_eq_const(1, 25))
                .project([0])
        );
    }

    #[test]
    fn join_via_on_condition() {
        let e = plan("SELECT * FROM pol JOIN el ON pol.uid = el.uid").unwrap();
        assert_eq!(
            e,
            Expr::base("pol")
                .product(Expr::base("el"))
                .select(Predicate::attr_eq_attr(0, 2))
        );
    }

    #[test]
    fn qualified_and_ambiguous_columns() {
        let e = plan("SELECT pol.deg, el.deg FROM pol, el").unwrap();
        assert_eq!(
            e,
            Expr::base("pol").product(Expr::base("el")).project([1, 3])
        );
        let err = plan("SELECT deg FROM pol, el").unwrap_err();
        assert!(err.to_string().contains("ambiguous"), "{err}");
        let err = plan("SELECT nope FROM pol").unwrap_err();
        assert!(err.to_string().contains("unknown column"));
        let err = plan("SELECT x.deg FROM pol").unwrap_err();
        assert!(err.to_string().contains("unknown table"));
    }

    #[test]
    fn group_by_count_matches_figure_3a_shape() {
        // πexp_{2,3}(aggexp_{{2},count}(Pol))
        let e = plan("SELECT deg, COUNT(*) FROM pol GROUP BY deg").unwrap();
        assert_eq!(
            e,
            Expr::base("pol")
                .aggregate([1], AggFunc::Count)
                .project([1, 2])
        );
        assert_eq!(
            e.to_string(),
            "πexp_{2,3}(aggexp_{{2},count}(Pol))".replace("Pol", "pol")
        );
    }

    #[test]
    fn aggregate_functions_map() {
        for (sql, f) in [
            (
                "SELECT deg, SUM(uid) FROM pol GROUP BY deg",
                AggFunc::Sum(0),
            ),
            (
                "SELECT deg, AVG(uid) FROM pol GROUP BY deg",
                AggFunc::Avg(0),
            ),
            (
                "SELECT deg, MIN(uid) FROM pol GROUP BY deg",
                AggFunc::Min(0),
            ),
            (
                "SELECT deg, MAX(uid) FROM pol GROUP BY deg",
                AggFunc::Max(0),
            ),
            (
                "SELECT deg, COUNT(uid) FROM pol GROUP BY deg",
                AggFunc::Count,
            ),
        ] {
            let e = plan(sql).unwrap();
            let Expr::Project { input, .. } = e else {
                panic!()
            };
            let Expr::Aggregate { func, .. } = *input else {
                panic!()
            };
            assert_eq!(func, f, "{sql}");
        }
    }

    #[test]
    fn aggregate_without_group_by() {
        let e = plan("SELECT COUNT(*) FROM pol").unwrap();
        assert_eq!(
            e,
            Expr::base("pol")
                .aggregate(Vec::new(), AggFunc::Count)
                .project([2])
        );
    }

    #[test]
    fn grouped_shape_errors() {
        assert!(plan("SELECT uid, COUNT(*) FROM pol GROUP BY deg")
            .unwrap_err()
            .to_string()
            .contains("neither aggregated nor in GROUP BY"));

        assert!(plan("SELECT * FROM pol GROUP BY deg")
            .unwrap_err()
            .to_string()
            .contains("*"));
        assert!(plan("SELECT deg FROM pol GROUP BY deg")
            .unwrap_err()
            .to_string()
            .contains("without an aggregate"));
    }

    #[test]
    fn multi_aggregate_plans_as_joined_single_aggregates() {
        let e = plan("SELECT deg, COUNT(*), SUM(uid) FROM pol GROUP BY deg").unwrap();
        // π over a join of two Klug-style aggregates on the full input
        // tuple: positions — deg at 1, count at 2, sum at 3+2 = 5.
        let agg = |f: AggFunc| Expr::base("pol").aggregate([1], f);
        let on = Predicate::attr_eq_attr(0, 3).and(Predicate::attr_eq_attr(1, 4));
        assert_eq!(
            e,
            agg(AggFunc::Count)
                .join(agg(AggFunc::Sum(0)), on)
                .project([1, 2, 5])
        );
    }

    #[test]
    fn three_aggregates_project_the_right_columns() {
        let e = plan("SELECT deg, MIN(uid), MAX(uid), COUNT(*) FROM pol GROUP BY deg");
        assert!(e.is_ok(), "{e:?}");
        let Expr::Project { positions, .. } = e.unwrap() else {
            panic!()
        };
        // A = 2: aggregates at 2, 5, 8; deg at 1.
        assert_eq!(positions, vec![1, 2, 5, 8]);
    }

    #[test]
    fn compound_set_operations() {
        let e = plan("SELECT uid FROM pol EXCEPT SELECT uid FROM el").unwrap();
        assert_eq!(
            e,
            Expr::base("pol")
                .project([0])
                .difference(Expr::base("el").project([0]))
        );
        let e = plan("SELECT uid FROM pol UNION SELECT uid FROM el INTERSECT SELECT uid FROM pol")
            .unwrap();
        // Left-associated.
        assert!(matches!(e, Expr::Intersect { .. }));
    }

    #[test]
    fn where_condition_shapes() {
        let e = plan("SELECT * FROM pol WHERE uid = 1 AND deg > 20 OR NOT deg <= 5").unwrap();
        let Expr::Select { predicate, .. } = e else {
            panic!()
        };
        assert!(matches!(predicate, Predicate::Or(_, _)));
        // Literal on the left works too.
        let e = plan("SELECT * FROM pol WHERE 25 = deg").unwrap();
        let Expr::Select { predicate, .. } = e else {
            panic!()
        };
        assert_eq!(
            predicate,
            Predicate::Cmp {
                left: Operand::Const(exptime_core::value::Value::Int(25)),
                op: CmpOp::Eq,
                right: Operand::Attr(1),
            }
        );
    }

    #[test]
    fn plan_table_cond_for_delete() {
        let p = plan_table_cond(
            &Cond::Cmp {
                left: Scalar::Column(ColumnRef::new(None, "uid")),
                op: CmpOp::Eq,
                right: Scalar::Literal(Literal::Int(1)),
            },
            "pol",
            &catalog(),
        )
        .unwrap();
        assert_eq!(p, Predicate::attr_eq_const(0, 1));
    }

    #[test]
    fn unknown_relation_errors() {
        assert!(plan("SELECT * FROM missing")
            .unwrap_err()
            .to_string()
            .contains("unknown relation"));
    }
}
