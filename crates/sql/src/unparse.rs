//! Rendering AST nodes back to SQL text.
//!
//! Used by the engine's dump/restore (view definitions are replayed as
//! SQL) and property-tested against the parser: `parse(unparse(ast)) ==
//! ast`.

use crate::ast::*;
use exptime_core::predicate::CmpOp;
use exptime_core::value::ValueType;
use std::fmt::Write as _;

/// Renders a literal, such that the lexer reads back the same value.
#[must_use]
pub fn literal_to_sql(lit: &Literal) -> String {
    match lit {
        Literal::Int(v) => v.to_string(),
        Literal::Float(v) => {
            // Ensure a decimal point so it lexes as a float again.
            let s = v.to_string();
            if s.contains('.') || s.contains('e') {
                s
            } else {
                format!("{s}.0")
            }
        }
        Literal::Str(s) => format!("'{}'", s.replace('\'', "''")),
        Literal::Bool(true) => "TRUE".to_string(),
        Literal::Bool(false) => "FALSE".to_string(),
    }
}

fn agg_name(func: &AggName) -> &'static str {
    match func {
        AggName::Count => "COUNT",
        AggName::Sum => "SUM",
        AggName::Avg => "AVG",
        AggName::Min => "MIN",
        AggName::Max => "MAX",
    }
}

fn scalar_to_sql(s: &Scalar) -> String {
    match s {
        Scalar::Column(c) => c.to_string(),
        Scalar::Literal(l) => literal_to_sql(l),
        Scalar::Aggregate { func, arg } => match arg {
            Some(c) => format!("{}({c})", agg_name(func)),
            None => format!("{}(*)", agg_name(func)),
        },
    }
}

fn cmp_to_sql(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "=",
        CmpOp::Ne => "<>",
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
    }
}

/// Renders a condition (fully parenthesised, so precedence is explicit).
#[must_use]
pub fn cond_to_sql(c: &Cond) -> String {
    match c {
        Cond::Cmp { left, op, right } => format!(
            "{} {} {}",
            scalar_to_sql(left),
            cmp_to_sql(*op),
            scalar_to_sql(right)
        ),
        Cond::And(a, b) => format!("({} AND {})", cond_to_sql(a), cond_to_sql(b)),
        Cond::Or(a, b) => format!("({} OR {})", cond_to_sql(a), cond_to_sql(b)),
        Cond::Not(a) => format!("NOT ({})", cond_to_sql(a)),
    }
}

fn item_to_sql(i: &SelectItem) -> String {
    match i {
        SelectItem::Wildcard => "*".to_string(),
        SelectItem::Column(c) => c.to_string(),
        SelectItem::Aggregate { func, arg, .. } => match arg {
            Some(c) => format!("{}({c})", agg_name(func)),
            None => format!("{}(*)", agg_name(func)),
        },
    }
}

fn body_to_sql(b: &QueryBody) -> String {
    let mut out = String::from("SELECT ");
    out.push_str(
        &b.projection
            .iter()
            .map(item_to_sql)
            .collect::<Vec<_>>()
            .join(", "),
    );
    out.push_str(" FROM ");
    out.push_str(&b.from.join(", "));
    if let Some(sel) = &b.selection {
        let _ = write!(out, " WHERE {}", cond_to_sql(sel));
    }
    if !b.group_by.is_empty() {
        let _ = write!(
            out,
            " GROUP BY {}",
            b.group_by
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    if let Some(h) = &b.having {
        let _ = write!(out, " HAVING {}", cond_to_sql(h));
    }
    out
}

/// Renders a full query.
#[must_use]
pub fn query_to_sql(q: &Query) -> String {
    let mut out = body_to_sql(&q.body);
    for (op, body) in &q.compound {
        let kw = match op {
            SetOp::Union => "UNION",
            SetOp::Except => "EXCEPT",
            SetOp::Intersect => "INTERSECT",
        };
        let _ = write!(out, " {kw} {}", body_to_sql(body));
    }
    if !q.order_by.is_empty() {
        let _ = write!(
            out,
            " ORDER BY {}",
            q.order_by
                .iter()
                .map(|(c, desc)| if *desc {
                    format!("{c} DESC")
                } else {
                    c.to_string()
                })
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    if let Some(n) = q.limit {
        let _ = write!(out, " LIMIT {n}");
    }
    out
}

fn expires_to_sql(e: Expires) -> String {
    match e {
        Expires::Default => " EXPIRES DEFAULT".to_string(),
        Expires::Never => " EXPIRES NEVER".to_string(),
        Expires::At(t) => format!(" EXPIRES AT {t}"),
        Expires::In(d) => format!(" EXPIRES IN {d} TICKS"),
    }
}

/// Renders a `TTL` clause (no leading space).
#[must_use]
pub fn ttl_clause_to_sql(c: &TtlClause) -> String {
    let mut out = format!("TTL {} TICKS", c.ttl);
    match c.sliding {
        Sliding::Absolute => {}
        Sliding::OnModify => out.push_str(" SLIDING ON MODIFY"),
        Sliding::OnAccess => out.push_str(" SLIDING ON ACCESS"),
    }
    if let Some(cl) = c.clamp {
        let _ = write!(out, " CLAMP {}..{}", cl.min, cl.max);
    }
    out
}

fn type_to_sql(t: ValueType) -> &'static str {
    match t {
        ValueType::Int => "INT",
        ValueType::Float => "FLOAT",
        ValueType::Str => "TEXT",
        ValueType::Bool => "BOOL",
    }
}

/// Renders a statement (no trailing semicolon).
#[must_use]
pub fn statement_to_sql(s: &Statement) -> String {
    match s {
        Statement::CreateTable { name, columns, ttl } => format!(
            "CREATE TABLE {name} ({}){}",
            columns
                .iter()
                .map(|(n, t)| format!("{n} {}", type_to_sql(*t)))
                .collect::<Vec<_>>()
                .join(", "),
            match ttl {
                Some(c) => format!(" {}", ttl_clause_to_sql(c)),
                None => String::new(),
            }
        ),
        Statement::DropTable { name } => format!("DROP TABLE {name}"),
        Statement::CreateView {
            name,
            materialized,
            query,
        } => format!(
            "CREATE {}VIEW {name} AS {}",
            if *materialized { "MATERIALIZED " } else { "" },
            query_to_sql(query)
        ),
        Statement::DropView { name } => format!("DROP VIEW {name}"),
        Statement::Insert {
            table,
            rows,
            expires,
        } => format!(
            "INSERT INTO {table} VALUES {}{}",
            rows.iter()
                .map(|row| format!(
                    "({})",
                    row.iter()
                        .map(literal_to_sql)
                        .collect::<Vec<_>>()
                        .join(", ")
                ))
                .collect::<Vec<_>>()
                .join(", "),
            expires_to_sql(*expires)
        ),
        Statement::Delete { table, predicate } => match predicate {
            Some(p) => format!("DELETE FROM {table} WHERE {}", cond_to_sql(p)),
            None => format!("DELETE FROM {table}"),
        },
        Statement::UpdateExpiration {
            table,
            expires,
            predicate,
        } => {
            let mut out = format!("UPDATE {table} SET{}", expires_to_sql(*expires));
            if let Some(p) = predicate {
                let _ = write!(out, " WHERE {}", cond_to_sql(p));
            }
            out
        }
        Statement::AlterTtl { table, ttl } => match ttl {
            Some(c) => format!("ALTER TABLE {table} SET {}", ttl_clause_to_sql(c)),
            None => format!("ALTER TABLE {table} SET TTL NONE"),
        },
        Statement::ShowTtl { table } => match table {
            Some(t) => format!("SHOW TTL FOR {t}"),
            None => "SHOW TTL".to_string(),
        },
        Statement::Audit => "EXPLAIN AUDIT".to_string(),
        Statement::Select(q) => query_to_sql(q),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// parse ∘ unparse ∘ parse = parse, over a corpus covering every
    /// statement form.
    #[test]
    fn roundtrip_corpus() {
        let corpus = [
            "CREATE TABLE pol (uid INT, deg INT, name TEXT, hot BOOL, w FLOAT)",
            "DROP TABLE pol",
            "CREATE VIEW v AS SELECT uid FROM pol",
            "CREATE MATERIALIZED VIEW v AS SELECT deg, COUNT(*) FROM pol GROUP BY deg",
            "DROP VIEW v",
            "INSERT INTO pol VALUES (1, 25), (2, -3) EXPIRES AT 10",
            "INSERT INTO pol VALUES (1.5, 'it''s', TRUE, FALSE) EXPIRES IN 5 TICKS",
            "INSERT INTO pol VALUES (1) EXPIRES NEVER",
            "INSERT INTO pol VALUES (1) EXPIRES DEFAULT",
            "INSERT INTO pol VALUES (1)",
            "CREATE TABLE sess (sid INT) TTL 30 TICKS SLIDING ON ACCESS CLAMP 5..400",
            "CREATE TABLE sess (sid INT) TTL 30 SLIDING",
            "CREATE TABLE sess (sid INT) TTL 7 CLAMP 0..9",
            "ALTER TABLE sess SET TTL 60 TICKS SLIDING ON MODIFY",
            "ALTER TABLE sess SET TTL NONE",
            "SHOW TTL",
            "SHOW TTL FOR sess",
            "EXPLAIN AUDIT",
            "UPDATE pol SET EXPIRES DEFAULT WHERE uid = 1",
            "DELETE FROM pol WHERE uid = 1 AND deg > 2",
            "DELETE FROM pol",
            "UPDATE pol SET EXPIRES AT 99 WHERE uid = 1",
            "UPDATE pol SET EXPIRES NEVER",
            "SELECT * FROM pol",
            "SELECT uid, deg FROM pol WHERE NOT (deg <= 5) OR uid <> 2",
            "SELECT pol.uid FROM pol, el WHERE pol.uid = el.uid",
            "SELECT deg, MIN(uid) FROM pol WHERE deg >= 0 GROUP BY deg",
            "SELECT deg, COUNT(*) FROM pol GROUP BY deg HAVING COUNT(*) > 1",
            "SELECT deg, SUM(uid) FROM pol GROUP BY deg HAVING (SUM(uid) >= 3 AND deg < 40)",
            "SELECT uid FROM pol EXCEPT SELECT uid FROM el UNION SELECT uid FROM x",
            "SELECT uid FROM pol INTERSECT SELECT uid FROM el",
            "SELECT uid, deg FROM pol ORDER BY deg DESC, uid LIMIT 5",
            "SELECT uid FROM pol EXCEPT SELECT uid FROM el ORDER BY uid",
            "SELECT * FROM pol LIMIT 0",
        ];
        for sql in corpus {
            let ast1 = parse(sql).unwrap_or_else(|e| panic!("corpus parse {sql}: {e}"));
            let rendered = statement_to_sql(&ast1);
            let ast2 =
                parse(&rendered).unwrap_or_else(|e| panic!("re-parse failed for {rendered}: {e}"));
            assert_eq!(ast1, ast2, "roundtrip changed AST:\n  {sql}\n  {rendered}");
        }
    }

    #[test]
    fn literals_relex_exactly() {
        for (lit, expect) in [
            (Literal::Int(-7), "-7"),
            (Literal::Float(2.5), "2.5"),
            (Literal::Float(3.0), "3.0"),
            (Literal::Str("a'b".into()), "'a''b'"),
            (Literal::Bool(true), "TRUE"),
        ] {
            assert_eq!(literal_to_sql(&lit), expect);
        }
    }

    #[test]
    fn join_statements_unparse_as_comma_plus_where() {
        // The parser folds JOIN…ON into FROM-list + WHERE; unparsing
        // yields the equivalent comma form, which re-parses to the same
        // AST.
        let ast1 = parse("SELECT * FROM a JOIN b ON a.x = b.y WHERE a.v = 1").unwrap();
        let rendered = statement_to_sql(&ast1);
        assert!(rendered.contains("FROM a, b"), "{rendered}");
        let ast2 = parse(&rendered).unwrap();
        assert_eq!(ast1, ast2);
    }
}
