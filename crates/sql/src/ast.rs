//! The SQL abstract syntax tree.
//!
//! Nodes that diagnostics point at carry a [`Span`] into the source text.
//! Spans never affect `PartialEq`/`Hash` (see [`crate::span`]), so
//! API-built ASTs using [`Span::DUMMY`] compare equal to parsed ones.

use crate::span::Span;
use exptime_core::predicate::CmpOp;
use exptime_core::value::{Value, ValueType};

pub use exptime_policy::{Clamp, Sliding};

/// A literal constant.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Literal {
    /// Converts to a core [`Value`].
    #[must_use]
    pub fn to_value(&self) -> Value {
        match self {
            Literal::Int(v) => Value::Int(*v),
            Literal::Float(v) => Value::float(*v),
            Literal::Str(s) => Value::str(s.as_str()),
            Literal::Bool(b) => Value::Bool(*b),
        }
    }
}

/// A possibly-qualified column reference `table.column` or `column`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnRef {
    /// Optional table qualifier.
    pub table: Option<String>,
    /// Column name.
    pub column: String,
    /// Source span of the full reference (dummy for API-built ASTs).
    pub span: Span,
}

impl ColumnRef {
    /// A column reference without a source position.
    #[must_use]
    pub fn new(table: Option<String>, column: impl Into<String>) -> ColumnRef {
        ColumnRef {
            table,
            column: column.into(),
            span: Span::DUMMY,
        }
    }
}

impl std::fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

/// A scalar term in a condition.
#[derive(Debug, Clone, PartialEq)]
pub enum Scalar {
    /// Column reference.
    Column(ColumnRef),
    /// Constant.
    Literal(Literal),
    /// An aggregate application — only meaningful inside `HAVING`.
    Aggregate {
        /// The function.
        func: AggName,
        /// Its argument column; `None` only for `COUNT(*)`.
        arg: Option<ColumnRef>,
    },
}

/// A boolean condition (`WHERE` / `ON`).
#[derive(Debug, Clone, PartialEq)]
pub enum Cond {
    /// `left op right`.
    Cmp {
        /// Left term.
        left: Scalar,
        /// Operator.
        op: CmpOp,
        /// Right term.
        right: Scalar,
    },
    /// `a AND b`.
    And(Box<Cond>, Box<Cond>),
    /// `a OR b`.
    Or(Box<Cond>, Box<Cond>),
    /// `NOT a`.
    Not(Box<Cond>),
}

impl Cond {
    /// Conjunction helper.
    #[must_use]
    pub fn and(self, other: Cond) -> Cond {
        Cond::And(Box::new(self), Box::new(other))
    }
}

/// An aggregate function name in a projection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggName {
    /// `COUNT(*)` / `COUNT(col)` (no nulls exist, so both count rows).
    Count,
    /// `SUM(col)`.
    Sum,
    /// `AVG(col)`.
    Avg,
    /// `MIN(col)`.
    Min,
    /// `MAX(col)`.
    Max,
}

/// One item of the `SELECT` list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// A plain column.
    Column(ColumnRef),
    /// An aggregate application.
    Aggregate {
        /// The function.
        func: AggName,
        /// Its argument column; `None` only for `COUNT(*)`.
        arg: Option<ColumnRef>,
        /// Source span of the whole `FUNC(arg)` call.
        span: Span,
    },
}

/// One `SELECT … FROM … [WHERE …] [GROUP BY …]` block.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryBody {
    /// The projection list.
    pub projection: Vec<SelectItem>,
    /// Tables in `FROM` order (joins are folded into `selection`).
    pub from: Vec<String>,
    /// The combined `WHERE` ∧ `ON` condition.
    pub selection: Option<Cond>,
    /// `GROUP BY` columns.
    pub group_by: Vec<ColumnRef>,
    /// `HAVING` condition (may reference aggregates), applied above the
    /// aggregation.
    pub having: Option<Cond>,
    /// Source span of the whole body (dummy for API-built ASTs).
    pub span: Span,
}

/// Compound set operators between query bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOp {
    /// `UNION` (deduplicating, max texp — Equation 4).
    Union,
    /// `EXCEPT` (difference — Equation 10).
    Except,
    /// `INTERSECT` (Equation 6).
    Intersect,
}

/// A full query: a body plus trailing compound operations, left-associated,
/// with optional presentation clauses.
///
/// `ORDER BY` and `LIMIT` are *presentation-level*: the expiration-time
/// algebra is set-based, so they are applied by the engine to the final
/// result rather than planned as operators.
#[derive(Debug, Clone)]
pub struct Query {
    /// The first body.
    pub body: QueryBody,
    /// `(op, body)` pairs applied left-to-right.
    pub compound: Vec<(SetOp, QueryBody)>,
    /// Spans of the set-operator keywords (`UNION` / `EXCEPT` /
    /// `INTERSECT`), parallel to `compound`. Kept out of the `compound`
    /// tuples so pattern matches on `(op, body)` stay untouched.
    pub set_op_spans: Vec<Span>,
    /// `ORDER BY column [DESC]` keys, applied to the final result.
    pub order_by: Vec<(ColumnRef, bool)>,
    /// `LIMIT n`, applied after ordering.
    pub limit: Option<usize>,
    /// Source span of the whole query (dummy for API-built ASTs).
    pub span: Span,
}

/// Structural equality ignoring positions: `set_op_spans` is skipped
/// outright because `Vec<Span>` equality is length-sensitive even though
/// individual spans always compare equal, and API-built queries leave it
/// empty.
impl PartialEq for Query {
    fn eq(&self, other: &Query) -> bool {
        self.body == other.body
            && self.compound == other.compound
            && self.order_by == other.order_by
            && self.limit == other.limit
    }
}

/// The expiration clause of `INSERT` / `UPDATE` — the only places the paper
/// exposes expiration times to users.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expires {
    /// `EXPIRES DEFAULT` (or omitted): defer to the table's TTL policy —
    /// `now + ttl` when one is declared, `∞` otherwise.
    Default,
    /// `EXPIRES NEVER`: expiration time `∞` (still subject to clamping).
    Never,
    /// `EXPIRES AT t`: absolute expiration time.
    At(u64),
    /// `EXPIRES IN d [TICKS]`: relative to the statement's execution time.
    In(u64),
}

/// The `TTL` clause of `CREATE TABLE` / `ALTER TABLE … SET TTL`:
/// `TTL <d> [TICKS] [SLIDING [ON ACCESS|MODIFY]] [CLAMP <min>..<max>]`.
///
/// Reuses [`exptime_policy`]'s [`Sliding`] and [`Clamp`] types directly so
/// the engine converts a clause into a `TtlPolicy` without translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TtlClause {
    /// The default lifetime in ticks (`texp = now + ttl` when a write omits
    /// its `EXPIRES` clause). Always positive.
    pub ttl: u64,
    /// Sliding mode (`SLIDING` = on modify, `SLIDING ON ACCESS` also on
    /// read; omitted = absolute).
    pub sliding: Sliding,
    /// `CLAMP min..max` bounds on relative lifetimes.
    pub clamp: Option<Clamp>,
    /// Source span of the whole clause (dummy for API-built ASTs).
    pub span: Span,
}

impl TtlClause {
    /// A plain absolute-TTL clause without a source position.
    #[must_use]
    pub fn new(ttl: u64) -> TtlClause {
        TtlClause {
            ttl,
            sliding: Sliding::Absolute,
            clamp: None,
            span: Span::DUMMY,
        }
    }

    /// Builder: sets the sliding mode.
    #[must_use]
    pub fn sliding(mut self, sliding: Sliding) -> TtlClause {
        self.sliding = sliding;
        self
    }

    /// Builder: sets the clamp range.
    ///
    /// # Panics
    ///
    /// Panics if `min > max` (see [`Clamp::new`]).
    #[must_use]
    pub fn clamp(mut self, min: u64, max: u64) -> TtlClause {
        self.clamp = Some(Clamp::new(min, max));
        self
    }
}

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE name (col type, …) [TTL …]`.
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<(String, ValueType)>,
        /// Optional declared TTL policy.
        ttl: Option<TtlClause>,
    },
    /// `DROP TABLE name`.
    DropTable {
        /// Table name.
        name: String,
    },
    /// `CREATE [MATERIALIZED] VIEW name AS query`.
    CreateView {
        /// View name.
        name: String,
        /// Whether `MATERIALIZED` was given (plain views are planned per
        /// read; materialised views are maintained per the paper).
        materialized: bool,
        /// Defining query.
        query: Query,
    },
    /// `DROP VIEW name`.
    DropView {
        /// View name.
        name: String,
    },
    /// `INSERT INTO name VALUES (…), (…) [EXPIRES …]`.
    Insert {
        /// Target table.
        table: String,
        /// Rows of literals.
        rows: Vec<Vec<Literal>>,
        /// Expiration clause.
        expires: Expires,
    },
    /// `DELETE FROM name [WHERE cond]`.
    Delete {
        /// Target table.
        table: String,
        /// Optional filter; `None` deletes everything.
        predicate: Option<Cond>,
    },
    /// `UPDATE name SET EXPIRES … [WHERE cond]` — updates expiration times
    /// only (attribute updates are outside the paper's model, which assumes
    /// "no updates to the source data" beyond expiry control).
    UpdateExpiration {
        /// Target table.
        table: String,
        /// New expiration.
        expires: Expires,
        /// Optional filter; `None` updates everything.
        predicate: Option<Cond>,
    },
    /// `ALTER TABLE name SET TTL … | SET TTL NONE` — replaces (or clears)
    /// the table's declared TTL policy.
    AlterTtl {
        /// Target table.
        table: String,
        /// The new policy; `None` for `SET TTL NONE` (back to absolute).
        ttl: Option<TtlClause>,
    },
    /// `SHOW TTL [FOR name]` — lists effective policies.
    ShowTtl {
        /// Restrict to one table; `None` lists every table.
        table: Option<String>,
    },
    /// `EXPLAIN AUDIT` — run the whole-database staleness audit and
    /// render the report (DESIGN.md §11.1).
    Audit,
    /// A query.
    Select(Query),
}

impl Statement {
    /// A short lowercase tag naming the statement kind, for span
    /// attributes and diagnostics.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Statement::CreateTable { .. } => "create_table",
            Statement::DropTable { .. } => "drop_table",
            Statement::CreateView { .. } => "create_view",
            Statement::DropView { .. } => "drop_view",
            Statement::Insert { .. } => "insert",
            Statement::Delete { .. } => "delete",
            Statement::UpdateExpiration { .. } => "update_expiration",
            Statement::AlterTtl { .. } => "alter_ttl",
            Statement::ShowTtl { .. } => "show_ttl",
            Statement::Audit => "audit",
            Statement::Select(_) => "select",
        }
    }
}
