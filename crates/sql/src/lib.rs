//! # exptime-sql
//!
//! A SQL subset for expiration-time databases, targeting the
//! `exptime-core` algebra. The surface follows the paper's design point:
//! expiration times appear **only** in `INSERT … EXPIRES …` and
//! `UPDATE … SET EXPIRES …`; queries never mention them — results expire
//! transparently.
//!
//! ```
//! use exptime_sql::parse;
//! let stmt = parse("SELECT deg, COUNT(*) FROM pol GROUP BY deg").unwrap();
//! # let _ = stmt;
//! ```

#![forbid(unsafe_code)]

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod planner;
pub mod span;
pub mod token;
pub mod unparse;

pub use ast::Statement;
pub use error::SqlError;
pub use parser::{parse, parse_many};
pub use planner::{plan_query, plan_table_cond, SchemaProvider};
pub use span::{line_col, Span};
