//! Tokens of the SQL subset.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// A keyword (uppercased during lexing).
    Keyword(Keyword),
    /// An identifier (table, column, view name).
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// A single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `*`
    Star,
    /// `.`
    Dot,
    /// `..` (range separator in `CLAMP min..max`)
    DotDot,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Keyword(k) => write!(f, "{k}"),
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Float(v) => write!(f, "{v}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Semicolon => write!(f, ";"),
            Token::Star => write!(f, "*"),
            Token::Dot => write!(f, "."),
            Token::DotDot => write!(f, ".."),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
        }
    }
}

macro_rules! keywords {
    ($($variant:ident => $text:literal),* $(,)?) => {
        /// Reserved words.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        #[allow(missing_docs)]
        pub enum Keyword {
            $($variant),*
        }

        impl Keyword {
            /// Parses an uppercase word into a keyword.
            #[must_use]
            pub fn from_upper(s: &str) -> Option<Keyword> {
                match s {
                    $($text => Some(Keyword::$variant),)*
                    _ => None,
                }
            }
        }

        impl fmt::Display for Keyword {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                match self {
                    $(Keyword::$variant => write!(f, $text)),*
                }
            }
        }
    };
}

keywords! {
    Select => "SELECT",
    From => "FROM",
    Where => "WHERE",
    Group => "GROUP",
    By => "BY",
    As => "AS",
    And => "AND",
    Or => "OR",
    Not => "NOT",
    Union => "UNION",
    Except => "EXCEPT",
    Intersect => "INTERSECT",
    Join => "JOIN",
    Cross => "CROSS",
    On => "ON",
    Create => "CREATE",
    Drop => "DROP",
    Table => "TABLE",
    Materialized => "MATERIALIZED",
    View => "VIEW",
    Insert => "INSERT",
    Into => "INTO",
    Values => "VALUES",
    Expires => "EXPIRES",
    At => "AT",
    In => "IN",
    Never => "NEVER",
    Delete => "DELETE",
    Update => "UPDATE",
    Set => "SET",
    Int => "INT",
    Float => "FLOAT",
    Text => "TEXT",
    Bool => "BOOL",
    Count => "COUNT",
    Sum => "SUM",
    Avg => "AVG",
    Min => "MIN",
    Max => "MAX",
    True => "TRUE",
    False => "FALSE",
    Ticks => "TICKS",
    Having => "HAVING",
    Order => "ORDER",
    Limit => "LIMIT",
    Asc => "ASC",
    Desc => "DESC",
    Ttl => "TTL",
    Sliding => "SLIDING",
    Access => "ACCESS",
    Modify => "MODIFY",
    Clamp => "CLAMP",
    Alter => "ALTER",
    Show => "SHOW",
    For => "FOR",
    None => "NONE",
    Default => "DEFAULT",
    Explain => "EXPLAIN",
    Audit => "AUDIT",
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_roundtrip() {
        for (k, s) in [
            (Keyword::Select, "SELECT"),
            (Keyword::Expires, "EXPIRES"),
            (Keyword::Materialized, "MATERIALIZED"),
        ] {
            assert_eq!(Keyword::from_upper(s), Some(k));
            assert_eq!(k.to_string(), s);
        }
        assert_eq!(Keyword::from_upper("NOPE"), None);
    }

    #[test]
    fn token_display() {
        assert_eq!(Token::Keyword(Keyword::Select).to_string(), "SELECT");
        assert_eq!(Token::Ident("pol".into()).to_string(), "pol");
        assert_eq!(Token::Str("a'b".into()).to_string(), "'a'b'");
        assert_eq!(Token::Le.to_string(), "<=");
    }
}
