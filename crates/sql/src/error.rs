//! SQL-layer errors.

use std::fmt;

/// Errors from lexing, parsing, or planning SQL.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Lexer error at a byte offset.
    Lex {
        /// Byte offset in the input.
        offset: usize,
        /// Human-readable description.
        message: String,
    },
    /// Parser error.
    Parse(String),
    /// Planner error (name resolution, typing, unsupported shapes).
    Plan(String),
    /// An error surfaced from the core data model.
    Core(exptime_core::error::Error),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex { offset, message } => {
                write!(f, "lex error at byte {offset}: {message}")
            }
            SqlError::Parse(m) => write!(f, "parse error: {m}"),
            SqlError::Plan(m) => write!(f, "plan error: {m}"),
            SqlError::Core(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SqlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SqlError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<exptime_core::error::Error> for SqlError {
    fn from(e: exptime_core::error::Error) -> Self {
        SqlError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SqlError::Parse("expected FROM".into());
        assert!(e.to_string().contains("expected FROM"));
        let core = SqlError::from(exptime_core::error::Error::UnknownRelation("x".into()));
        assert!(core.to_string().contains("x"));
        use std::error::Error as _;
        assert!(core.source().is_some());
        assert!(e.source().is_none());
        let lexe = SqlError::Lex {
            offset: 3,
            message: "bad".into(),
        };
        assert!(lexe.to_string().contains("byte 3"));
    }
}
