//! SQL-layer errors.

use crate::span::Span;
use std::fmt;

/// Errors from lexing, parsing, or planning SQL.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Lexer error at a byte offset.
    Lex {
        /// Byte offset in the input.
        offset: usize,
        /// Human-readable description.
        message: String,
    },
    /// Parser error.
    Parse {
        /// Human-readable description.
        message: String,
        /// Byte span of the offending source fragment ([`Span::DUMMY`]
        /// when the error has no position, e.g. API-built ASTs).
        span: Span,
    },
    /// Planner error (name resolution, typing, unsupported shapes).
    Plan {
        /// Human-readable description.
        message: String,
        /// Byte span of the offending source fragment ([`Span::DUMMY`]
        /// when the error has no position, e.g. API-built ASTs).
        span: Span,
    },
    /// An error surfaced from the core data model.
    Core(exptime_core::error::Error),
}

impl SqlError {
    /// A parse error with no source position.
    #[must_use]
    pub fn parse(message: impl Into<String>) -> Self {
        SqlError::Parse {
            message: message.into(),
            span: Span::DUMMY,
        }
    }

    /// A plan error with no source position.
    #[must_use]
    pub fn plan(message: impl Into<String>) -> Self {
        SqlError::Plan {
            message: message.into(),
            span: Span::DUMMY,
        }
    }

    /// The byte span this error points at, if it carries a real one.
    #[must_use]
    pub fn span(&self) -> Option<Span> {
        match self {
            SqlError::Lex { offset, .. } => Some(Span::new(*offset, offset + 1)),
            SqlError::Parse { span, .. } | SqlError::Plan { span, .. } => {
                (!span.is_dummy()).then_some(*span)
            }
            SqlError::Core(_) => None,
        }
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex { offset, message } => {
                write!(f, "lex error at byte {offset}: {message}")
            }
            SqlError::Parse { message, span } if !span.is_dummy() => {
                write!(f, "parse error at byte {}: {message}", span.start)
            }
            SqlError::Parse { message, .. } => write!(f, "parse error: {message}"),
            SqlError::Plan { message, span } if !span.is_dummy() => {
                write!(f, "plan error at byte {}: {message}", span.start)
            }
            SqlError::Plan { message, .. } => write!(f, "plan error: {message}"),
            SqlError::Core(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SqlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SqlError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<exptime_core::error::Error> for SqlError {
    fn from(e: exptime_core::error::Error) -> Self {
        SqlError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SqlError::parse("expected FROM");
        assert!(e.to_string().contains("expected FROM"));
        let core = SqlError::from(exptime_core::error::Error::UnknownRelation("x".into()));
        assert!(core.to_string().contains("x"));
        use std::error::Error as _;
        assert!(core.source().is_some());
        assert!(e.source().is_none());
        let lexe = SqlError::Lex {
            offset: 3,
            message: "bad".into(),
        };
        assert!(lexe.to_string().contains("byte 3"));
    }

    #[test]
    fn spanned_errors_report_position() {
        let e = SqlError::Parse {
            message: "expected FROM".into(),
            span: Span::new(7, 11),
        };
        assert!(e.to_string().contains("at byte 7"));
        assert_eq!(e.span().map(|s| (s.start, s.end)), Some((7, 11)));
        // Dummy spans stay silent, matching the seed's output shape.
        assert!(!SqlError::parse("x").to_string().contains("byte"));
        assert_eq!(SqlError::plan("x").span(), None);
        let lexe = SqlError::Lex {
            offset: 3,
            message: "bad".into(),
        };
        assert_eq!(lexe.span().map(|s| s.start), Some(3));
    }
}
