//! Byte spans into SQL source text.
//!
//! Every token the lexer produces — and, from there, the AST nodes the
//! parser builds — carries a half-open byte range `start..end` into the
//! original statement string. Diagnostics (parse errors, plan errors, and
//! the `exptime-lint` analyzer) use these to point a caret at the exact
//! offending source fragment.
//!
//! Like `proc_macro2`/`syn` spans, a [`Span`] **never participates in
//! structural equality or hashing**: two ASTs that differ only in where
//! their nodes came from compare equal. This keeps `parse(unparse(ast))
//! == ast` and every equality-based test honest while letting span fields
//! ride along on otherwise-`PartialEq` nodes.

use std::fmt;
use std::hash::Hasher;

/// A half-open byte range `start..end` into the source statement.
#[derive(Clone, Copy, Default)]
pub struct Span {
    /// Byte offset of the first byte of the spanned fragment.
    pub start: usize,
    /// Byte offset one past the last byte of the spanned fragment.
    pub end: usize,
}

impl Span {
    /// The span of nodes built without source text (API-constructed ASTs,
    /// unparse round-trips). Dummy spans render as "no position".
    pub const DUMMY: Span = Span { start: 0, end: 0 };

    /// A span covering `start..end`.
    #[must_use]
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// Whether this is the [`Span::DUMMY`] placeholder.
    #[must_use]
    pub fn is_dummy(&self) -> bool {
        self.start == 0 && self.end == 0
    }

    /// The smallest span covering both `self` and `other`. Dummy sides
    /// are ignored so API-built fragments don't drag spans to offset 0.
    #[must_use]
    pub fn union(self, other: Span) -> Span {
        match (self.is_dummy(), other.is_dummy()) {
            (true, _) => other,
            (_, true) => self,
            (false, false) => Span {
                start: self.start.min(other.start),
                end: self.end.max(other.end),
            },
        }
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// Whether the span covers no bytes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Spans are positions, not content: equality always holds (syn-style),
/// so span-carrying AST nodes keep their structural `PartialEq`.
impl PartialEq for Span {
    fn eq(&self, _: &Span) -> bool {
        true
    }
}

impl Eq for Span {}

/// Consistent with the always-equal `PartialEq`: spans hash to nothing.
impl std::hash::Hash for Span {
    fn hash<H: Hasher>(&self, _: &mut H) {}
}

impl fmt::Debug for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// 1-based `(line, column)` of a byte offset in `src`. Columns count
/// *characters*, not bytes, so multi-byte UTF-8 content doesn't shift the
/// caret; offsets past the end clamp to one past the last column. (The
/// seed reported raw 0-based byte offsets — off by one against every
/// editor's 1-based convention; this is the fixed, human-facing form.)
#[must_use]
pub fn line_col(src: &str, offset: usize) -> (usize, usize) {
    let offset = offset.min(src.len());
    let before = &src[..offset];
    let line = before.bytes().filter(|&b| b == b'\n').count() + 1;
    let line_start = before.rfind('\n').map_or(0, |i| i + 1);
    let col = before[line_start..].chars().count() + 1;
    (line, col)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_compare_equal_regardless_of_position() {
        assert_eq!(Span::new(3, 9), Span::new(40, 41));
        assert_eq!(Span::DUMMY, Span::new(7, 8));
    }

    #[test]
    fn union_ignores_dummies() {
        let s = Span::new(5, 8).union(Span::new(2, 6));
        assert!(s.start == 2 && s.end == 8);
        let d = Span::DUMMY.union(Span::new(5, 8));
        assert!(d.start == 5 && d.end == 8);
        let d2 = Span::new(5, 8).union(Span::DUMMY);
        assert!(d2.start == 5 && d2.end == 8);
    }

    #[test]
    fn line_col_is_one_based_and_char_counted() {
        let src = "SELECT *\nFROM pöl WHERE x";
        assert_eq!(line_col(src, 0), (1, 1));
        assert_eq!(line_col(src, 7), (1, 8));
        // Offset of 'W': "FROM pöl " is 10 bytes (ö is 2), starting at 9.
        let w = src.find("WHERE").unwrap();
        assert_eq!(line_col(src, w), (2, 10), "ö counts as one column");
        // Past-the-end clamps to one past the last column of the last
        // line ("FROM pöl WHERE x" is 16 chars).
        assert_eq!(line_col(src, 999), (2, 17));
    }

    #[test]
    fn dummy_detection_and_len() {
        assert!(Span::DUMMY.is_dummy());
        assert!(Span::DUMMY.is_empty());
        assert!(!Span::new(1, 4).is_dummy());
        assert_eq!(Span::new(1, 4).len(), 3);
    }
}
