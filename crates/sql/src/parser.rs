//! Recursive-descent parser for the SQL subset.
//!
//! Grammar sketch (terminals in caps):
//!
//! ```text
//! statement   := create | drop | insert | delete | update | alter | show | query
//! create      := CREATE TABLE ident '(' coldef (',' coldef)* ')' [ttl]
//!              | CREATE [MATERIALIZED] VIEW ident AS query
//! ttl         := TTL int [TICKS] [SLIDING [ON (ACCESS | MODIFY)]]
//!                [CLAMP int '..' int]
//! drop        := DROP (TABLE | VIEW) ident
//! insert      := INSERT INTO ident VALUES row (',' row)* [expires]
//! expires     := EXPIRES (AT int | IN int [TICKS] | NEVER | DEFAULT)
//! delete      := DELETE FROM ident [WHERE cond]
//! update      := UPDATE ident SET expires [WHERE cond]
//! alter       := ALTER TABLE ident SET (ttl | TTL NONE)
//! show        := SHOW TTL [FOR ident]
//! query       := body ((UNION | EXCEPT | INTERSECT) body)*
//! body        := SELECT items FROM fromlist [WHERE cond] [GROUP BY cols]
//! fromlist    := ident ((',' | CROSS JOIN) ident | JOIN ident ON cond)*
//! items       := '*' | item (',' item)*
//! item        := (COUNT|SUM|AVG|MIN|MAX) '(' ('*' | colref) ')' | colref
//! cond        := and (OR and)*        and := unary (AND unary)*
//! unary       := NOT unary | '(' cond ')' | scalar cmpop scalar
//! ```

use crate::ast::*;
use crate::error::SqlError;
use crate::lexer::lex_spanned;
use crate::span::Span;
use crate::token::{Keyword, Token};
use exptime_core::predicate::CmpOp;
use exptime_core::value::ValueType;

/// Parses one SQL statement (an optional trailing `;` is allowed).
///
/// # Errors
///
/// Returns [`SqlError::Lex`] or [`SqlError::Parse`].
pub fn parse(input: &str) -> Result<Statement, SqlError> {
    let mut p = Parser::new(input)?;
    let stmt = p.statement()?;
    p.eat_if(&Token::Semicolon);
    p.expect_end()?;
    Ok(stmt)
}

/// Parses a sequence of `;`-separated statements.
///
/// # Errors
///
/// Returns [`SqlError::Lex`] or [`SqlError::Parse`].
pub fn parse_many(input: &str) -> Result<Vec<Statement>, SqlError> {
    let mut p = Parser::new(input)?;
    let mut out = Vec::new();
    while !p.at_end() {
        out.push(p.statement()?);
        if !p.eat_if(&Token::Semicolon) {
            break;
        }
    }
    p.expect_end()?;
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    /// Byte span of each token, parallel to `tokens`.
    spans: Vec<Span>,
    /// Length of the input, so end-of-input errors point past the text.
    eof: usize,
    pos: usize,
}

impl Parser {
    fn new(input: &str) -> Result<Parser, SqlError> {
        let (tokens, spans) = lex_spanned(input)?;
        Ok(Parser {
            tokens,
            spans,
            eof: input.len(),
            pos: 0,
        })
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1)
    }

    /// Span of the token at `pos`; past the end, a zero-width span at EOF.
    fn span_at(&self, pos: usize) -> Span {
        self.spans
            .get(pos)
            .copied()
            .unwrap_or_else(|| Span::new(self.eof, self.eof))
    }

    /// Span of the next (unconsumed) token.
    fn cur_span(&self) -> Span {
        self.span_at(self.pos)
    }

    /// Span of the most recently consumed token.
    fn prev_span(&self) -> Span {
        self.span_at(self.pos.saturating_sub(1))
    }

    /// A parse error pointing at the next unconsumed token.
    fn err(&self, message: impl Into<String>) -> SqlError {
        self.err_at(self.cur_span(), message)
    }

    /// A parse error pointing at the most recently consumed token.
    fn err_prev(&self, message: impl Into<String>) -> SqlError {
        self.err_at(self.prev_span(), message)
    }

    fn err_at(&self, span: Span, message: impl Into<String>) -> SqlError {
        SqlError::Parse {
            message: message.into(),
            span,
        }
    }

    fn next(&mut self) -> Result<Token, SqlError> {
        match self.tokens.get(self.pos).cloned() {
            Some(t) => {
                self.pos += 1;
                Ok(t)
            }
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn eat_if(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, k: Keyword) -> bool {
        self.eat_if(&Token::Keyword(k))
    }

    fn expect(&mut self, t: &Token) -> Result<(), SqlError> {
        let got = self.next()?;
        if &got == t {
            Ok(())
        } else {
            Err(self.err_prev(format!("expected `{t}`, found `{got}`")))
        }
    }

    fn expect_kw(&mut self, k: Keyword) -> Result<(), SqlError> {
        self.expect(&Token::Keyword(k))
    }

    fn expect_end(&self) -> Result<(), SqlError> {
        match self.peek() {
            None => Ok(()),
            Some(t) => Err(self.err(format!("trailing input at `{t}`"))),
        }
    }

    fn ident(&mut self) -> Result<String, SqlError> {
        match self.next()? {
            Token::Ident(s) => Ok(s),
            // `EXPLAIN` and `AUDIT` are *soft* keywords: they only matter
            // as the head of `EXPLAIN AUDIT`, and pre-existing schemas use
            // them as ordinary names (e.g. the `audit` table in
            // examples/session_store.rs). The lexer lowercases nothing, so
            // the canonical identifier form is the lowercase spelling.
            Token::Keyword(Keyword::Explain) => Ok("explain".to_string()),
            Token::Keyword(Keyword::Audit) => Ok("audit".to_string()),
            other => Err(self.err_prev(format!("expected identifier, found `{other}`"))),
        }
    }

    /// A table or view name: a bare identifier, or a schema-qualified
    /// `schema '.' ident` pair (e.g. the reserved `_telemetry.metrics`
    /// system tables) joined back into one dotted name — the engine keys
    /// relations by the full dotted string.
    fn table_name(&mut self) -> Result<String, SqlError> {
        let head = self.ident()?;
        if self.eat_if(&Token::Dot) {
            let tail = self.ident()?;
            Ok(format!("{head}.{tail}"))
        } else {
            Ok(head)
        }
    }

    fn statement(&mut self) -> Result<Statement, SqlError> {
        match self.peek() {
            Some(Token::Keyword(Keyword::Create)) => self.create(),
            Some(Token::Keyword(Keyword::Drop)) => self.drop(),
            Some(Token::Keyword(Keyword::Insert)) => self.insert(),
            Some(Token::Keyword(Keyword::Delete)) => self.delete(),
            Some(Token::Keyword(Keyword::Update)) => self.update(),
            Some(Token::Keyword(Keyword::Alter)) => self.alter(),
            Some(Token::Keyword(Keyword::Show)) => self.show(),
            Some(Token::Keyword(Keyword::Explain)) => self.explain(),
            Some(Token::Keyword(Keyword::Select)) => Ok(Statement::Select(self.query()?)),
            Some(t) => Err(self.err(format!("unexpected `{t}`"))),
            None => Err(self.err("empty statement")),
        }
    }

    fn create(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw(Keyword::Create)?;
        if self.eat_kw(Keyword::Table) {
            let name = self.table_name()?;
            self.expect(&Token::LParen)?;
            let mut columns = Vec::new();
            loop {
                let col = self.ident()?;
                let ty = match self.next()? {
                    Token::Keyword(Keyword::Int) => ValueType::Int,
                    Token::Keyword(Keyword::Float) => ValueType::Float,
                    Token::Keyword(Keyword::Text) => ValueType::Str,
                    Token::Keyword(Keyword::Bool) => ValueType::Bool,
                    other => {
                        return Err(self.err_prev(format!("expected column type, found `{other}`")))
                    }
                };
                columns.push((col, ty));
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            let ttl = if self.peek() == Some(&Token::Keyword(Keyword::Ttl)) {
                let start = self.cur_span();
                self.pos += 1;
                Some(self.ttl_clause_body(start)?)
            } else {
                None
            };
            Ok(Statement::CreateTable { name, columns, ttl })
        } else {
            let materialized = self.eat_kw(Keyword::Materialized);
            self.expect_kw(Keyword::View)?;
            let name = self.table_name()?;
            self.expect_kw(Keyword::As)?;
            let query = self.query()?;
            Ok(Statement::CreateView {
                name,
                materialized,
                query,
            })
        }
    }

    fn drop(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw(Keyword::Drop)?;
        if self.eat_kw(Keyword::Table) {
            Ok(Statement::DropTable {
                name: self.table_name()?,
            })
        } else {
            self.expect_kw(Keyword::View)?;
            Ok(Statement::DropView {
                name: self.table_name()?,
            })
        }
    }

    fn insert(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw(Keyword::Insert)?;
        self.expect_kw(Keyword::Into)?;
        let table = self.table_name()?;
        self.expect_kw(Keyword::Values)?;
        let mut rows = Vec::new();
        loop {
            self.expect(&Token::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.literal()?);
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            rows.push(row);
            if !self.eat_if(&Token::Comma) {
                break;
            }
        }
        let expires = self.expires_clause()?;
        Ok(Statement::Insert {
            table,
            rows,
            expires,
        })
    }

    /// Parses the tail of a `TTL` clause; the caller has already consumed
    /// the `TTL` keyword whose span is `start`.
    fn ttl_clause_body(&mut self, start: Span) -> Result<TtlClause, SqlError> {
        let ttl = self.nonneg_int("TTL")?;
        if ttl == 0 {
            return Err(self.err_prev(
                "TTL requires a positive duration (TTL 0 would expire rows on arrival)",
            ));
        }
        self.eat_kw(Keyword::Ticks);
        let sliding = if self.eat_kw(Keyword::Sliding) {
            if self.eat_kw(Keyword::On) {
                if self.eat_kw(Keyword::Access) {
                    Sliding::OnAccess
                } else if self.eat_kw(Keyword::Modify) {
                    Sliding::OnModify
                } else {
                    return Err(self.err("SLIDING ON expects ACCESS or MODIFY"));
                }
            } else {
                Sliding::OnModify
            }
        } else {
            Sliding::Absolute
        };
        let clamp = if self.eat_kw(Keyword::Clamp) {
            let min = self.nonneg_int("CLAMP")?;
            self.expect(&Token::DotDot)?;
            let max = self.nonneg_int("CLAMP")?;
            if min > max {
                return Err(self.err_prev(format!("CLAMP {min}..{max}: min exceeds max")));
            }
            Some(Clamp::new(min, max))
        } else {
            None
        };
        Ok(TtlClause {
            ttl,
            sliding,
            clamp,
            span: start.union(self.prev_span()),
        })
    }

    fn alter(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw(Keyword::Alter)?;
        self.expect_kw(Keyword::Table)?;
        let table = self.table_name()?;
        self.expect_kw(Keyword::Set)?;
        let start = self.cur_span();
        self.expect_kw(Keyword::Ttl)?;
        let ttl = if self.eat_kw(Keyword::None) {
            None
        } else {
            Some(self.ttl_clause_body(start)?)
        };
        Ok(Statement::AlterTtl { table, ttl })
    }

    fn show(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw(Keyword::Show)?;
        self.expect_kw(Keyword::Ttl)?;
        let table = if self.eat_kw(Keyword::For) {
            Some(self.table_name()?)
        } else {
            None
        };
        Ok(Statement::ShowTtl { table })
    }

    /// `EXPLAIN AUDIT` — the whole-database staleness audit. (The only
    /// EXPLAIN form the parser owns; `EXPLAIN LINT <stmt>` is peeled off
    /// by the CLI before parsing.)
    fn explain(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw(Keyword::Explain)?;
        self.expect_kw(Keyword::Audit)?;
        Ok(Statement::Audit)
    }

    fn expires_clause(&mut self) -> Result<Expires, SqlError> {
        if !self.eat_kw(Keyword::Expires) {
            return Ok(Expires::Default);
        }
        if self.eat_kw(Keyword::Default) {
            return Ok(Expires::Default);
        }
        if self.eat_kw(Keyword::Never) {
            return Ok(Expires::Never);
        }
        if self.eat_kw(Keyword::At) {
            let t = self.nonneg_int("EXPIRES AT")?;
            return Ok(Expires::At(t));
        }
        self.expect_kw(Keyword::In)?;
        let d = self.nonneg_int("EXPIRES IN")?;
        self.eat_kw(Keyword::Ticks);
        Ok(Expires::In(d))
    }

    fn nonneg_int(&mut self, what: &str) -> Result<u64, SqlError> {
        match self.next()? {
            Token::Int(v) if v >= 0 => Ok(v as u64),
            other => Err(self.err_prev(format!(
                "{what} requires a non-negative integer, found `{other}`"
            ))),
        }
    }

    fn delete(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw(Keyword::Delete)?;
        self.expect_kw(Keyword::From)?;
        let table = self.table_name()?;
        let predicate = if self.eat_kw(Keyword::Where) {
            Some(self.cond()?)
        } else {
            None
        };
        Ok(Statement::Delete { table, predicate })
    }

    fn update(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw(Keyword::Update)?;
        let table = self.table_name()?;
        self.expect_kw(Keyword::Set)?;
        if self.peek() != Some(&Token::Keyword(Keyword::Expires)) {
            // Attribute updates are outside the model; only expiration
            // times are updatable (paper Section 2: expiration times are
            // exposed to users "on insertion and update").
            return Err(self.err("UPDATE … SET requires an EXPIRES clause"));
        }
        let expires = self.expires_clause()?;
        let predicate = if self.eat_kw(Keyword::Where) {
            Some(self.cond()?)
        } else {
            None
        };
        Ok(Statement::UpdateExpiration {
            table,
            expires,
            predicate,
        })
    }

    fn query(&mut self) -> Result<Query, SqlError> {
        let start = self.cur_span();
        let body = self.body()?;
        let mut compound = Vec::new();
        let mut set_op_spans = Vec::new();
        loop {
            let op = match self.peek() {
                Some(Token::Keyword(Keyword::Union)) => SetOp::Union,
                Some(Token::Keyword(Keyword::Except)) => SetOp::Except,
                Some(Token::Keyword(Keyword::Intersect)) => SetOp::Intersect,
                _ => break,
            };
            set_op_spans.push(self.cur_span());
            self.pos += 1;
            compound.push((op, self.body()?));
        }
        let mut order_by = Vec::new();
        if self.eat_kw(Keyword::Order) {
            self.expect_kw(Keyword::By)?;
            loop {
                let col = self.colref()?;
                let desc = if self.eat_kw(Keyword::Desc) {
                    true
                } else {
                    self.eat_kw(Keyword::Asc);
                    false
                };
                order_by.push((col, desc));
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw(Keyword::Limit) {
            Some(self.nonneg_int("LIMIT")? as usize)
        } else {
            None
        };
        Ok(Query {
            body,
            compound,
            set_op_spans,
            order_by,
            limit,
            span: start.union(self.prev_span()),
        })
    }

    fn body(&mut self) -> Result<QueryBody, SqlError> {
        let start = self.cur_span();
        self.expect_kw(Keyword::Select)?;
        let projection = self.items()?;
        self.expect_kw(Keyword::From)?;
        let (from, join_cond) = self.parse_from_list()?;
        let mut selection = if self.eat_kw(Keyword::Where) {
            Some(self.cond()?)
        } else {
            None
        };
        if let Some(jc) = join_cond {
            selection = Some(match selection {
                Some(w) => jc.and(w),
                None => jc,
            });
        }
        let mut group_by = Vec::new();
        if self.eat_kw(Keyword::Group) {
            self.expect_kw(Keyword::By)?;
            loop {
                group_by.push(self.colref()?);
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_kw(Keyword::Having) {
            Some(self.cond()?)
        } else {
            None
        };
        Ok(QueryBody {
            projection,
            from,
            selection,
            group_by,
            having,
            span: start.union(self.prev_span()),
        })
    }

    fn parse_from_list(&mut self) -> Result<(Vec<String>, Option<Cond>), SqlError> {
        let mut tables = vec![self.table_name()?];
        let mut cond: Option<Cond> = None;
        loop {
            if self.eat_if(&Token::Comma) {
                tables.push(self.table_name()?);
            } else if self.eat_kw(Keyword::Cross) {
                self.expect_kw(Keyword::Join)?;
                tables.push(self.table_name()?);
            } else if self.eat_kw(Keyword::Join) {
                tables.push(self.table_name()?);
                self.expect_kw(Keyword::On)?;
                let on = self.cond()?;
                cond = Some(match cond {
                    Some(c) => c.and(on),
                    None => on,
                });
            } else {
                break;
            }
        }
        Ok((tables, cond))
    }

    fn items(&mut self) -> Result<Vec<SelectItem>, SqlError> {
        if self.eat_if(&Token::Star) {
            return Ok(vec![SelectItem::Wildcard]);
        }
        let mut items = Vec::new();
        loop {
            items.push(self.item()?);
            if !self.eat_if(&Token::Comma) {
                break;
            }
        }
        Ok(items)
    }

    fn item(&mut self) -> Result<SelectItem, SqlError> {
        let agg = match self.peek() {
            Some(Token::Keyword(Keyword::Count)) => Some(AggName::Count),
            Some(Token::Keyword(Keyword::Sum)) => Some(AggName::Sum),
            Some(Token::Keyword(Keyword::Avg)) => Some(AggName::Avg),
            Some(Token::Keyword(Keyword::Min)) => Some(AggName::Min),
            Some(Token::Keyword(Keyword::Max)) => Some(AggName::Max),
            _ => None,
        };
        if let Some(func) = agg {
            // MIN/MAX are also valid identifiers in theory; require '('.
            if self.peek2() == Some(&Token::LParen) {
                let start = self.cur_span();
                self.pos += 1;
                self.expect(&Token::LParen)?;
                let arg = if self.eat_if(&Token::Star) {
                    if func != AggName::Count {
                        return Err(self.err_prev(format!("only COUNT accepts `*`, not {func:?}")));
                    }
                    None
                } else {
                    Some(self.colref()?)
                };
                if func != AggName::Count && arg.is_none() {
                    return Err(self.err_prev(format!("{func:?} requires a column")));
                }
                self.expect(&Token::RParen)?;
                return Ok(SelectItem::Aggregate {
                    func,
                    arg,
                    span: start.union(self.prev_span()),
                });
            }
        }
        Ok(SelectItem::Column(self.colref()?))
    }

    fn colref(&mut self) -> Result<ColumnRef, SqlError> {
        let start = self.cur_span();
        let first = self.ident()?;
        if self.eat_if(&Token::Dot) {
            let column = self.ident()?;
            Ok(ColumnRef {
                table: Some(first),
                column,
                span: start.union(self.prev_span()),
            })
        } else {
            Ok(ColumnRef {
                table: None,
                column: first,
                span: start.union(self.prev_span()),
            })
        }
    }

    fn cond(&mut self) -> Result<Cond, SqlError> {
        let mut left = self.cond_and()?;
        while self.eat_kw(Keyword::Or) {
            let right = self.cond_and()?;
            left = Cond::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn cond_and(&mut self) -> Result<Cond, SqlError> {
        let mut left = self.cond_unary()?;
        while self.eat_kw(Keyword::And) {
            let right = self.cond_unary()?;
            left = Cond::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn cond_unary(&mut self) -> Result<Cond, SqlError> {
        if self.eat_kw(Keyword::Not) {
            return Ok(Cond::Not(Box::new(self.cond_unary()?)));
        }
        if self.eat_if(&Token::LParen) {
            let c = self.cond()?;
            self.expect(&Token::RParen)?;
            return Ok(c);
        }
        let left = self.scalar()?;
        let op = match self.next()? {
            Token::Eq => CmpOp::Eq,
            Token::Ne => CmpOp::Ne,
            Token::Lt => CmpOp::Lt,
            Token::Le => CmpOp::Le,
            Token::Gt => CmpOp::Gt,
            Token::Ge => CmpOp::Ge,
            other => {
                return Err(self.err_prev(format!("expected comparison operator, found `{other}`")))
            }
        };
        let right = self.scalar()?;
        Ok(Cond::Cmp { left, op, right })
    }

    fn scalar(&mut self) -> Result<Scalar, SqlError> {
        if let Some((func, _)) = self.peek_agg_keyword() {
            if self.peek2() == Some(&Token::LParen) {
                self.pos += 1;
                self.expect(&Token::LParen)?;
                let arg = if self.eat_if(&Token::Star) {
                    if func != AggName::Count {
                        return Err(self.err_prev(format!("only COUNT accepts `*`, not {func:?}")));
                    }
                    None
                } else {
                    Some(self.colref()?)
                };
                if func != AggName::Count && arg.is_none() {
                    return Err(self.err_prev(format!("{func:?} requires a column")));
                }
                self.expect(&Token::RParen)?;
                return Ok(Scalar::Aggregate { func, arg });
            }
        }
        match self.peek() {
            Some(Token::Ident(_))
            // Soft keywords read as column references, like any identifier.
            | Some(Token::Keyword(Keyword::Explain | Keyword::Audit)) => {
                Ok(Scalar::Column(self.colref()?))
            }
            _ => Ok(Scalar::Literal(self.literal()?)),
        }
    }

    fn peek_agg_keyword(&self) -> Option<(AggName, ())> {
        match self.peek() {
            Some(Token::Keyword(Keyword::Count)) => Some((AggName::Count, ())),
            Some(Token::Keyword(Keyword::Sum)) => Some((AggName::Sum, ())),
            Some(Token::Keyword(Keyword::Avg)) => Some((AggName::Avg, ())),
            Some(Token::Keyword(Keyword::Min)) => Some((AggName::Min, ())),
            Some(Token::Keyword(Keyword::Max)) => Some((AggName::Max, ())),
            _ => None,
        }
    }

    fn literal(&mut self) -> Result<Literal, SqlError> {
        match self.next()? {
            Token::Int(v) => Ok(Literal::Int(v)),
            Token::Float(v) => Ok(Literal::Float(v)),
            Token::Str(s) => Ok(Literal::Str(s)),
            Token::Keyword(Keyword::True) => Ok(Literal::Bool(true)),
            Token::Keyword(Keyword::False) => Ok(Literal::Bool(false)),
            other => Err(self.err_prev(format!("expected literal, found `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_table() {
        let s =
            parse("CREATE TABLE pol (uid INT, deg INT, name TEXT, hot BOOL, w FLOAT);").unwrap();
        let Statement::CreateTable { name, columns, ttl } = s else {
            panic!("wrong variant")
        };
        assert_eq!(name, "pol");
        assert_eq!(columns.len(), 5);
        assert_eq!(columns[2], ("name".to_string(), ValueType::Str));
        assert_eq!(columns[4], ("w".to_string(), ValueType::Float));
        assert_eq!(ttl, None);
    }

    #[test]
    fn create_table_with_ttl_policy() {
        let src = "CREATE TABLE sess (sid INT) TTL 30 TICKS SLIDING ON ACCESS CLAMP 5..400";
        let Statement::CreateTable { ttl: Some(c), .. } = parse(src).unwrap() else {
            panic!("expected CREATE TABLE with TTL")
        };
        assert_eq!(c.ttl, 30);
        assert_eq!(c.sliding, Sliding::OnAccess);
        assert_eq!(c.clamp, Some(Clamp::new(5, 400)));
        // The clause span covers `TTL … 5..400` (to end of statement).
        assert_eq!(
            &src[c.span.start..c.span.end],
            &src[src.find("TTL").unwrap()..]
        );

        // Bare SLIDING means on-modify; TICKS is optional.
        let Statement::CreateTable { ttl: Some(c), .. } =
            parse("CREATE TABLE t (a INT) TTL 10 SLIDING").unwrap()
        else {
            panic!()
        };
        assert_eq!(c.sliding, Sliding::OnModify);
        assert_eq!(c.clamp, None);

        let Statement::CreateTable { ttl: Some(c), .. } =
            parse("CREATE TABLE t (a INT) TTL 10 SLIDING ON MODIFY CLAMP 1..20").unwrap()
        else {
            panic!()
        };
        assert_eq!(c.sliding, Sliding::OnModify);
        assert_eq!(c.clamp, Some(Clamp::new(1, 20)));

        // Errors: zero TTL, inverted clamp, bad sliding target.
        assert!(parse("CREATE TABLE t (a INT) TTL 0").is_err());
        assert!(parse("CREATE TABLE t (a INT) TTL 10 CLAMP 9..2").is_err());
        assert!(parse("CREATE TABLE t (a INT) TTL 10 SLIDING ON DELETE").is_err());
    }

    #[test]
    fn alter_and_show_ttl() {
        let s = parse("ALTER TABLE sess SET TTL 60 SLIDING ON ACCESS").unwrap();
        let Statement::AlterTtl {
            table,
            ttl: Some(c),
        } = s
        else {
            panic!()
        };
        assert_eq!(table, "sess");
        assert_eq!(c.ttl, 60);
        assert_eq!(c.sliding, Sliding::OnAccess);

        let s = parse("ALTER TABLE sess SET TTL NONE").unwrap();
        assert!(matches!(s, Statement::AlterTtl { ttl: None, .. }));

        assert_eq!(
            parse("SHOW TTL").unwrap(),
            Statement::ShowTtl { table: None }
        );
        assert_eq!(
            parse("SHOW TTL FOR sess").unwrap(),
            Statement::ShowTtl {
                table: Some("sess".into())
            }
        );
        assert!(parse("ALTER TABLE sess SET a = 1").is_err());
        assert!(parse("SHOW TABLES").is_err());
    }

    #[test]
    fn insert_with_expirations() {
        let s = parse("INSERT INTO pol VALUES (1, 25), (2, 25) EXPIRES AT 10").unwrap();
        let Statement::Insert {
            table,
            rows,
            expires,
        } = s
        else {
            panic!()
        };
        assert_eq!(table, "pol");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], vec![Literal::Int(1), Literal::Int(25)]);
        assert_eq!(expires, Expires::At(10));

        let s = parse("INSERT INTO pol VALUES (1, 25) EXPIRES IN 5 TICKS").unwrap();
        assert!(matches!(
            s,
            Statement::Insert {
                expires: Expires::In(5),
                ..
            }
        ));
        let s = parse("INSERT INTO pol VALUES (1, 25) EXPIRES NEVER").unwrap();
        assert!(matches!(
            s,
            Statement::Insert {
                expires: Expires::Never,
                ..
            }
        ));
        // Omitted (or explicit DEFAULT) defers to the table's TTL policy.
        let s = parse("INSERT INTO pol VALUES (1, 25)").unwrap();
        assert!(matches!(
            s,
            Statement::Insert {
                expires: Expires::Default,
                ..
            }
        ));
        let s = parse("INSERT INTO pol VALUES (1, 25) EXPIRES DEFAULT").unwrap();
        assert!(matches!(
            s,
            Statement::Insert {
                expires: Expires::Default,
                ..
            }
        ));
    }

    #[test]
    fn select_with_where_and_group() {
        let s = parse("SELECT deg, COUNT(*) FROM pol WHERE deg >= 25 GROUP BY deg").unwrap();
        let Statement::Select(q) = s else { panic!() };
        assert_eq!(q.body.projection.len(), 2);
        assert!(matches!(
            q.body.projection[1],
            SelectItem::Aggregate {
                func: AggName::Count,
                arg: None,
                ..
            }
        ));
        assert_eq!(q.body.group_by.len(), 1);
        assert!(q.body.selection.is_some());
    }

    #[test]
    fn joins_fold_into_selection() {
        let s = parse("SELECT * FROM pol JOIN el ON pol.uid = el.uid WHERE pol.deg > 20").unwrap();
        let Statement::Select(q) = s else { panic!() };
        assert_eq!(q.body.from, vec!["pol", "el"]);
        // join cond AND where cond.
        assert!(matches!(q.body.selection, Some(Cond::And(_, _))));
        let s = parse("SELECT * FROM a, b CROSS JOIN c").unwrap();
        let Statement::Select(q) = s else { panic!() };
        assert_eq!(q.body.from, vec!["a", "b", "c"]);
        assert!(q.body.selection.is_none());
    }

    #[test]
    fn compound_queries() {
        let s = parse("SELECT uid FROM pol EXCEPT SELECT uid FROM el UNION SELECT uid FROM sports")
            .unwrap();
        let Statement::Select(q) = s else { panic!() };
        assert_eq!(q.compound.len(), 2);
        assert_eq!(q.compound[0].0, SetOp::Except);
        assert_eq!(q.compound[1].0, SetOp::Union);
    }

    #[test]
    fn conditions_precedence() {
        let s = parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND NOT (c = 3)").unwrap();
        let Statement::Select(q) = s else { panic!() };
        // OR at top: a=1 OR (b=2 AND NOT(c=3)).
        let Some(Cond::Or(_, rhs)) = q.body.selection else {
            panic!("expected OR at top")
        };
        assert!(matches!(*rhs, Cond::And(_, _)));
    }

    #[test]
    fn views() {
        let s = parse("CREATE MATERIALIZED VIEW v AS SELECT uid FROM pol").unwrap();
        assert!(matches!(
            s,
            Statement::CreateView {
                materialized: true,
                ..
            }
        ));
        let s = parse("CREATE VIEW w AS SELECT uid FROM pol").unwrap();
        assert!(matches!(
            s,
            Statement::CreateView {
                materialized: false,
                ..
            }
        ));
        assert!(matches!(
            parse("DROP VIEW w").unwrap(),
            Statement::DropView { .. }
        ));
        assert!(matches!(
            parse("DROP TABLE t").unwrap(),
            Statement::DropTable { .. }
        ));
    }

    #[test]
    fn delete_and_update() {
        let s = parse("DELETE FROM pol WHERE uid = 1").unwrap();
        assert!(matches!(
            s,
            Statement::Delete {
                predicate: Some(_),
                ..
            }
        ));
        let s = parse("DELETE FROM pol").unwrap();
        assert!(matches!(
            s,
            Statement::Delete {
                predicate: None,
                ..
            }
        ));
        let s = parse("UPDATE pol SET EXPIRES AT 99 WHERE uid = 1").unwrap();
        assert!(matches!(
            s,
            Statement::UpdateExpiration {
                expires: Expires::At(99),
                ..
            }
        ));
        let s = parse("UPDATE pol SET EXPIRES NEVER").unwrap();
        assert!(matches!(
            s,
            Statement::UpdateExpiration {
                expires: Expires::Never,
                predicate: None,
                ..
            }
        ));
    }

    #[test]
    fn parse_many_statements() {
        let ss = parse_many(
            "CREATE TABLE t (a INT); INSERT INTO t VALUES (1) EXPIRES AT 5; SELECT * FROM t;",
        )
        .unwrap();
        assert_eq!(ss.len(), 3);
    }

    #[test]
    fn error_cases() {
        assert!(parse("SELECT FROM t").is_err());
        assert!(parse("SELECT * t").is_err());
        assert!(parse("INSERT INTO t VALUES (1) EXPIRES AT -3").is_err());
        assert!(parse("SELECT * FROM t WHERE a").is_err());
        assert!(parse("SELECT SUM(*) FROM t").is_err());
        assert!(parse("UPDATE t SET a = 1").is_err(), "only EXPIRES updates");
        assert!(parse("SELECT * FROM t extra junk").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn explain_audit_parses_and_audit_stays_an_identifier() {
        assert_eq!(parse("EXPLAIN AUDIT").unwrap(), Statement::Audit);
        assert_eq!(parse("explain audit").unwrap(), Statement::Audit);
        // `EXPLAIN` alone, or followed by anything else, is an error (the
        // CLI owns `EXPLAIN LINT <stmt>`).
        assert!(parse("EXPLAIN").is_err());
        assert!(parse("EXPLAIN LINT SELECT * FROM t").is_err());
        assert!(parse("EXPLAIN AUDIT extra").is_err());
        // Soft keywords: pre-existing schemas use `audit` (and could use
        // `explain`) as ordinary identifiers — session_store does.
        let s = parse("CREATE TABLE audit (sid INT, uid INT) TTL 120").unwrap();
        assert!(matches!(s, Statement::CreateTable { ref name, .. } if name == "audit"));
        let s = parse("INSERT INTO audit VALUES (1, 2)").unwrap();
        assert!(matches!(s, Statement::Insert { ref table, .. } if table == "audit"));
        let s = parse("SELECT sid FROM audit EXCEPT SELECT sid FROM sessions").unwrap();
        let Statement::Select(q) = s else { panic!() };
        assert_eq!(q.body.from, vec!["audit".to_string()]);
        let s = parse("SELECT explain FROM explain WHERE explain = 1").unwrap();
        let Statement::Select(q) = s else { panic!() };
        assert_eq!(q.body.from, vec!["explain".to_string()]);
    }

    #[test]
    fn min_max_need_parens_to_be_aggregates() {
        // `MIN` as bare keyword without '(' is a parse error in an item.
        assert!(parse("SELECT MIN FROM t").is_err());
        let s = parse("SELECT MIN(deg) FROM t").unwrap();
        let Statement::Select(q) = s else { panic!() };
        assert!(matches!(
            q.body.projection[0],
            SelectItem::Aggregate {
                func: AggName::Min,
                arg: Some(_),
                ..
            }
        ));
    }

    #[test]
    fn spans_point_at_source_fragments() {
        let src = "SELECT deg, COUNT(*) FROM pol GROUP BY deg";
        let Statement::Select(q) = parse(src).unwrap() else {
            panic!()
        };
        // Whole query.
        assert_eq!((q.span.start, q.span.end), (0, src.len()));
        // The aggregate item covers `COUNT(*)`.
        let SelectItem::Aggregate { span, .. } = &q.body.projection[1] else {
            panic!()
        };
        assert_eq!(&src[span.start..span.end], "COUNT(*)");
        // GROUP BY column ref covers the trailing `deg`.
        let g = q.body.group_by[0].span;
        assert_eq!(&src[g.start..g.end], "deg");
        assert_eq!(g.start, src.rfind("deg").unwrap());

        // Set-operator keyword spans land on the operators themselves.
        let src2 = "SELECT uid FROM pol EXCEPT SELECT uid FROM el";
        let Statement::Select(q2) = parse(src2).unwrap() else {
            panic!()
        };
        assert_eq!(q2.set_op_spans.len(), 1);
        let s = q2.set_op_spans[0];
        assert_eq!(&src2[s.start..s.end], "EXCEPT");

        // Qualified colrefs span `table.column`.
        let src3 = "SELECT * FROM pol JOIN el ON pol.uid = el.uid";
        let Statement::Select(q3) = parse(src3).unwrap() else {
            panic!()
        };
        let Some(Cond::Cmp {
            left: Scalar::Column(l),
            ..
        }) = &q3.body.selection
        else {
            panic!()
        };
        assert_eq!(&src3[l.span.start..l.span.end], "pol.uid");
    }

    #[test]
    fn parse_errors_carry_spans() {
        // `SELECT * t` — error points at the unexpected `t`.
        let err = parse("SELECT * t").unwrap_err();
        let span = err.span().expect("parse errors carry spans");
        assert_eq!((span.start, span.end), (9, 10));
        // Truncated input points a zero-width span at EOF.
        let err = parse("SELECT * FROM").unwrap_err();
        let span = err.span().expect("eof errors carry spans");
        assert_eq!(span.start, "SELECT * FROM".len());
    }
}
