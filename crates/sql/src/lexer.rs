//! The SQL lexer.

use crate::error::SqlError;
use crate::span::Span;
use crate::token::{Keyword, Token};

/// Lexes a statement string into tokens. Comments (`-- …` to end of line)
/// and whitespace are skipped. Identifiers are case-preserving; keywords
/// are recognised case-insensitively.
///
/// # Errors
///
/// Returns [`SqlError::Lex`] on unterminated strings, malformed numbers, or
/// unexpected characters, with a byte offset for diagnostics.
pub fn lex(input: &str) -> Result<Vec<Token>, SqlError> {
    lex_spanned(input).map(|(tokens, _)| tokens)
}

/// Like [`lex`], but also returns each token's byte [`Span`] into `input`
/// (parallel to the token vector). The parser threads these spans into the
/// AST so parse errors and `exptime-lint` diagnostics can point carets at
/// exact source positions.
///
/// # Errors
///
/// Same failure modes as [`lex`].
pub fn lex_spanned(input: &str) -> Result<(Vec<Token>, Vec<Span>), SqlError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut spans = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let tok_start = i;
        let before = tokens.len();
        let c = bytes[i] as char;
        match c {
            c if c.is_ascii_whitespace() => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '.' if bytes.get(i + 1) == Some(&b'.') => {
                tokens.push(Token::DotDot);
                i += 2;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(Token::Ne);
                i += 2;
            }
            '<' => match bytes.get(i + 1) {
                Some(b'=') => {
                    tokens.push(Token::Le);
                    i += 2;
                }
                Some(b'>') => {
                    tokens.push(Token::Ne);
                    i += 2;
                }
                _ => {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let start = i + 1;
                // Collect raw bytes and decode once: the only split
                // points are ASCII quotes, which can never land inside a
                // multi-byte UTF-8 sequence, so non-ASCII content passes
                // through intact.
                let mut s: Vec<u8> = Vec::new();
                let mut j = start;
                loop {
                    match bytes.get(j) {
                        None => {
                            return Err(SqlError::Lex {
                                offset: i,
                                message: "unterminated string literal".into(),
                            })
                        }
                        Some(b'\'') if bytes.get(j + 1) == Some(&b'\'') => {
                            s.push(b'\'');
                            j += 2;
                        }
                        Some(b'\'') => {
                            j += 1;
                            break;
                        }
                        Some(&b) => {
                            s.push(b);
                            j += 1;
                        }
                    }
                }
                let s = String::from_utf8(s).expect("input was valid UTF-8");
                tokens.push(Token::Str(s));
                i = j;
            }
            c if c.is_ascii_digit()
                || (c == '-' && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)) =>
            {
                let start = i;
                if c == '-' {
                    i += 1;
                }
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let is_float = i + 1 < bytes.len()
                    && bytes[i] == b'.'
                    && (bytes[i + 1] as char).is_ascii_digit();
                if is_float {
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                    let text = &input[start..i];
                    tokens.push(Token::Float(text.parse().map_err(|_| SqlError::Lex {
                        offset: start,
                        message: format!("malformed float `{text}`"),
                    })?));
                } else {
                    let text = &input[start..i];
                    tokens.push(Token::Int(text.parse().map_err(|_| SqlError::Lex {
                        offset: start,
                        message: format!("malformed integer `{text}`"),
                    })?));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &input[start..i];
                match Keyword::from_upper(&word.to_ascii_uppercase()) {
                    Some(k) => tokens.push(Token::Keyword(k)),
                    None => tokens.push(Token::Ident(word.to_string())),
                }
            }
            other => {
                return Err(SqlError::Lex {
                    offset: i,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
        // Each iteration lexes at most one token and leaves `i` one past
        // its final byte, so the span is simply `tok_start..i`.
        if tokens.len() > before {
            spans.push(Span::new(tok_start, i));
        }
    }
    debug_assert_eq!(tokens.len(), spans.len());
    Ok((tokens, spans))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_a_select() {
        let ts = lex("SELECT uid, deg FROM pol WHERE deg >= 25;").unwrap();
        assert_eq!(ts[0], Token::Keyword(Keyword::Select));
        assert_eq!(ts[1], Token::Ident("uid".into()));
        assert_eq!(ts[2], Token::Comma);
        assert!(ts.contains(&Token::Ge));
        assert_eq!(*ts.last().unwrap(), Token::Semicolon);
    }

    #[test]
    fn keywords_are_case_insensitive_identifiers_preserved() {
        let ts = lex("select Pol FROM pol").unwrap();
        assert_eq!(ts[0], Token::Keyword(Keyword::Select));
        assert_eq!(ts[1], Token::Ident("Pol".into()));
        assert_eq!(ts[3], Token::Ident("pol".into()));
    }

    #[test]
    fn numbers_ints_floats_negatives() {
        let ts = lex("42 -7 3.5 -0.25").unwrap();
        assert_eq!(
            ts,
            vec![
                Token::Int(42),
                Token::Int(-7),
                Token::Float(3.5),
                Token::Float(-0.25)
            ]
        );
    }

    #[test]
    fn dot_after_int_is_qualified_name_not_float() {
        // `t1.c` style: ident dot ident; `1.c` would be int dot ident.
        let ts = lex("pol.uid").unwrap();
        assert_eq!(
            ts,
            vec![
                Token::Ident("pol".into()),
                Token::Dot,
                Token::Ident("uid".into())
            ]
        );
        let ts = lex("1.x").unwrap();
        assert_eq!(ts[0], Token::Int(1));
        assert_eq!(ts[1], Token::Dot);
    }

    #[test]
    fn strings_with_escapes() {
        let ts = lex("'hello' 'it''s'").unwrap();
        assert_eq!(
            ts,
            vec![Token::Str("hello".into()), Token::Str("it's".into())]
        );
        assert!(matches!(lex("'oops"), Err(SqlError::Lex { .. })));
        // Non-ASCII payloads pass through byte-exact (a byte-as-char
        // decode would mangle them into Latin-1 mojibake).
        let ts = lex("'ünïcödé ∞'").unwrap();
        assert_eq!(ts, vec![Token::Str("ünïcödé ∞".into())]);
    }

    #[test]
    fn comments_and_operators() {
        let ts = lex("a = b -- trailing comment\n<> <= >= < > !=").unwrap();
        assert_eq!(
            ts,
            vec![
                Token::Ident("a".into()),
                Token::Eq,
                Token::Ident("b".into()),
                Token::Ne,
                Token::Le,
                Token::Ge,
                Token::Lt,
                Token::Gt,
                Token::Ne,
            ]
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            lex("SELECT @"),
            Err(SqlError::Lex { offset: 7, .. })
        ));
    }

    #[test]
    fn spans_cover_exact_token_bytes() {
        let src = "SELECT uid -- c\nFROM pol WHERE deg >= 'x''y'";
        let (ts, spans) = lex_spanned(src).unwrap();
        assert_eq!(ts.len(), spans.len());
        // Every span slices back to text that re-lexes to the same token
        // (comments/whitespace never get spans).
        for (t, s) in ts.iter().zip(&spans) {
            let frag = &src[s.start..s.end];
            let (relexed, _) = lex_spanned(frag).unwrap();
            assert_eq!(relexed, vec![t.clone()], "span {s:?} -> {frag:?}");
        }
        // Spot-check: FROM starts on line 2 (after the comment + newline).
        let from_at = src.find("FROM").unwrap();
        let from_idx = ts
            .iter()
            .position(|t| *t == Token::Keyword(Keyword::From))
            .unwrap();
        assert_eq!(spans[from_idx].start, from_at);
        assert_eq!(spans[from_idx].end, from_at + 4);
        // String literal span includes its quotes.
        let str_idx = ts.iter().position(|t| matches!(t, Token::Str(_))).unwrap();
        assert_eq!(&src[spans[str_idx].start..spans[str_idx].end], "'x''y'");
    }

    #[test]
    fn ttl_clause_tokens_and_dotdot() {
        // `5..400` must lex as Int DotDot Int, not touch the float path.
        let ts = lex("TTL 30 SLIDING ON ACCESS CLAMP 5..400").unwrap();
        assert_eq!(
            ts,
            vec![
                Token::Keyword(Keyword::Ttl),
                Token::Int(30),
                Token::Keyword(Keyword::Sliding),
                Token::Keyword(Keyword::On),
                Token::Keyword(Keyword::Access),
                Token::Keyword(Keyword::Clamp),
                Token::Int(5),
                Token::DotDot,
                Token::Int(400),
            ]
        );
        // A plain float still lexes as a float.
        assert_eq!(lex("5.4").unwrap(), vec![Token::Float(5.4)]);
    }

    #[test]
    fn expires_clause_tokens() {
        let ts = lex("INSERT INTO pol VALUES (1, 25) EXPIRES IN 10 TICKS").unwrap();
        assert!(ts.contains(&Token::Keyword(Keyword::Expires)));
        assert!(ts.contains(&Token::Keyword(Keyword::In)));
        assert!(ts.contains(&Token::Keyword(Keyword::Ticks)));
    }
}
