//! # exptime — Expiration Times for Data Management
//!
//! A complete Rust implementation of the system described in
//!
//! > Albrecht Schmidt, Christian S. Jensen, Simonas Šaltenis.
//! > *Expiration Times for Data Management.* ICDE 2006.
//!
//! This facade crate re-exports the whole stack:
//!
//! * [`core`] — the expiration-time data model and algebra: relations with
//!   per-tuple expiration times, the SPCU operators plus aggregation and
//!   difference, monotonicity classification, contributing sets and the
//!   χ/ν machinery, Schrödinger validity intervals, Theorem 3 patch
//!   queues, materialised views, and the algebraic rewriter.
//! * [`storage`] — heap tables, expiration indexes (binary heap,
//!   hierarchical timing wheel, scan baseline), B+-tree secondary indexes.
//! * [`sql`] — a SQL subset with `EXPIRES` clauses: lexer, parser,
//!   planner.
//! * [`engine`] — the assembled DBMS: logical clock, eager/lazy removal,
//!   triggers, constraints, virtual and materialised views.
//! * [`replica`] — the loosely-coupled replica simulation with message
//!   accounting.
//! * [`obs`] — the zero-dependency observability layer: the metrics
//!   registry (counters, gauges, latency histograms), the structured
//!   expiration-event stream, and the JSON snapshot export.
//! * [`wal`] — the expiration-aware write-ahead log: CRC-framed records,
//!   group commit, binary checkpoints that snapshot only live rows, and
//!   committed-prefix crash recovery that skips already-expired inserts.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

#![forbid(unsafe_code)]

pub use exptime_core as core;
pub use exptime_engine as engine;
pub use exptime_lint as lint;
pub use exptime_obs as obs;
pub use exptime_policy as policy;
pub use exptime_replica as replica;
pub use exptime_sql as sql;
pub use exptime_storage as storage;
pub use exptime_wal as wal;

/// One-stop prelude: the engine plus the most used core types.
pub mod prelude {
    pub use exptime_core::prelude::*;
    pub use exptime_engine::{
        Constraint, Database, DbConfig, DbError, DbResult, Durability, ExecResult, Removal,
    };
    pub use exptime_replica::{ReadOutcome, Replica};
}
