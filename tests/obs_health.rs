//! End-to-end acceptance tests for the staleness/SLO monitor and the
//! metrics exposition: the `\health` time-to-expiration gauges agree
//! with what EXPLAIN ANALYZE says about the same views, an induced
//! trigger-lateness breach surfaces as an `slo_breach` event, and the
//! Prometheus rendering of a live registry survives its own parser.

use exptime::engine::{Database, DbConfig, Removal};
use exptime::obs::{parse_prometheus_text, RefreshDecision, SloConfig, TTX_ETERNAL};

/// The health snapshot and EXPLAIN ANALYZE describe the same views the
/// same way: the decision recorded per view matches, and the ttx gauge
/// is exactly `texp − now` (or the eternal sentinel for Theorem 1
/// views).
#[test]
fn health_ttx_agrees_with_explain_analyze() {
    let mut db = Database::new(DbConfig::default());
    db.execute("CREATE TABLE pol (uid INT, deg INT)").unwrap();
    db.execute("CREATE TABLE el (uid INT, deg INT)").unwrap();
    db.execute("INSERT INTO pol VALUES (1, 25) EXPIRES AT 10")
        .unwrap();
    db.execute("INSERT INTO pol VALUES (2, 30) EXPIRES AT 15")
        .unwrap();
    db.execute("INSERT INTO el VALUES (2, 85) EXPIRES AT 7")
        .unwrap();
    // A monotonic view (eternal, Theorem 1) and a difference view whose
    // materialisation carries a finite texp.
    db.execute("CREATE MATERIALIZED VIEW mono AS SELECT uid FROM pol")
        .unwrap();
    db.execute("CREATE MATERIALIZED VIEW diff AS SELECT uid FROM pol EXCEPT SELECT uid FROM el")
        .unwrap();
    db.tick(2);

    let explain = db
        .explain_analyze("SELECT * FROM mono")
        .and_then(|a| db.explain_analyze("SELECT * FROM diff").map(|b| (a, b)))
        .unwrap();
    let health = db.health();
    assert_eq!(health.now, 2);

    let view = |name: &str| {
        health
            .views
            .iter()
            .find(|v| v.view == name)
            .unwrap_or_else(|| panic!("{name} missing from health"))
    };
    // The monotonic view is eternal: no finite ttx in the snapshot, the
    // gauge pinned to the sentinel, and the explain run recorded its
    // Theorem 1 decision.
    assert_eq!(view("mono").ttx, None);
    assert_eq!(view("mono").texp, None);
    assert_eq!(db.metrics().gauge_value("view.mono.ttx"), TTX_ETERNAL);
    assert!(!view("mono").is_stale());
    let mono_decision = explain
        .0
        .decisions
        .iter()
        .find(|(n, _)| n == "mono")
        .map(|(_, d)| *d)
        .unwrap();
    assert_eq!(view("mono").last_decision, Some(mono_decision));

    // The difference view's texp is el's earliest expiry (t=7): the gauge
    // must read texp − now, and agree with the decision explain saw.
    let d = view("diff");
    assert_eq!(d.texp, Some(7));
    assert_eq!(d.ttx, Some(5), "ttx = texp − now = 7 − 2");
    assert!(!d.is_stale());
    let diff_decision = explain
        .1
        .decisions
        .iter()
        .find(|(n, _)| n == "diff")
        .map(|(_, d)| *d)
        .unwrap();
    assert_eq!(d.last_decision, Some(diff_decision));

    // Past the materialisation's texp the gauge goes non-positive
    // (overdue) until the next read refreshes the view…
    db.tick(6); // now = 8 > texp = 7
    let overdue = db.health();
    let d = overdue.views.iter().find(|v| v.view == "diff").unwrap();
    assert!(d.ttx.unwrap() <= 0, "overdue: {:?}", d.ttx);
    assert!(d.is_stale());
    // …and a read brings it back: the refresh decision is a recompute or
    // patch, never a validity hit (the materialisation had expired).
    db.read_view("diff").unwrap();
    let refreshed = db.health();
    let d = refreshed.views.iter().find(|v| v.view == "diff").unwrap();
    assert!(
        matches!(
            d.last_decision,
            Some(RefreshDecision::Recompute | RefreshDecision::PatchHit)
        ),
        "{:?}",
        d.last_decision
    );
}

/// Lazy removal fires triggers late; with a zero-lateness SLO the
/// monitor must count the breach and put an `slo_breach` event into the
/// same ring as everything else.
#[test]
fn induced_trigger_lateness_breach_is_visible() {
    let mut db = Database::new(DbConfig {
        removal: Removal::Lazy {
            vacuum_every: 1_000_000, // never on its own
        },
        slo: SloConfig {
            max_trigger_lateness: 0,
            ..SloConfig::default()
        },
        ..DbConfig::default()
    });
    let ring = db.obs().install_ring(256);
    db.execute("CREATE TABLE t (k INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1) EXPIRES AT 5").unwrap();
    db.tick(20); // t = 20, the row is overdue but not yet removed
    assert_eq!(db.health().trigger_lateness_breaches, 0);
    db.vacuum(); // trigger fires at 20 for texp 5: 15 ticks late

    let health = db.health();
    assert_eq!(health.trigger_lateness_breaches, 1);
    assert!(health.total_breaches() >= 1);
    assert_eq!(format!("{}", health.status), "degraded");

    let breaches: Vec<String> = ring
        .recent(usize::MAX)
        .into_iter()
        .filter(|e| e.kind.tag() == "slo_breach")
        .map(|e| e.to_string())
        .collect();
    assert_eq!(breaches.len(), 1, "exactly one breach event");
    assert!(breaches[0].contains("trigger_lateness"), "{breaches:?}");
    assert!(
        breaches[0].contains("15"),
        "observed lateness: {breaches:?}"
    );

    // An eager database under the same workload never breaches.
    let mut eager = Database::new(DbConfig::default());
    eager.execute("CREATE TABLE t (k INT)").unwrap();
    eager
        .execute("INSERT INTO t VALUES (1) EXPIRES AT 5")
        .unwrap();
    eager.tick(20);
    assert_eq!(eager.health().trigger_lateness_breaches, 0);
    assert_eq!(format!("{}", eager.health().status), "ok");
}

/// The Prometheus text rendered from a registry that has seen real
/// traffic — counters, gauges, and histograms with live samples —
/// round-trips through the parser, and the parsed samples match the
/// registry's own numbers.
#[test]
fn live_registry_prometheus_round_trips() {
    let mut db = Database::new(DbConfig::default());
    db.execute("CREATE TABLE t (k INT, v INT)").unwrap();
    db.execute("CREATE MATERIALIZED VIEW m AS SELECT k FROM t")
        .unwrap();
    for i in 0..50 {
        db.execute(&format!(
            "INSERT INTO t VALUES ({i}, {i}) EXPIRES IN 10 TICKS"
        ))
        .unwrap();
        if i % 8 == 0 {
            db.tick(1);
            db.execute("SELECT k FROM m").unwrap();
        }
    }
    db.tick(20);
    let _ = db.health(); // populate the ttx gauges too

    let text = exptime::obs::expose_prometheus(db.metrics());
    let samples = parse_prometheus_text(&text).expect("rendered text must parse");
    assert!(!samples.is_empty());

    let value_of = |name: &str, label: Option<(&str, &str)>| {
        samples
            .iter()
            .find(|s| {
                s.name == name
                    && label.is_none_or(|(k, v)| s.labels.iter().any(|(lk, lv)| lk == k && lv == v))
            })
            .unwrap_or_else(|| panic!("{name} missing from exposition"))
            .value
    };
    let stats = db.stats();
    assert_eq!(value_of("exptime_db_inserts", None), stats.inserts as f64);
    assert_eq!(
        value_of("exptime_storage_inserts", Some(("table", "t"))),
        stats.inserts as f64
    );
    assert_eq!(
        value_of("exptime_db_query_ns_count", None),
        db.metrics().histogram("db.query_ns").snapshot().count as f64
    );
    // The ttx gauge for the (monotonic, eternal) view is the sentinel.
    assert_eq!(
        value_of("exptime_view_ttx", Some(("view", "m"))),
        TTX_ETERNAL as f64
    );
}
