//! Property tests for the tracing layer: spans nest properly (every
//! child's interval is contained in its parent's), and the span tree a
//! profiled query leaves behind mirrors the EXPLAIN ANALYZE operator
//! rows exactly.

mod common;

use common::schema2;
use exptime::core::algebra::PlanProfile;
use exptime::core::tuple;
use exptime::engine::{Database, DbConfig};
use exptime::obs::SpanRecord;
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Insert { v: i64, ttl: u64 },
    Tick { d: u64 },
    Query,
    Explain,
    Vacuum,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (-5i64..5, 1u64..30).prop_map(|(v, ttl)| Op::Insert { v, ttl }),
        2 => (1u64..12).prop_map(|d| Op::Tick { d }),
        2 => Just(Op::Query),
        1 => Just(Op::Explain),
        1 => Just(Op::Vacuum),
    ]
}

/// The labels of a profile's leaf operators, in-order.
fn profile_leaves(p: &PlanProfile, out: &mut Vec<String>) {
    if p.children.is_empty() {
        out.push(p.label.clone());
    }
    for c in &p.children {
        profile_leaves(c, out);
    }
}

/// Total nodes in a profile tree.
fn profile_nodes(p: &PlanProfile) -> usize {
    1 + p.children.iter().map(profile_nodes).sum::<usize>()
}

/// The names of the leaf spans under `root`, ordered by start time.
fn span_leaves(spans: &[SpanRecord], root: u64) -> Vec<String> {
    let mut children: HashMap<u64, Vec<&SpanRecord>> = HashMap::new();
    for s in spans {
        if let Some(p) = s.parent {
            children.entry(p).or_default().push(s);
        }
    }
    for v in children.values_mut() {
        v.sort_by_key(|s| (s.start_ns, s.id));
    }
    // Depth-first, children in start order; a node with no children in
    // the ring is a leaf.
    fn walk(id: u64, children: &HashMap<u64, Vec<&SpanRecord>>, out: &mut Vec<String>) {
        if let Some(kids) = children.get(&id) {
            for k in kids {
                if children.contains_key(&k.id) {
                    walk(k.id, children, out);
                } else {
                    out.push(k.name.clone());
                }
            }
        }
    }
    let mut out = Vec::new();
    walk(root, &children, &mut out);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Containment: under any interleaving of traced operations, every
    /// span whose parent is still in the ring starts no earlier and ends
    /// no later than that parent. (Parents evicted by the bounded ring
    /// are skipped — containment is unverifiable for them.)
    #[test]
    fn child_spans_are_contained_in_their_parents(
        ops in proptest::collection::vec(arb_op(), 1..60)
    ) {
        let mut db = Database::new(DbConfig::default());
        db.tracer().enable();
        db.create_table("t", schema2()).unwrap();
        let mut next_key = 0i64;
        for op in ops {
            match op {
                Op::Insert { v, ttl } => {
                    db.insert_ttl("t", tuple![next_key, v], ttl).unwrap();
                    next_key += 1;
                }
                Op::Tick { d } => { db.tick(d); }
                Op::Query => { db.execute("SELECT k FROM t").unwrap(); }
                Op::Explain => { db.explain_analyze("SELECT k, v FROM t WHERE v >= 0").unwrap(); }
                Op::Vacuum => { db.vacuum(); }
            }
            let spans = db.tracer().recent(usize::MAX);
            let by_id: HashMap<u64, &SpanRecord> =
                spans.iter().map(|s| (s.id, s)).collect();
            for s in &spans {
                prop_assert!(s.end_ns >= s.start_ns, "span {} runs backwards", s.name);
                if let Some(p) = s.parent.and_then(|p| by_id.get(&p)) {
                    prop_assert!(
                        s.start_ns >= p.start_ns && s.end_ns <= p.end_ns,
                        "span {} [{}, {}] escapes parent {} [{}, {}]",
                        s.name, s.start_ns, s.end_ns, p.name, p.start_ns, p.end_ns
                    );
                }
            }
        }
    }

    /// The grafted span tree under `eval` has exactly the EXPLAIN ANALYZE
    /// operator rows as its leaves, whatever the plan shape.
    #[test]
    fn explain_analyze_leaves_match_span_tree(
        rows in proptest::collection::vec((0i64..8, -3i64..4, 5u64..40), 1..25),
        join in prop_oneof![Just(true), Just(false)],
    ) {
        let mut db = Database::new(DbConfig::default());
        db.create_table("r", schema2()).unwrap();
        db.create_table("s", schema2()).unwrap();
        for (i, (k, v, ttl)) in rows.iter().enumerate() {
            let target = if i % 3 == 0 { "s" } else { "r" };
            db.insert_ttl(target, tuple![*k, *v], *ttl).unwrap();
        }
        db.tracer().enable();
        let sql = if join {
            "SELECT r.k FROM r JOIN s ON r.k = s.k WHERE r.v >= 0"
        } else {
            "SELECT k FROM r EXCEPT SELECT k FROM s"
        };
        let explain = db.explain_analyze(sql).unwrap();

        let spans = db.tracer().recent(usize::MAX);
        // The eval span of this explain is the most recent one.
        let eval = spans.iter().rev().find(|s| s.name == "eval").unwrap();
        let mut want = Vec::new();
        profile_leaves(&explain.profile, &mut want);
        let got = span_leaves(&spans, eval.id);
        prop_assert_eq!(&got, &want, "span-tree leaves ≠ operator rows");
        // And the whole grafted subtree is node-for-node the profile.
        let by_id: HashMap<u64, &SpanRecord> = spans.iter().map(|x| (x.id, x)).collect();
        let grafted = spans.iter().filter(|s| {
            // Descendant of eval: walk parents.
            let mut cur = s.parent;
            while let Some(p) = cur {
                if p == eval.id { return true; }
                cur = by_id.get(&p).and_then(|x| x.parent);
            }
            false
        }).count();
        prop_assert_eq!(grafted, profile_nodes(&explain.profile));
    }
}
