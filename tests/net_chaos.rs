//! Chaos tests for the wire-protocol layer: whatever a seeded fault
//! schedule does to the link — loss, duplication, reordering, delay,
//! partitions — a session that heals and quiesces must have applied
//! every submitted statement exactly once, and a server drained under
//! live load must lose zero acknowledged writes.
//!
//! Every failure message carries the seed and the full fault schedule
//! (`FaultyLink::schedule_report`), so a failing run is replayable by
//! constructing `FaultSpec::chaos(seed)` again.
//!
//! The seed matrix test honours `EXPTIME_NET_SEEDS` (comma-separated
//! integers) so CI can pin distinct deterministic schedules per job,
//! mirroring the replica layer's `EXPTIME_CHAOS_SEEDS`.

use exptime::engine::SharedDatabase;
use exptime::prelude::*;
use exptime::replica::{FaultSpec, RetryPolicy};
use exptime_net::{
    ChaosNet, ClientConfig, ClientError, NetClient, NetConfig, NetServer, ReplyBody,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The standard chaos workload: a table plus `n` distinct-key inserts.
fn workload(n: usize) -> Vec<String> {
    let mut stmts = vec!["CREATE TABLE c (k INT, v INT)".to_string()];
    for i in 0..n {
        stmts.push(format!(
            "INSERT INTO c VALUES ({i}, {}) EXPIRES NEVER",
            i * 10
        ));
    }
    stmts
}

/// One full chaos run: submit, let the schedule rage, heal, quiesce,
/// and check the exactly-once verdict plus the final row count.
fn check_exactly_once(seed: u64, n: usize) -> std::result::Result<(), String> {
    let mut db = Database::default();
    let mut net = ChaosNet::new(FaultSpec::chaos(seed), RetryPolicy::default());
    for s in workload(n) {
        net.submit(&s);
    }
    let _ = net.run(&mut db, 400);
    net.link().heal();
    let report = net.run(&mut db, 20_000);
    let schedule = net.link().schedule_report();
    if !report.quiesced {
        return Err(format!(
            "seed {seed}: did not quiesce: {report:?}\n{schedule}"
        ));
    }
    if !net.exactly_once() {
        return Err(format!(
            "seed {seed}: duplicated or lost effects: {report:?}\ncounts: {:?}\n{schedule}",
            net.exec_counts()
        ));
    }
    let rows = db.execute("SELECT * FROM c").unwrap().rows().unwrap().len();
    if rows != n {
        return Err(format!(
            "seed {seed}: {rows} rows, expected {n}\n{schedule}"
        ));
    }
    Ok(())
}

/// Deterministic seed matrix for CI: `EXPTIME_NET_SEEDS=1,2,3` pins the
/// exact fault schedules; the default covers eight distinct ones.
#[test]
fn net_chaos_seed_matrix() {
    let seeds = std::env::var("EXPTIME_NET_SEEDS").unwrap_or_else(|_| "1,2,3,4,5,6,7,8".into());
    let mut ran = 0usize;
    for part in seeds.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let seed: u64 = part
            .parse()
            .unwrap_or_else(|e| panic!("EXPTIME_NET_SEEDS entry `{part}`: {e}"));
        if let Err(msg) = check_exactly_once(seed, 16) {
            panic!("net chaos matrix: {msg}");
        }
        ran += 1;
    }
    assert!(ran > 0, "EXPTIME_NET_SEEDS named no seeds");
}

/// A hard mid-stream partition (not just random faults): the link is
/// cut outright, retransmissions pile up, and after reconnection the
/// session must finish with exactly-once effects.
#[test]
fn hard_partition_heals_to_exactly_once() {
    let mut db = Database::default();
    let mut net = ChaosNet::new(FaultSpec::none(91), RetryPolicy::default());
    for s in workload(12) {
        net.submit(&s);
    }
    for _ in 0..6 {
        net.tick(&mut db);
    }
    net.link().link().disconnect();
    for _ in 0..50 {
        net.tick(&mut db);
    }
    net.link().link().reconnect();
    let report = net.run(&mut db, 20_000);
    assert!(report.quiesced, "{report:?}");
    assert!(net.exactly_once(), "{report:?}");
    assert!(
        report.retransmissions > 0,
        "a 50-tick hard partition must force retries: {report:?}"
    );
}

/// A frame dribbling in across the server's read-timeout cadence must
/// not desync the stream: the reader keeps the partial prefix across
/// timeouts, so a slow sender on a lossy link resumes mid-frame
/// instead of having its connection spuriously killed.
#[test]
fn slow_frame_straddling_server_read_timeout_survives() {
    use exptime_net::{encode_msg, FrameReader, Msg};
    use std::io::Write;
    use std::time::Duration;

    let mut db = Database::default();
    db.execute("CREATE TABLE s (k INT)").unwrap();
    let shared = SharedDatabase::from_database(db);
    let cfg = NetConfig {
        read_timeout: Duration::from_millis(50),
        ..NetConfig::default()
    };
    let server = NetServer::serve(&shared, "127.0.0.1:0", cfg).expect("bind");
    let mut stream = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();

    // Hello split mid-header, with a pause well past the read timeout.
    let hello = encode_msg(&Msg::Hello {
        token: 0,
        last_seq: 0,
    });
    let (head, tail) = hello.split_at(5);
    stream.write_all(head).unwrap();
    std::thread::sleep(Duration::from_millis(150));
    stream.write_all(tail).unwrap();
    let mut frames = FrameReader::new();
    let msg = frames.read_msg(&mut stream).expect("welcome");
    let Some(Msg::Welcome { token, .. }) = msg else {
        panic!("expected Welcome, got {msg:?}");
    };
    assert_ne!(token, 0);

    // The connection stays usable: a statement split mid-payload, with
    // another straddling pause, still executes and answers.
    let stmt = encode_msg(&Msg::Stmt {
        seq: 1,
        deadline_ms: 0,
        sql: "INSERT INTO s VALUES (1) EXPIRES NEVER".into(),
    });
    let (a, b) = stmt.split_at(stmt.len() / 2);
    stream.write_all(a).unwrap();
    std::thread::sleep(Duration::from_millis(120));
    stream.write_all(b).unwrap();
    let reply = frames.read_msg(&mut stream).expect("reply");
    assert!(
        matches!(
            reply,
            Some(Msg::Reply {
                seq: 1,
                body: ReplyBody::Affected(1)
            })
        ),
        "expected Affected(1), got {reply:?}"
    );
    drop(server);
}

/// Drain under live TCP load: clients hammer inserts while the server
/// is told to drain mid-stream. Afterwards, every acknowledged insert
/// must be present in the engine — acked writes survive the drain, and
/// the shed/refused remainder was simply never applied.
#[test]
fn drain_under_load_loses_no_acked_writes() {
    const CLIENTS: usize = 8;
    const PER_CLIENT: usize = 200;

    let mut db = Database::default();
    db.execute("CREATE TABLE kv (k INT, v INT)").unwrap();
    let shared = SharedDatabase::from_database(db);
    let server = NetServer::serve(&shared, "127.0.0.1:0", NetConfig::default()).expect("bind");
    let addr = server.local_addr().to_string();
    let acked = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for c in 0..CLIENTS {
        let addr = addr.clone();
        let acked = Arc::clone(&acked);
        handles.push(std::thread::spawn(move || {
            let cfg = ClientConfig {
                // A short budget so threads give up quickly once the
                // server starts refusing with ShuttingDown.
                policy: RetryPolicy {
                    base: 1,
                    factor: 2,
                    max_interval: 10,
                    jitter: 1,
                    budget: 300,
                },
                seed: 0xd0a1 + c as u64,
                ..ClientConfig::default()
            };
            let Ok(mut client) = NetClient::connect(&addr, cfg) else {
                return;
            };
            for j in 0..PER_CLIENT {
                let sql = format!(
                    "INSERT INTO kv VALUES ({}, 0) EXPIRES NEVER",
                    c * PER_CLIENT + j
                );
                match client.execute(&sql) {
                    Ok(ReplyBody::Affected(_)) => {
                        acked.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(_) => {}
                    // Drain in progress: refusals, Bye, or a closed
                    // socket. All expected; stop offering load.
                    Err(
                        ClientError::Io(_)
                        | ClientError::Exhausted { .. }
                        | ClientError::Fatal { .. },
                    ) => return,
                    Err(e) => panic!("conn {c}: unexpected {e}"),
                }
            }
        }));
    }
    // Let load build, then pull the plug mid-stream.
    std::thread::sleep(std::time::Duration::from_millis(40));
    let report = server.drain();
    for h in handles {
        h.join().expect("client thread");
    }
    let total_acked = acked.load(Ordering::Relaxed);
    let rows = shared.with(|db| {
        db.execute("SELECT k FROM kv")
            .expect("post-drain select")
            .rows()
            .map(exptime::core::relation::Relation::len)
            .unwrap_or(0)
    }) as u64;
    assert!(
        total_acked > 0,
        "drain happened before any load landed; report: {report:?}"
    );
    assert!(
        rows >= total_acked,
        "acked writes lost on drain: {rows} rows < {total_acked} acked ({report:?})"
    );
}

/// `NetServer::serve` registers its degraded-read endpoint with the
/// engine, so the whole-database audit reasons about what the server
/// may serve stale — and a drain unregisters it again.
#[test]
fn serving_registers_the_degraded_read_endpoint_for_audit() {
    let mut db = Database::default();
    db.execute_script(
        "CREATE TABLE ledger (k INT);
         CREATE MATERIALIZED VIEW totals AS SELECT COUNT(*) FROM ledger;",
    )
    .unwrap();
    db.execute("INSERT INTO ledger VALUES (1) EXPIRES NEVER")
        .unwrap();
    let shared = SharedDatabase::from_database(db);

    let server = NetServer::serve(&shared, "127.0.0.1:0", NetConfig::default()).expect("bind");
    let report = shared.with(|d| d.audit());
    assert!(
        report
            .endpoints
            .iter()
            .any(|e| e.name == "net.degraded_read"),
        "endpoint missing from audit: {report:?}"
    );
    // An eternal row feeding a non-monotone view behind a stale-serving
    // endpoint has no finite staleness bound: the cross-layer X005.
    assert!(
        report.lint.codes().contains(&exptime::lint::Code::X005),
        "{:?}",
        report.lint
    );

    server.drain();
    let report = shared.with(|d| d.audit());
    assert!(
        report.endpoints.is_empty(),
        "drained server left its endpoint registered: {report:?}"
    );
    // Without a serving endpoint the unbounded view is engine-local:
    // no X005.
    assert!(report.lint.is_clean(), "{:?}", report.lint);
}
