//! End-to-end SQL integration tests: full scenarios through the engine,
//! and equivalence between the SQL path (parse → plan → eval) and the
//! direct algebra path.

use exptime::core::aggregate::AggFunc;
use exptime::core::algebra::Expr;
use exptime::core::predicate::Predicate;
use exptime::core::time::Time;
use exptime::core::tuple;
use exptime::prelude::*;

fn fixture() -> Database {
    let mut db = Database::default();
    db.execute_script(
        "CREATE TABLE users    (uid INT, name TEXT);
         CREATE TABLE sessions (sid INT, uid INT);
         CREATE TABLE tickets  (tid INT, uid INT, price FLOAT);
         INSERT INTO users VALUES (1, 'ada'), (2, 'brian'), (3, 'cleo') EXPIRES NEVER;
         INSERT INTO sessions VALUES (10, 1) EXPIRES AT 30;
         INSERT INTO sessions VALUES (11, 2) EXPIRES AT 60;
         INSERT INTO sessions VALUES (12, 1) EXPIRES AT 90;
         INSERT INTO tickets VALUES (100, 1, 9.5), (101, 2, 12.0) EXPIRES AT 45;
         INSERT INTO tickets VALUES (102, 3, 7.25) EXPIRES AT 20;",
    )
    .unwrap();
    db
}

#[test]
fn sql_and_algebra_paths_agree() {
    let mut db = fixture();
    let cases: Vec<(&str, Expr)> = vec![
        (
            "SELECT sid FROM sessions WHERE uid = 1",
            Expr::base("sessions")
                .select(Predicate::attr_eq_const(1, 1))
                .project([0]),
        ),
        (
            "SELECT name FROM users JOIN sessions ON users.uid = sessions.uid",
            Expr::base("users")
                .product(Expr::base("sessions"))
                .select(Predicate::attr_eq_attr(0, 3))
                .project([1]),
        ),
        (
            "SELECT uid FROM users EXCEPT SELECT uid FROM sessions",
            Expr::base("users")
                .project([0])
                .difference(Expr::base("sessions").project([1])),
        ),
        (
            "SELECT uid, COUNT(*) FROM sessions GROUP BY uid",
            Expr::base("sessions")
                .aggregate([1], AggFunc::Count)
                .project([1, 2]),
        ),
    ];
    for tick in [0u64, 25, 50, 95] {
        if Time::new(tick) > db.now() {
            db.advance_to(Time::new(tick));
        }
        for (sql, expr) in &cases {
            let via_sql = db.execute(sql).unwrap().rows().unwrap().clone();
            let via_algebra = db.query_expr(expr).unwrap().rel;
            assert!(
                via_sql.set_eq(&via_algebra),
                "paths diverge at t={tick} for {sql}:\n{via_sql:?}\nvs {via_algebra:?}"
            );
        }
    }
}

#[test]
fn session_lifecycle_scenario() {
    let mut db = fixture();
    // Active users now: 1 and 2.
    let active = db
        .execute("SELECT name FROM users JOIN sessions ON users.uid = sessions.uid")
        .unwrap();
    let names: Vec<String> = active
        .rows()
        .unwrap()
        .iter()
        .map(|(t, _)| t.attr(0).as_str().unwrap().to_string())
        .collect();
    assert!(names.contains(&"ada".to_string()) && names.contains(&"brian".to_string()));
    assert!(!names.contains(&"cleo".to_string()));

    // At 60 brian's session is gone, ada's second one remains.
    db.advance_to(Time::new(60));
    let active = db
        .execute("SELECT uid FROM sessions")
        .unwrap()
        .rows()
        .unwrap()
        .clone();
    assert_eq!(active.len(), 1);
    assert!(active.contains(&tuple![1]));

    // Users with no session: brian and cleo.
    let idle = db
        .execute("SELECT uid FROM users EXCEPT SELECT uid FROM sessions")
        .unwrap()
        .rows()
        .unwrap()
        .clone();
    assert_eq!(idle.len(), 2);
    assert!(idle.contains(&tuple![2]) && idle.contains(&tuple![3]));
}

#[test]
fn aggregates_over_floats() {
    let mut db = fixture();
    let avg = db
        .execute("SELECT AVG(price) FROM tickets")
        .unwrap()
        .rows()
        .unwrap()
        .clone();
    assert_eq!(avg.len(), 1);
    let v = avg.iter().next().unwrap().0.attr(0).as_float().unwrap();
    assert!((v - (9.5 + 12.0 + 7.25) / 3.0).abs() < 1e-9);

    // After the cheap ticket expires, the average shifts.
    db.advance_to(Time::new(20));
    let avg = db
        .execute("SELECT AVG(price) FROM tickets")
        .unwrap()
        .rows()
        .unwrap()
        .clone();
    let v = avg.iter().next().unwrap().0.attr(0).as_float().unwrap();
    assert!((v - (9.5 + 12.0) / 2.0).abs() < 1e-9);

    for (sql, expect) in [
        ("SELECT MIN(price) FROM tickets", 9.5),
        ("SELECT MAX(price) FROM tickets", 12.0),
        ("SELECT SUM(price) FROM tickets", 21.5),
    ] {
        let r = db.execute(sql).unwrap().rows().unwrap().clone();
        let got = r.iter().next().unwrap().0.attr(0).as_float().unwrap();
        assert!((got - expect).abs() < 1e-9, "{sql}: {got}");
    }
}

#[test]
fn three_way_set_operations() {
    let mut db = Database::default();
    db.execute_script(
        "CREATE TABLE a (x INT);
         CREATE TABLE b (x INT);
         CREATE TABLE c (x INT);
         INSERT INTO a VALUES (1), (2), (3), (4) EXPIRES AT 100;
         INSERT INTO b VALUES (2), (3) EXPIRES AT 100;
         INSERT INTO c VALUES (3), (4), (5) EXPIRES AT 100;",
    )
    .unwrap();
    let r = db
        .execute("SELECT x FROM a EXCEPT SELECT x FROM b INTERSECT SELECT x FROM c")
        .unwrap()
        .rows()
        .unwrap()
        .clone();
    // Left-associated: (a − b) ∩ c = {1, 4} ∩ {3, 4, 5} = {4}.
    assert_eq!(r.len(), 1);
    assert!(r.contains(&tuple![4]));
    let u = db
        .execute("SELECT x FROM b UNION SELECT x FROM c")
        .unwrap()
        .rows()
        .unwrap()
        .clone();
    assert_eq!(u.len(), 4);
}

#[test]
fn union_texp_is_max_through_sql() {
    let mut db = Database::default();
    db.execute_script(
        "CREATE TABLE a (x INT);
         CREATE TABLE b (x INT);
         INSERT INTO a VALUES (7) EXPIRES AT 10;
         INSERT INTO b VALUES (7) EXPIRES AT 20;",
    )
    .unwrap();
    let r = db
        .execute("SELECT x FROM a UNION SELECT x FROM b")
        .unwrap()
        .rows()
        .unwrap()
        .clone();
    assert_eq!(r.texp(&tuple![7]), Some(Time::new(20)), "Eq. 4: max");
    // And it survives past a's copy.
    db.advance_to(Time::new(15));
    let r = db
        .execute("SELECT x FROM a UNION SELECT x FROM b")
        .unwrap()
        .rows()
        .unwrap()
        .clone();
    assert!(r.contains(&tuple![7]));
}

#[test]
fn views_through_sql_track_updates_and_expiry() {
    let mut db = fixture();
    db.execute(
        "CREATE MATERIALIZED VIEW by_user AS SELECT uid, COUNT(*) FROM sessions GROUP BY uid",
    )
    .unwrap();
    let v = db.read_view("by_user").unwrap();
    assert!(v.contains(&tuple![1, 2]) && v.contains(&tuple![2, 1]));

    // Insert (an update to base data) must be reflected on next read.
    db.execute("INSERT INTO sessions VALUES (13, 3) EXPIRES AT 70")
        .unwrap();
    let v = db.read_view("by_user").unwrap();
    assert!(v.contains(&tuple![3, 1]), "{v:?}");

    // Expiration alone must also be reflected (via the paper's machinery).
    db.advance_to(Time::new(30));
    let v = db.read_view("by_user").unwrap();
    assert!(v.contains(&tuple![1, 1]), "ada down to one session: {v:?}");

    // Explicit delete is an update too.
    db.execute("DELETE FROM sessions WHERE uid = 2").unwrap();
    let v = db.read_view("by_user").unwrap();
    assert!(!v
        .iter()
        .any(|(t, _)| t.attr(0) == &exptime::core::value::Value::Int(2)));
}

#[test]
fn errors_are_reported_not_panicked() {
    let mut db = fixture();
    for bad in [
        "SELECT nope FROM users",
        "SELECT * FROM ghosts",
        "SELECT uid FROM users EXCEPT SELECT name FROM users", // type mismatch
        "INSERT INTO users VALUES (1)",                        // arity
        "INSERT INTO users VALUES ('x', 'y')",                 // type
        "SELECT uid, COUNT(*) FROM sessions",                  // missing GROUP BY
        "CREATE TABLE users (uid INT)",                        // duplicate
    ] {
        assert!(db.execute(bad).is_err(), "should fail: {bad}");
    }
    // The database remains usable after errors.
    assert_eq!(
        db.execute("SELECT * FROM users")
            .unwrap()
            .rows()
            .unwrap()
            .len(),
        3
    );
}

#[test]
fn comparison_operators_through_sql() {
    let mut db = fixture();
    for (sql, expect) in [
        ("SELECT sid FROM sessions WHERE sid >= 11", 2),
        ("SELECT sid FROM sessions WHERE sid > 11", 1),
        ("SELECT sid FROM sessions WHERE sid <= 10", 1),
        ("SELECT sid FROM sessions WHERE sid <> 11", 2),
        ("SELECT sid FROM sessions WHERE NOT sid = 11", 2),
        ("SELECT sid FROM sessions WHERE sid = 10 OR sid = 12", 2),
        ("SELECT sid FROM sessions WHERE sid = 10 AND uid = 1", 1),
        ("SELECT sid FROM sessions WHERE sid = 10 AND uid = 2", 0),
    ] {
        let n = db.execute(sql).unwrap().rows().unwrap().len();
        assert_eq!(n, expect, "{sql}");
    }
}

#[test]
fn expires_in_is_relative_to_statement_time() {
    let mut db = Database::default();
    db.execute("CREATE TABLE t (x INT)").unwrap();
    db.advance_to(Time::new(40));
    db.execute("INSERT INTO t VALUES (1) EXPIRES IN 10 TICKS")
        .unwrap();
    let rel = db
        .execute("SELECT * FROM t")
        .unwrap()
        .rows()
        .unwrap()
        .clone();
    assert_eq!(rel.texp(&tuple![1]), Some(Time::new(50)));
    db.advance_to(Time::new(50));
    assert!(db
        .execute("SELECT * FROM t")
        .unwrap()
        .rows()
        .unwrap()
        .is_empty());
}

#[test]
fn multi_statement_script_reports_last_result() {
    let mut db = Database::default();
    let r = db
        .execute_script(
            "CREATE TABLE t (x INT);
             INSERT INTO t VALUES (1), (2) EXPIRES AT 9;
             SELECT * FROM t;",
        )
        .unwrap();
    assert_eq!(r.rows().unwrap().len(), 2);
    // A failing middle statement stops the script.
    let err = db.execute_script("INSERT INTO t VALUES (3) EXPIRES AT 9; SELECT * FROM ghosts; INSERT INTO t VALUES (4) EXPIRES AT 9;");
    assert!(err.is_err());
    assert_eq!(
        db.execute("SELECT * FROM t").unwrap().rows().unwrap().len(),
        3,
        "statements before the failure applied; after did not"
    );
}

#[test]
fn multi_aggregate_queries() {
    let mut db = fixture();
    // Two aggregates side by side, grouped.
    let r = db
        .execute("SELECT uid, COUNT(*), MIN(sid) FROM sessions GROUP BY uid")
        .unwrap()
        .rows()
        .unwrap()
        .clone();
    assert_eq!(r.len(), 2);
    assert!(r.contains(&tuple![1, 2, 10]), "{r:?}");
    assert!(r.contains(&tuple![2, 1, 11]), "{r:?}");

    // Ungrouped multi-aggregate (single global partition).
    let r = db
        .execute("SELECT COUNT(*), MAX(sid), MIN(sid) FROM sessions")
        .unwrap()
        .rows()
        .unwrap()
        .clone();
    assert_eq!(r.len(), 1);
    assert!(r.contains(&tuple![3, 12, 10]), "{r:?}");

    // Expiration flows through: at 30 ada's first session is gone.
    db.advance_to(Time::new(30));
    let r = db
        .execute("SELECT uid, COUNT(*), MIN(sid) FROM sessions GROUP BY uid")
        .unwrap()
        .rows()
        .unwrap()
        .clone();
    assert!(r.contains(&tuple![1, 1, 12]), "{r:?}");
    assert!(r.contains(&tuple![2, 1, 11]), "{r:?}");
}

#[test]
fn having_filters_groups() {
    let mut db = fixture();
    // Users with more than one session.
    let r = db
        .execute("SELECT uid, COUNT(*) FROM sessions GROUP BY uid HAVING COUNT(*) > 1")
        .unwrap()
        .rows()
        .unwrap()
        .clone();
    assert_eq!(r.len(), 1);
    assert!(r.contains(&tuple![1, 2]), "{r:?}");

    // HAVING over an aggregate NOT in the SELECT list.
    let r = db
        .execute("SELECT uid FROM sessions GROUP BY uid HAVING MIN(sid) >= 11")
        .unwrap()
        .rows()
        .unwrap()
        .clone();
    assert_eq!(r.len(), 1);
    assert!(r.contains(&tuple![2]), "{r:?}");

    // HAVING referencing a group column, combined with an aggregate.
    let r = db
        .execute(
            "SELECT uid, COUNT(*) FROM sessions GROUP BY uid \
             HAVING uid = 1 AND COUNT(*) >= 2",
        )
        .unwrap()
        .rows()
        .unwrap()
        .clone();
    assert_eq!(r.len(), 1);

    // Expiration flows through HAVING: ada drops to one session at 30.
    db.advance_to(Time::new(30));
    let r = db
        .execute("SELECT uid, COUNT(*) FROM sessions GROUP BY uid HAVING COUNT(*) > 1")
        .unwrap()
        .rows()
        .unwrap()
        .clone();
    assert!(r.is_empty(), "{r:?}");

    // Errors: aggregates in WHERE; non-grouped columns in HAVING.
    assert!(db
        .execute("SELECT uid FROM sessions WHERE COUNT(*) > 1 GROUP BY uid")
        .is_err());
    assert!(db
        .execute("SELECT uid, COUNT(*) FROM sessions GROUP BY uid HAVING sid = 10")
        .is_err());
}

#[test]
fn order_by_and_limit() {
    let mut db = fixture();
    let r = db
        .execute("SELECT sid, uid FROM sessions ORDER BY sid DESC")
        .unwrap()
        .rows()
        .unwrap()
        .clone();
    let sids: Vec<i64> = r.iter().map(|(t, _)| t.attr(0).as_int().unwrap()).collect();
    assert_eq!(sids, vec![12, 11, 10]);

    let r = db
        .execute("SELECT sid, uid FROM sessions ORDER BY uid, sid DESC LIMIT 2")
        .unwrap()
        .rows()
        .unwrap()
        .clone();
    let rows: Vec<(i64, i64)> = r
        .iter()
        .map(|(t, _)| (t.attr(0).as_int().unwrap(), t.attr(1).as_int().unwrap()))
        .collect();
    assert_eq!(
        rows,
        vec![(12, 1), (10, 1)],
        "uid asc, sid desc within ties"
    );

    // LIMIT 0 and LIMIT beyond cardinality.
    assert!(db
        .execute("SELECT sid FROM sessions LIMIT 0")
        .unwrap()
        .rows()
        .unwrap()
        .is_empty());
    assert_eq!(
        db.execute("SELECT sid FROM sessions LIMIT 99")
            .unwrap()
            .rows()
            .unwrap()
            .len(),
        3
    );

    // ORDER BY applies after compounds, to the final result.
    let r = db
        .execute("SELECT uid FROM users EXCEPT SELECT uid FROM sessions ORDER BY uid DESC LIMIT 1")
        .unwrap()
        .rows()
        .unwrap()
        .clone();
    assert_eq!(r.len(), 1);
    assert!(r.contains(&tuple![3]));

    // Errors: unknown / qualified order columns.
    assert!(db
        .execute("SELECT sid FROM sessions ORDER BY nope")
        .is_err());
    assert!(db
        .execute("SELECT sid FROM sessions ORDER BY sessions.sid")
        .is_err());
}

#[test]
fn sql_figures_roundtrip_against_bench_module() {
    // The figure regeneration module must keep matching the paper.
    let f1 = exptime_bench::figures::fig1();
    assert!(f1.contains("⟨1, 25⟩") && f1.contains("15"));
    let t2 = exptime_bench::figures::table2();
    assert!(t2.contains("texp(e) = 6"));
}
