//! Property tests for the aggregation machinery (paper Section 2.6.1):
//! ordering and soundness of the three expiration-time assignment modes,
//! exactness of ν against the literal per-tick definition, and the
//! Section 3.4.1 bounds on aggregate value changes.

mod common;

use common::schema2;
use exptime::core::aggregate::{self, neutral, nu, AggFunc, AggMode, Row};
use exptime::core::relation::Relation;
use exptime::core::time::Time;
use exptime::core::tuple::Tuple;
use exptime::core::value::Value;
use proptest::prelude::*;

const HORIZON: u64 = 80;

fn arb_partition() -> impl Strategy<Value = Vec<Row>> {
    proptest::collection::vec(
        (
            0i64..64,
            -3i64..4,
            prop_oneof![4 => (1u64..40).prop_map(Time::new), 1 => Just(Time::INFINITY)],
        )
            .prop_map(|(id, v, e)| (Tuple::new(vec![Value::Int(id), Value::Int(v)]), e)),
        1..12,
    )
}

fn arb_func() -> impl Strategy<Value = AggFunc> {
    prop_oneof![
        Just(AggFunc::Count),
        Just(AggFunc::Sum(1)),
        Just(AggFunc::Avg(1)),
        Just(AggFunc::Min(1)),
        Just(AggFunc::Max(1)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Mode ordering: naive ≤ contributing ≤ exact, always.
    #[test]
    fn mode_lifetimes_are_ordered(p in arb_partition(), f in arb_func()) {
        let naive = aggregate::result_texp(&p, f, AggMode::Naive, Time::ZERO)?;
        let contributing = aggregate::result_texp(&p, f, AggMode::Contributing, Time::ZERO)?;
        let exact = aggregate::result_texp(&p, f, AggMode::Exact, Time::ZERO)?;
        prop_assert!(naive <= contributing, "{f}: naive {naive} ≤ contributing {contributing} on {p:?}");
        prop_assert!(contributing <= exact, "{f}: contributing {contributing} ≤ exact {exact} on {p:?}");
    }

    /// Soundness of every mode: while the result tuple is unexpired, the
    /// aggregate value computed at materialisation time is still the true
    /// value (no stale value is ever visible).
    #[test]
    fn modes_never_show_stale_values(
        p in arb_partition(),
        f in arb_func(),
        mode in prop_oneof![Just(AggMode::Naive), Just(AggMode::Contributing), Just(AggMode::Exact)],
    ) {
        let original = f.apply(&p)?;
        let texp = aggregate::result_texp(&p, f, mode, Time::ZERO)?;
        for tau in 0..HORIZON {
            let tau = Time::new(tau);
            if tau >= texp {
                break;
            }
            let surviving: Vec<Row> = p.iter().filter(|(_, e)| *e > tau).cloned().collect();
            let now = f.apply(&surviving)?;
            prop_assert_eq!(
                &now, &original,
                "{} under {:?}: value changed at {} but result tuple lives to {}\npartition {:?}",
                f, mode, tau, texp, p
            );
        }
    }

    /// Exactness of ν: the sweep agrees with the per-tick oracle, and the
    /// value really changes at ν (tightness) unless ν = ∞.
    #[test]
    fn nu_is_exact_and_tight(p in arb_partition(), f in arb_func()) {
        let mut apply = |rows: &[Row]| f.apply(rows);
        let fast = nu::nu(Time::ZERO, &p, &mut apply)?;
        let mut apply = |rows: &[Row]| f.apply(rows);
        let slow = nu::nu_naive(Time::ZERO, &p, &mut apply, Time::new(HORIZON))?;
        match slow {
            Some(t) => prop_assert_eq!(fast, t),
            None => prop_assert!(fast.is_infinite() || fast > Time::new(HORIZON)),
        }
        if let Some(v) = fast.finite() {
            if v <= HORIZON {
                let before: Vec<Row> = p.iter().filter(|(_, e)| *e > Time::new(v).pred()).cloned().collect();
                let at: Vec<Row> = p.iter().filter(|(_, e)| *e > Time::new(v)).cloned().collect();
                prop_assert_ne!(
                    f.apply(&before)?, f.apply(&at)?,
                    "ν = {} is not a change point of {} on {:?}", fast, f, p
                );
            }
        }
    }

    /// χ marks exactly the ticks before value changes.
    #[test]
    fn chi_matches_direct_comparison(p in arb_partition(), f in arb_func(), tau in 0u64..50) {
        let tau = Time::new(tau);
        let mut apply = |rows: &[Row]| f.apply(rows);
        let flagged = nu::chi(tau, &p, &mut apply)?;
        let at: Vec<Row> = p.iter().filter(|(_, e)| *e > tau).cloned().collect();
        let next: Vec<Row> = p.iter().filter(|(_, e)| *e > tau.succ()).cloned().collect();
        prop_assert_eq!(flagged, f.apply(&at)? != f.apply(&next)?);
    }

    /// The value timeline is change-minimal and bounded by |P| + 1 entries
    /// (a deterministic f takes at most |P| distinct values before the
    /// partition expires — Section 3.4.1).
    #[test]
    fn timeline_is_minimal_and_bounded(p in arb_partition(), f in arb_func()) {
        let mut apply = |rows: &[Row]| f.apply(rows);
        let tl = nu::value_timeline(Time::ZERO, &p, &mut apply)?;
        prop_assert!(tl.len() <= p.len() + 1, "{} entries for |P| = {}", tl.len(), p.len());
        for w in tl.windows(2) {
            prop_assert_ne!(&w[0].1, &w[1].1, "adjacent equal values not merged");
            prop_assert!(w[0].0 < w[1].0);
        }
        let mut apply = |rows: &[Row]| f.apply(rows);
        prop_assert_eq!(nu::change_count(Time::ZERO, &p, &mut apply)?, tl.len() - 1);
    }

    /// Tuple validity intervals cover exactly the instants where the
    /// aggregate equals its original value.
    #[test]
    fn tuple_validity_is_pointwise_exact(p in arb_partition(), f in arb_func()) {
        let original = f.apply(&p)?;
        let mut apply = |rows: &[Row]| f.apply(rows);
        let validity = nu::tuple_validity(Time::ZERO, &p, &mut apply)?;
        for tau in 0..HORIZON {
            let tau = Time::new(tau);
            let surviving: Vec<Row> = p.iter().filter(|(_, e)| *e > tau).cloned().collect();
            let now = f.apply(&surviving)?;
            prop_assert_eq!(
                validity.contains(tau),
                now == original,
                "at {}: value {:?} vs original {:?}", tau, now, original
            );
        }
    }

    /// Contributing-set soundness, stated operationally: expiring all time
    /// slices strictly before the contributing bound leaves the aggregate
    /// value unchanged.
    #[test]
    fn contributing_bound_is_sound(p in arb_partition(), f in arb_func()) {
        let bound = neutral::contributing_texp(&p, f)?;
        let original = f.apply(&p)?;
        for tau in 0..HORIZON {
            let tau = Time::new(tau);
            if tau >= bound {
                break;
            }
            let surviving: Vec<Row> = p.iter().filter(|(_, e)| *e > tau).cloned().collect();
            prop_assert_eq!(f.apply(&surviving)?, original.clone(), "{} at {}", f, tau);
        }
    }

    /// The aggregation operator (Eq. 8) keeps every input tuple, appends
    /// the partition value, and under Exact mode assigns one expiration
    /// time per partition.
    #[test]
    fn operator_shape(rows in proptest::collection::vec(
        (0i64..5, 0i64..4, 1u64..40), 1..16)
    ) {
        let mut rel = Relation::new(schema2());
        for &(k, v, e) in &rows {
            rel.insert(Tuple::new(vec![Value::Int(k), Value::Int(v)]), Time::new(e)).unwrap();
        }
        let out = exptime::core::algebra::ops::aggregate(
            &rel, &[0], AggFunc::Count, AggMode::Exact, Time::ZERO,
        ).unwrap();
        prop_assert_eq!(out.len(), rel.len(), "Klug-style: one output per input tuple");
        // One partition-level bound, capped per row by its base texp: a
        // result row never outlives its base tuple, and rows whose bases
        // outlive the bound share the bound exactly.
        for (t1, e1) in out.iter() {
            let base1 = rel.texp(&t1.project(&[0, 1])).expect("base exists");
            prop_assert!(e1 <= base1, "result row outlives base");
            for (t2, e2) in out.iter() {
                if t1.attr(0) == t2.attr(0) {
                    let base2 = rel.texp(&t2.project(&[0, 1])).expect("base exists");
                    if e1 < base1 && e2 < base2 {
                        // Both capped by the shared partition bound.
                        prop_assert_eq!(e1, e2);
                    }
                    prop_assert_eq!(t1.attr(2), t2.attr(2), "same value per partition");
                }
            }
        }
    }
}
