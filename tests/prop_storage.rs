//! Property tests for the storage substrate: the relation's internal
//! index, the row heap, and the table stay coherent with simple models
//! under arbitrary operation interleavings.

mod common;

use common::schema2;
use exptime::core::relation::{DuplicatePolicy, Relation};
use exptime::core::time::Time;
use exptime::core::tuple;
use exptime::core::tuple::Tuple;
use exptime::core::value::Value;
use exptime::storage::{IndexKind, RowHeap, Table};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum RelOp {
    InsertMax { k: i64, e: u64 },
    InsertReplace { k: i64, e: u64 },
    Remove { k: i64 },
    Expire { tau: u64 },
    Sort,
}

fn arb_rel_op() -> impl Strategy<Value = RelOp> {
    prop_oneof![
        3 => (0i64..10, 1u64..40).prop_map(|(k, e)| RelOp::InsertMax { k, e }),
        1 => (0i64..10, 1u64..40).prop_map(|(k, e)| RelOp::InsertReplace { k, e }),
        1 => (0i64..10).prop_map(|k| RelOp::Remove { k }),
        1 => (0u64..40).prop_map(|tau| RelOp::Expire { tau }),
        1 => Just(RelOp::Sort),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The relation's tuple index stays coherent with a HashMap model
    /// under inserts (both policies), removals, eager expiry, and sorts.
    #[test]
    fn relation_index_coherence(ops in proptest::collection::vec(arb_rel_op(), 1..60)) {
        let mut rel = Relation::new(schema2());
        let mut model: HashMap<i64, u64> = HashMap::new();
        for op in ops {
            match op {
                RelOp::InsertMax { k, e } => {
                    rel.insert(tuple![k, 0], Time::new(e)).unwrap();
                    let cur = model.entry(k).or_insert(e);
                    *cur = (*cur).max(e);
                }
                RelOp::InsertReplace { k, e } => {
                    rel.insert_with(tuple![k, 0], Time::new(e), DuplicatePolicy::Replace)
                        .unwrap();
                    model.insert(k, e);
                }
                RelOp::Remove { k } => {
                    let removed = rel.remove(&tuple![k, 0]);
                    prop_assert_eq!(
                        removed.map(|t| t.finite().unwrap()),
                        model.remove(&k)
                    );
                }
                RelOp::Expire { tau } => {
                    let removed = rel.expire(Time::new(tau));
                    let expect: Vec<i64> = model
                        .iter()
                        .filter(|(_, &e)| e <= tau)
                        .map(|(&k, _)| k)
                        .collect();
                    prop_assert_eq!(removed.len(), expect.len());
                    model.retain(|_, &mut e| e > tau);
                }
                RelOp::Sort => rel.sort_by_tuple(),
            }
            // Full coherence check after every step.
            prop_assert_eq!(rel.len(), model.len());
            for (&k, &e) in &model {
                prop_assert_eq!(rel.texp(&tuple![k, 0]), Some(Time::new(e)), "key {}", k);
            }
            for (t, e) in rel.iter() {
                let k = t.attr(0).as_int().unwrap();
                prop_assert_eq!(model.get(&k).copied(), e.finite(), "stray key {}", k);
            }
        }
    }

    /// Row-heap slots: ids stay valid across deletions and reuse; stale
    /// ids never resolve.
    #[test]
    fn row_heap_generation_safety(ops in proptest::collection::vec(
        prop_oneof![2 => Just(true), 1 => Just(false)], 1..80
    )) {
        let mut heap = RowHeap::new();
        let mut live: Vec<(exptime::storage::RowId, i64)> = Vec::new();
        let mut dead: Vec<exptime::storage::RowId> = Vec::new();
        let mut next = 0i64;
        for insert in ops {
            if insert || live.is_empty() {
                let id = heap.insert(tuple![next], Time::INFINITY);
                live.push((id, next));
                next += 1;
            } else {
                let (id, _) = live.swap_remove(next as usize % live.len());
                prop_assert!(heap.delete(id).is_some());
                dead.push(id);
            }
            prop_assert_eq!(heap.len(), live.len());
            for &(id, v) in &live {
                prop_assert_eq!(
                    heap.get(id).map(|(t, _)| t.attr(0).as_int().unwrap()),
                    Some(v)
                );
            }
            for &id in &dead {
                prop_assert!(heap.get(id).is_none(), "stale id resolved");
            }
        }
    }

    /// The full table (heap + expiry index + primary + secondary index)
    /// agrees with a model across inserts, deletes, texp updates, and
    /// expiry, for every expiration-index kind.
    #[test]
    fn table_model_coherence(
        ops in proptest::collection::vec(
            prop_oneof![
                3 => (0i64..12, 1u64..50).prop_map(|(k, e)| (0u8, k, e)),
                1 => (0i64..12, 1u64..50).prop_map(|(k, e)| (1u8, k, e)),
                1 => (0i64..12,).prop_map(|(k,)| (2u8, k, 0)),
                2 => (1u64..12,).prop_map(|(d,)| (3u8, 0, d)),
            ],
            1..50
        ),
        kind in prop_oneof![Just(IndexKind::Heap), Just(IndexKind::Wheel), Just(IndexKind::Scan)],
    ) {
        let mut table = Table::new("t", schema2(), kind);
        table.create_index(1).unwrap();
        let mut model: HashMap<Tuple, u64> = HashMap::new();
        let mut now = 0u64;
        for (op, k, arg) in ops {
            let t = tuple![k, k % 3];
            match op {
                0 => {
                    // Insert with TTL: duplicates keep max.
                    let e = now + arg;
                    table.insert(t.clone(), Time::new(e), Time::new(now)).unwrap();
                    let cur = model.entry(t).or_insert(e);
                    *cur = (*cur).max(e);
                }
                1 => {
                    // Update expiration outright.
                    let e = now + arg;
                    let hit = table.update_texp(&t, Time::new(e), Time::new(now)).unwrap();
                    prop_assert_eq!(hit, model.contains_key(&t));
                    if hit {
                        model.insert(t, e);
                    }
                }
                2 => {
                    let removed = table.delete(&t);
                    prop_assert_eq!(removed.is_some(), model.remove(&t).is_some());
                }
                _ => {
                    now += arg;
                    let removed = table.expire_due(Time::new(now));
                    let expect = model.values().filter(|&&e| e <= now).count();
                    prop_assert_eq!(removed.len(), expect, "{:?} at {}", kind, now);
                    model.retain(|_, &mut e| e > now);
                }
            }
            prop_assert_eq!(table.len(), model.len(), "{:?}", kind);
            // Secondary index agrees with the model per value group.
            for v in 0..3i64 {
                let got = table.select_eq(1, &Value::Int(v), Time::new(now)).len();
                let expect = model
                    .iter()
                    .filter(|(t, &e)| t.attr(1) == &Value::Int(v) && e > now)
                    .count();
                prop_assert_eq!(got, expect, "{:?} v={} now={}", kind, v, now);
            }
        }
    }
}
