//! Integration tests across the engine and storage layers: the engine must
//! behave identically regardless of which expiration index backs its
//! tables, eager and lazy removal must be observationally equivalent for
//! reads, and a randomised workload is checked against a simple model.

mod common;

use exptime::core::time::Time;
use exptime::core::tuple;
use exptime::core::tuple::Tuple;
use exptime::core::value::Value;
use exptime::prelude::*;
use exptime::storage::IndexKind;
use proptest::prelude::*;
use std::collections::HashMap;

fn db_with(index: IndexKind, removal: Removal) -> Database {
    let mut db = Database::new(DbConfig {
        index,
        removal,
        ..DbConfig::default()
    });
    db.execute("CREATE TABLE t (k INT, v INT)").unwrap();
    db
}

/// One randomly generated workload step.
#[derive(Debug, Clone)]
enum Step {
    Insert { k: i64, v: i64, ttl: u64 },
    Delete { k: i64, v: i64 },
    Renew { k: i64, v: i64, ttl: u64 },
    Tick(u64),
    Query,
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        4 => (0i64..12, 0i64..4, 1u64..30).prop_map(|(k, v, ttl)| Step::Insert { k, v, ttl }),
        1 => (0i64..12, 0i64..4).prop_map(|(k, v)| Step::Delete { k, v }),
        1 => (0i64..12, 0i64..4, 1u64..30).prop_map(|(k, v, ttl)| Step::Renew { k, v, ttl }),
        3 => (1u64..10).prop_map(Step::Tick),
        2 => Just(Step::Query),
    ]
}

/// Reference model: tuple → absolute expiration time.
#[derive(Default)]
struct Model {
    rows: HashMap<Tuple, u64>,
    now: u64,
}

impl Model {
    fn visible(&self) -> Vec<(Tuple, u64)> {
        self.rows
            .iter()
            .filter(|(_, &e)| e > self.now)
            .map(|(t, &e)| (t.clone(), e))
            .collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The engine equals the model for every index kind and removal
    /// policy, on arbitrary interleavings of inserts, deletes, renewals,
    /// ticks, and queries.
    #[test]
    fn engine_matches_model(
        steps in proptest::collection::vec(arb_step(), 1..60),
        index in prop_oneof![Just(IndexKind::Heap), Just(IndexKind::Wheel), Just(IndexKind::Scan)],
        removal in prop_oneof![
            Just(Removal::Eager),
            Just(Removal::Lazy { vacuum_every: 7 }),
            Just(Removal::Lazy { vacuum_every: 1000 }),
        ],
    ) {
        let mut db = db_with(index, removal);
        let mut model = Model::default();
        for step in steps {
            match step {
                Step::Insert { k, v, ttl } | Step::Renew { k, v, ttl } => {
                    let tuple = tuple![k, v];
                    db.insert_ttl("t", tuple.clone(), ttl)?;
                    let new_e = model.now + ttl;
                    // Engine keeps max texp on duplicate insert; the model
                    // mirrors that (only among still-visible rows — an
                    // expired row is semantically absent, so a re-insert
                    // replaces it outright).
                    let e = model.rows.get(&tuple).copied().filter(|&e| e > model.now)
                        .map_or(new_e, |old| old.max(new_e));
                    model.rows.insert(tuple, e);
                }
                Step::Delete { k, v } => {
                    let tuple = tuple![k, v];
                    let visible = model.rows.get(&tuple).is_some_and(|&e| e > model.now);
                    let n = db.execute(&format!("DELETE FROM t WHERE k = {k} AND v = {v}"))?
                        .affected().unwrap();
                    prop_assert_eq!(n == 1, visible, "delete visibility mismatch");
                    model.rows.remove(&tuple);
                }
                Step::Tick(d) => {
                    db.tick(d);
                    model.now += d;
                }
                Step::Query => {
                    let got = db.execute("SELECT * FROM t")?.rows().unwrap().clone();
                    let want = model.visible();
                    prop_assert_eq!(got.len(), want.len(),
                        "cardinality mismatch at t={} under {:?}/{:?}\nengine {:?}\nmodel {:?}",
                        model.now, index, removal, got, want);
                    for (t, e) in &want {
                        prop_assert_eq!(got.texp(t), Some(Time::new(*e)), "texp of {:?}", t);
                    }
                }
            }
        }
    }

    /// Eager and lazy engines produce identical query answers on the same
    /// workload; only trigger timing and physical row counts differ.
    #[test]
    fn removal_policies_are_observationally_equivalent(
        steps in proptest::collection::vec(arb_step(), 1..50),
    ) {
        let mut eager = db_with(IndexKind::Heap, Removal::Eager);
        let mut lazy = db_with(IndexKind::Wheel, Removal::Lazy { vacuum_every: 1000 });
        for step in steps {
            match step {
                Step::Insert { k, v, ttl } | Step::Renew { k, v, ttl } => {
                    eager.insert_ttl("t", tuple![k, v], ttl)?;
                    lazy.insert_ttl("t", tuple![k, v], ttl)?;
                }
                Step::Delete { k, v } => {
                    let a = eager.execute(&format!("DELETE FROM t WHERE k = {k} AND v = {v}"))?;
                    let b = lazy.execute(&format!("DELETE FROM t WHERE k = {k} AND v = {v}"))?;
                    prop_assert_eq!(a.affected(), b.affected());
                }
                Step::Tick(d) => {
                    eager.tick(d);
                    lazy.tick(d);
                }
                Step::Query => {
                    let a = eager.execute("SELECT * FROM t")?.rows().unwrap().clone();
                    let b = lazy.execute("SELECT * FROM t")?.rows().unwrap().clone();
                    prop_assert!(a.set_eq(&b), "eager {:?} vs lazy {:?}", a, b);
                }
            }
        }
        // Lazy never fires triggers earlier than texp; eager fires exactly.
        for e in eager.triggers().log() {
            prop_assert_eq!(e.fired_at, e.texp);
        }
        for e in lazy.triggers().log() {
            prop_assert!(e.fired_at >= e.texp);
        }
    }
}

#[test]
fn secondary_index_agrees_with_scan_through_engine() {
    let mut indexed = db_with(IndexKind::Heap, Removal::Eager);
    indexed.table_mut("t").unwrap().create_index(1).unwrap();
    let mut plain = db_with(IndexKind::Heap, Removal::Eager);
    for i in 0..500i64 {
        let ttl = 1 + (i as u64 * 7) % 90;
        indexed.insert_ttl("t", tuple![i, i % 16], ttl).unwrap();
        plain.insert_ttl("t", tuple![i, i % 16], ttl).unwrap();
    }
    for tick in [0u64, 30, 60, 95] {
        if Time::new(tick) > indexed.now() {
            indexed.advance_to(Time::new(tick));
            plain.advance_to(Time::new(tick));
        }
        let now = indexed.now();
        for v in 0..16i64 {
            let mut a = indexed
                .table_mut("t")
                .unwrap()
                .select_eq(1, &Value::Int(v), now);
            let mut b = plain
                .table_mut("t")
                .unwrap()
                .select_eq(1, &Value::Int(v), now);
            a.sort_by(|(x, _), (y, _)| x.cmp(y));
            b.sort_by(|(x, _), (y, _)| x.cmp(y));
            assert_eq!(a, b, "v={v} at t={tick}");
        }
    }
    assert!(indexed.table("t").unwrap().stats().index_lookups > 0);
}

#[test]
fn trigger_chain_reinsertion_is_safe() {
    // A trigger that reinserts expired rows (session renewal pattern)
    // must not wedge the engine or fire spuriously.
    let mut db = db_with(IndexKind::Heap, Removal::Eager);
    use std::sync::{Arc, Mutex};
    let renew: Arc<Mutex<Vec<Tuple>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = renew.clone();
    db.on_expire(
        "t",
        "collect",
        Box::new(move |e| {
            sink.lock().unwrap().push(e.tuple.clone());
        }),
    );
    db.insert_ttl("t", tuple![1, 0], 5).unwrap();
    let mut renew_budget = 3;
    for _ in 0..10 {
        db.tick(5);
        let expired: Vec<Tuple> = renew.lock().unwrap().drain(..).collect();
        for t in expired {
            if renew_budget > 0 {
                renew_budget -= 1;
                db.insert_ttl("t", t, 5).unwrap();
            }
        }
    }
    // 1 original + 3 renewals, each expired exactly once.
    assert_eq!(db.stats().expired, 4);
    assert!(db
        .execute("SELECT * FROM t")
        .unwrap()
        .rows()
        .unwrap()
        .is_empty());
}

#[test]
fn update_expiration_reschedules_in_every_index() {
    for index in [IndexKind::Heap, IndexKind::Wheel, IndexKind::Scan] {
        let mut db = db_with(index, Removal::Eager);
        db.insert_ttl("t", tuple![1, 0], 100).unwrap();
        // Shorten, then verify it actually fires at the new time.
        db.execute("UPDATE t SET EXPIRES AT 10 WHERE k = 1")
            .unwrap();
        db.tick(10);
        assert!(
            db.execute("SELECT * FROM t")
                .unwrap()
                .rows()
                .unwrap()
                .is_empty(),
            "{index:?}"
        );
        assert_eq!(db.stats().expired, 1, "{index:?}");
        let log = db.triggers().log();
        assert_eq!(log.len(), 1);
        assert_eq!(
            log[0].texp,
            Time::new(10),
            "{index:?}: fired at the updated time"
        );
    }
}
