//! Golden tests for the whole-database audit: every example workload,
//! replayed as SQL at a fixed logical instant, must produce exactly the
//! committed `EXPLAIN AUDIT` report — and a *finite* static staleness
//! bound for every view in it.
//!
//! The goldens live in `tests/golden/audit/*.golden`. When an audit
//! report legitimately changes, regenerate them with
//!
//! ```sh
//! UPDATE_AUDIT_GOLDEN=1 cargo test --test audit_golden
//! ```
//!
//! and commit the diff — CI runs this suite without the variable, so an
//! unreviewed drift in any report fails the gate.

use exptime::core::rewrite::TickBound;
use exptime::engine::{Database, DbConfig, ExecResult};
use std::fs;
use std::path::PathBuf;

/// Replays the workload, runs `EXPLAIN AUDIT` through the SQL surface,
/// checks every view's bound is finite, and diffs against the golden.
fn check(name: &str, db: &mut Database) {
    let report = db.audit();
    for v in &report.views {
        assert!(
            matches!(v.bound, TickBound::Finite(_)),
            "{name}: view `{}` has no finite static staleness bound",
            v.name
        );
    }

    let r = db.execute("EXPLAIN AUDIT").unwrap();
    let ExecResult::Ok(rendered) = r else {
        panic!("{name}: EXPLAIN AUDIT returned {r:?}")
    };

    let golden = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden/audit")
        .join(format!("{name}.golden"));
    if std::env::var_os("UPDATE_AUDIT_GOLDEN").is_some() {
        fs::create_dir_all(golden.parent().unwrap()).unwrap();
        fs::write(&golden, &rendered).unwrap();
        return;
    }
    let expected = fs::read_to_string(&golden).unwrap_or_else(|e| {
        panic!(
            "{name}: missing golden {} ({e}); \
             run UPDATE_AUDIT_GOLDEN=1 cargo test --test audit_golden",
            golden.display()
        )
    });
    assert_eq!(
        rendered,
        expected,
        "{name}: audit report drifted from {}; if intended, regenerate \
         with UPDATE_AUDIT_GOLDEN=1 and commit the diff",
        golden.display()
    );
}

fn db() -> Database {
    Database::new(DbConfig::default())
}

/// `examples/quickstart.rs`: the paper's Figure 1 database with explicit
/// `EXPIRES AT` times and a monotone materialised view, audited at t=5.
#[test]
fn quickstart() {
    let mut db = db();
    db.execute_script(
        "CREATE TABLE pol (uid INT, deg INT);
         CREATE TABLE el  (uid INT, deg INT);
         INSERT INTO pol VALUES (1, 25) EXPIRES AT 10;
         INSERT INTO pol VALUES (2, 25) EXPIRES AT 15;
         INSERT INTO pol VALUES (3, 35) EXPIRES AT 10;
         INSERT INTO el  VALUES (1, 75) EXPIRES AT 5;
         INSERT INTO el  VALUES (2, 85) EXPIRES AT 3;
         INSERT INTO el  VALUES (4, 90) EXPIRES AT 2;
         CREATE MATERIALIZED VIEW politics_fans AS
           SELECT uid FROM pol WHERE deg = 25;",
    )
    .unwrap();
    db.tick(5);
    check("quickstart", &mut db);
}

/// `examples/session_store.rs`: sliding sessions under a hard-capped
/// audit log, dashboards over both, audited after 20 ticks of traffic
/// in which users 0–3 kept touching their sessions.
#[test]
fn session_store() {
    let mut db = db();
    db.execute_script(
        "CREATE TABLE sessions (sid INT, uid INT) TTL 30 SLIDING ON ACCESS;
         CREATE TABLE audit (sid INT, uid INT) TTL 120;",
    )
    .unwrap();
    for uid in 0..8i64 {
        let sid = 100 + uid;
        db.execute(&format!("INSERT INTO sessions VALUES ({sid}, {uid})"))
            .unwrap();
        db.execute(&format!("INSERT INTO audit VALUES ({sid}, {uid})"))
            .unwrap();
    }
    db.execute_script(
        "CREATE MATERIALIZED VIEW per_user AS
           SELECT uid, COUNT(*) FROM sessions GROUP BY uid;
         CREATE MATERIALIZED VIEW logged_out AS
           SELECT sid FROM audit EXCEPT SELECT sid FROM sessions;",
    )
    .unwrap();
    for _ in 0..2 {
        db.tick(10);
        for uid in 0..4i64 {
            db.execute(&format!("SELECT * FROM sessions WHERE sid = {}", 100 + uid))
                .unwrap();
        }
    }
    check("session_store", &mut db);
}

/// `examples/news_service.rs`: per-insert lifetimes (no table policy),
/// one monotone and two non-monotone dashboards, audited at t=10 after
/// one round of election-interest renewals.
#[test]
fn news_service() {
    let mut db = db();
    db.execute_script(
        "CREATE TABLE politics  (uid INT, deg INT);
         CREATE TABLE elections (uid INT, deg INT);",
    )
    .unwrap();
    for uid in 1..=6i64 {
        db.execute(&format!(
            "INSERT INTO politics VALUES ({uid}, {}) EXPIRES IN 40 TICKS",
            20 + uid * 10
        ))
        .unwrap();
        if uid % 2 == 0 {
            db.execute(&format!(
                "INSERT INTO elections VALUES ({uid}, {}) EXPIRES IN 8 TICKS",
                60 + uid * 5
            ))
            .unwrap();
        }
    }
    db.execute_script(
        "CREATE MATERIALIZED VIEW engaged AS
           SELECT uid FROM politics WHERE deg >= 50;
         CREATE MATERIALIZED VIEW election_histogram AS
           SELECT deg, COUNT(*) FROM elections GROUP BY deg;
         CREATE MATERIALIZED VIEW teaser_targets AS
           SELECT uid FROM politics EXCEPT SELECT uid FROM elections;",
    )
    .unwrap();
    db.tick(5);
    for uid in [2i64, 4] {
        db.execute(&format!(
            "INSERT INTO elections VALUES ({uid}, 70) EXPIRES IN 8 TICKS"
        ))
        .unwrap();
    }
    db.tick(5);
    check("news_service", &mut db);
}

/// `examples/sensor_monitor.rs`: a declared reading-validity TTL, a
/// MIN dashboard over it, and an eternal zone catalog (the one table a
/// staleness audit can say nothing finite about), audited at t=5.
#[test]
fn sensor_monitor() {
    let mut db = db();
    db.execute("CREATE TABLE readings (zone INT, temp INT) TTL 20")
        .unwrap();
    let feed: &[(u64, i64, i64)] = &[(0, 1, 21), (2, 1, 24), (5, 1, 18), (1, 2, 30), (3, 2, 30)];
    let mut now = 0u64;
    for &(at, zone, temp) in feed {
        if at > now {
            db.tick(at - now);
            now = at;
        }
        db.execute(&format!("INSERT INTO readings VALUES ({zone}, {temp})"))
            .unwrap();
    }
    db.execute_script(
        "CREATE MATERIALIZED VIEW coldest AS
           SELECT zone, MIN(temp) FROM readings GROUP BY zone;
         CREATE TABLE zones (zone INT);
         INSERT INTO zones VALUES (1) EXPIRES NEVER;
         INSERT INTO zones VALUES (2) EXPIRES NEVER;
         INSERT INTO zones VALUES (3) EXPIRES NEVER;",
    )
    .unwrap();
    check("sensor_monitor", &mut db);
}

/// `examples/stream_window.rs`: a RANGE-10 stream window as per-insert
/// TTLs under a COUNT(*) materialised view, audited mid-stream at t=8.
#[test]
fn stream_window() {
    let mut db = db();
    db.execute_script(
        "CREATE TABLE clicks (page INT, user INT);
         CREATE MATERIALIZED VIEW page_counts AS
           SELECT page, COUNT(*) FROM clicks GROUP BY page;",
    )
    .unwrap();
    for i in 0..24i64 {
        let t = (i as u64) / 3;
        let now = db.now().finite().unwrap();
        if t > now {
            db.tick(t - now);
        }
        db.execute(&format!(
            "INSERT INTO clicks VALUES ({}, {}) EXPIRES IN 10 TICKS",
            i * 7 % 5,
            i * 13 % 23
        ))
        .unwrap();
    }
    db.tick(1);
    check("stream_window", &mut db);
}

/// `examples/cache_sync.rs`: the server side of the replica example —
/// staggered offer lifetimes, a third reserved, the client's two view
/// shapes materialised server-side, audited at t=10.
#[test]
fn cache_sync() {
    let mut db = db();
    db.execute_script(
        "CREATE TABLE offers   (item INT, price INT);
         CREATE TABLE reserved (item INT, price INT);",
    )
    .unwrap();
    for i in 0..12i64 {
        db.execute(&format!(
            "INSERT INTO offers VALUES ({i}, {}) EXPIRES IN {} TICKS",
            100 + i,
            40 + (i as u64 % 60)
        ))
        .unwrap();
        if i % 3 == 0 {
            db.execute(&format!(
                "INSERT INTO reserved VALUES ({i}, {}) EXPIRES IN {} TICKS",
                100 + i,
                10 + (i as u64 % 20)
            ))
            .unwrap();
        }
    }
    db.execute_script(
        "CREATE MATERIALIZED VIEW open_offers AS
           SELECT item FROM offers;
         CREATE MATERIALIZED VIEW available AS
           SELECT item FROM offers EXCEPT SELECT item FROM reserved;",
    )
    .unwrap();
    db.tick(10);
    check("cache_sync", &mut db);
}
