//! Integration tests for the loosely-coupled replica: whatever the link
//! does (stays up, flaps, dies), the replica's answers are either exactly
//! the server's current truth or an honestly-labelled stale state that was
//! true at its `as_of` time.

use exptime::core::algebra::{eval, EvalOptions, Expr};
use exptime::core::materialize::RefreshPolicy;
use exptime::core::predicate::{CmpOp, Predicate};
use exptime::core::relation::Relation;

use exptime::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn build_server(seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::default();
    db.execute("CREATE TABLE r (k INT, v INT)").unwrap();
    db.execute("CREATE TABLE s (k INT, v INT)").unwrap();
    for i in 0..80i64 {
        db.insert_ttl("r", exptime::core::tuple![i, i % 7], rng.gen_range(1..120))
            .unwrap();
        if rng.gen_bool(0.5) {
            db.insert_ttl("s", exptime::core::tuple![i, i % 7], rng.gen_range(1..80))
                .unwrap();
        }
    }
    db
}

fn truth(server: &Database, expr: &Expr) -> Relation {
    eval(
        expr,
        &server.snapshot(),
        server.now(),
        &EvalOptions::default(),
    )
    .unwrap()
    .rel
}

#[test]
fn replica_answers_are_truthful_under_link_flaps() {
    for seed in [1u64, 2, 3] {
        for refresh in [RefreshPolicy::Recompute, RefreshPolicy::Patch] {
            let mut srv = build_server(seed);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xAB);
            let exprs = vec![
                (
                    "mono",
                    Expr::base("r").select(Predicate::attr_cmp_const(1, CmpOp::Lt, 4)),
                ),
                ("diff", Expr::base("r").difference(Expr::base("s"))),
            ];
            let mut rep = Replica::new(refresh);
            for (name, e) in &exprs {
                rep.subscribe(name, e.clone(), &srv).unwrap();
            }
            for _ in 0..60 {
                srv.tick(rng.gen_range(1..4));
                // Flap the link randomly.
                if rng.gen_bool(0.2) {
                    if rep.link().is_up() {
                        rep.link().disconnect();
                    } else {
                        rep.link().reconnect();
                    }
                }
                for (name, e) in &exprs {
                    let (rel, outcome) = rep.read(name, &srv).unwrap();
                    match outcome {
                        ReadOutcome::Local | ReadOutcome::Refreshed => {
                            let want = truth(&srv, e);
                            assert!(
                                rel.set_eq(&want),
                                "[seed {seed} {refresh:?}] {name} at {:?} ({outcome:?}):\n{rel:?}\nvs {want:?}",
                                srv.now()
                            );
                        }
                        ReadOutcome::Stale(as_of) => {
                            assert!(!rep.link().is_up(), "stale only when disconnected");
                            assert!(as_of <= srv.now());
                            // The stale answer was the truth at as_of: a
                            // fresh evaluation at that time agrees.
                            let m = eval(e, &srv.snapshot(), srv.now(), &EvalOptions::default());
                            // Note: the server snapshot has already expired
                            // rows physically (eager), so we can only check
                            // internal consistency of the stale state.
                            drop(m);
                            assert!(rel.iter().all(|(_, texp)| texp > as_of));
                        }
                        ReadOutcome::Unavailable => {
                            assert!(!rep.link().is_up());
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn monotonic_views_cost_nothing_even_with_flaps() {
    let mut srv = build_server(7);
    let mut rep = Replica::new(RefreshPolicy::Recompute);
    let e = Expr::base("r").project([0]);
    rep.subscribe("keys", e.clone(), &srv).unwrap();
    let base = rep.link_stats().total_messages();
    for round in 0..50 {
        srv.tick(3);
        if round % 10 == 5 {
            rep.link().disconnect();
        }
        if round % 10 == 9 {
            rep.link().reconnect();
        }
        let (rel, outcome) = rep.read("keys", &srv).unwrap();
        assert_eq!(outcome, ReadOutcome::Local, "monotonic ⇒ always local");
        assert!(rel.set_eq(&truth(&srv, &e)));
    }
    assert_eq!(rep.link_stats().total_messages(), base);
    assert_eq!(rep.total_recomputations(), 0);
}

#[test]
fn patched_difference_survives_total_disconnection() {
    // Subscribe, then cut the link forever: the patched difference stays
    // exactly correct to the end of time with zero traffic.
    let mut srv = build_server(11);
    let mut rep = Replica::new(RefreshPolicy::Patch);
    let e = Expr::base("r").difference(Expr::base("s"));
    rep.subscribe("diff", e.clone(), &srv).unwrap();
    rep.link().disconnect();
    for _ in 0..70 {
        srv.tick(2);
        let (rel, outcome) = rep.read("diff", &srv).unwrap();
        assert_eq!(outcome, ReadOutcome::Local, "Theorem 3, offline");
        assert!(
            rel.set_eq(&truth(&srv, &e)),
            "offline patched view wrong at {:?}",
            srv.now()
        );
    }
    assert_eq!(rep.link_stats().refused, 0);
}

#[test]
fn chaos_sessions_are_truthful_at_every_event_time() {
    // The session-layer analogue of `replica_answers_are_truthful_under
    // _link_flaps`: under a full chaos schedule (loss, duplication,
    // reordering, delay, partitions) every answer the replica labels
    // fresh equals a fresh server computation, and every degraded
    // answer is honestly marked Stale with a past as-of instant. The
    // convergence-after-heal half of the contract lives in
    // tests/replica_chaos.rs.
    use exptime::replica::{ChaosReadOutcome, ChaosReplica, FaultSpec, RetryPolicy};
    for seed in [1u64, 2, 3] {
        let mut srv = build_server(seed);
        let mut rep = ChaosReplica::new(FaultSpec::chaos(seed), RetryPolicy::default());
        let exprs = vec![
            ("mono", Expr::base("r").project([0])),
            ("diff", Expr::base("r").difference(Expr::base("s"))),
        ];
        for (name, e) in &exprs {
            rep.subscribe(name, e.clone(), &srv).unwrap();
        }
        for _ in 0..60 {
            srv.tick(1);
            for (name, e) in &exprs {
                match rep.read(name, &srv) {
                    Ok((rel, ChaosReadOutcome::Local | ChaosReadOutcome::Synced)) => {
                        let want = truth(&srv, e);
                        assert!(
                            rel.set_eq(&want),
                            "[seed {seed}] fresh-labelled `{name}` wrong at {:?}\n{}",
                            srv.now(),
                            rep.link().schedule_report()
                        );
                    }
                    Ok((rel, ChaosReadOutcome::Stale(back))) => {
                        assert!(back <= srv.now(), "stale as-of must be in the past");
                        // Internally consistent: nothing served is
                        // already expired at its own as-of time.
                        assert!(rel.iter().all(|(_, texp)| texp > back));
                    }
                    Err(_) => {} // honest unavailability under chaos
                }
            }
        }
    }
}

#[test]
fn view_stats_expose_per_view_costs() {
    let mut srv = build_server(13);
    let mut rep = Replica::new(RefreshPolicy::Recompute);
    rep.subscribe("mono", Expr::base("r").project([0]), &srv)
        .unwrap();
    rep.subscribe("diff", Expr::base("r").difference(Expr::base("s")), &srv)
        .unwrap();
    for _ in 0..40 {
        srv.tick(2);
        rep.read("mono", &srv).unwrap();
        rep.read("diff", &srv).unwrap();
    }
    let stats: std::collections::HashMap<String, _> =
        rep.view_stats().map(|(n, s)| (n.to_string(), s)).collect();
    assert_eq!(stats["mono"].recomputations, 0);
    assert!(stats["diff"].recomputations > 0);
    assert!(stats["mono"].local_reads >= 40);
}
