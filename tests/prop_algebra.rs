//! Property tests for the algebra: the paper's Theorems 1 and 2, the
//! ∞-degeneracy property, algebraic laws of the expiration-time
//! operators, and semantic preservation of the rewriter.

mod common;

use common::{arb_catalog, arb_expr, probe_times, schema2};
use exptime::core::algebra::{eval, ops, EvalOptions, Expr};
use exptime::core::catalog::Catalog;
use exptime::core::relation::Relation;
use exptime::core::rewrite;
use exptime::core::time::Time;
use proptest::prelude::*;

fn opts() -> EvalOptions {
    EvalOptions::default()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Theorem 1: for a *monotonic* expression materialised at τ, expiring
    /// the materialisation forward to any τ′ ≥ τ equals a fresh evaluation
    /// at τ′ — including the expiration times themselves.
    #[test]
    fn theorem_1_monotonic_expiry_commutes(
        catalog in arb_catalog(14),
        expr in arb_expr(),
    ) {
        prop_assume!(expr.is_monotonic());
        let m = eval(&expr, &catalog, Time::ZERO, &opts())?;
        for tau in probe_times(&catalog) {
            let fresh = eval(&expr, &catalog, tau, &opts())?;
            prop_assert!(
                m.rel.set_eq_at(&fresh.rel, tau),
                "Theorem 1 violated for {expr} at {tau}:\nmaterialised {:?}\nfresh {:?}",
                m.rel.exp(tau), fresh.rel.exp(tau)
            );
        }
        prop_assert!(m.texp.is_infinite(), "monotonic ⇒ texp(e) = ∞");
    }

    /// Theorem 2: for *any* expression (monotonic or not) materialised at
    /// τ = 0, the materialisation is correct at every τ′ < texp(e).
    /// Tuple-set equality is required; under Exact aggregate mode the
    /// expiration times also match recomputation up to texp(e).
    #[test]
    fn theorem_2_valid_until_texp(
        catalog in arb_catalog(14),
        expr in arb_expr(),
    ) {
        let m = eval(&expr, &catalog, Time::ZERO, &opts())?;
        for tau in probe_times(&catalog) {
            if tau >= m.texp {
                break;
            }
            let fresh = eval(&expr, &catalog, tau, &opts())?;
            prop_assert!(
                m.rel.tuples_eq_at(&fresh.rel, tau),
                "Theorem 2 violated for {expr} at {tau} (texp(e) = {}):\n\
                 materialised {:?}\nfresh {:?}",
                m.texp, m.rel.exp(tau), fresh.rel.exp(tau)
            );
        }
    }

    /// Schrödinger correctness: whenever the validity interval set covers
    /// an instant, the materialisation equals recomputation there — even
    /// *after* texp(e) has passed (the "valid again" tail).
    #[test]
    fn validity_intervals_are_sound(
        catalog in arb_catalog(14),
        expr in arb_expr(),
    ) {
        let m = eval(&expr, &catalog, Time::ZERO, &opts())?;
        for tau in probe_times(&catalog) {
            if m.validity.contains(tau) {
                let fresh = eval(&expr, &catalog, tau, &opts())?;
                prop_assert!(
                    m.rel.tuples_eq_at(&fresh.rel, tau),
                    "validity claims {tau} but {expr} diverges:\n{:?}\nvs {:?}",
                    m.rel.exp(tau), fresh.rel.exp(tau)
                );
            }
        }
        // [τ, texp(e)[ must always be covered.
        prop_assert!(m.texp <= Time::ZERO.succ() || m.validity.contains(Time::ZERO));
    }

    /// ∞-degeneracy: with every expiration time ∞, the operators behave
    /// like the textbook SPCU algebra — results never change over time and
    /// all result tuples carry ∞.
    #[test]
    fn infinity_degenerates_to_textbook(
        keys in proptest::collection::vec((0i64..8, 0i64..4), 0..12),
        keys2 in proptest::collection::vec((0i64..8, 0i64..4), 0..12),
        expr in arb_expr(),
    ) {
        let mut catalog = Catalog::new();
        let mk = |pairs: &[(i64, i64)]| {
            let mut rel = Relation::new(schema2());
            for &(k, v) in pairs {
                rel.insert(exptime::core::tuple![k, v], Time::INFINITY).unwrap();
            }
            rel
        };
        catalog.register("r", mk(&keys));
        catalog.register("s", mk(&keys2));
        let m0 = eval(&expr, &catalog, Time::ZERO, &opts())?;
        prop_assert!(m0.rel.iter().all(|(_, e)| e.is_infinite()));
        prop_assert!(m0.texp.is_infinite());
        let far = eval(&expr, &catalog, Time::new(1_000_000), &opts())?;
        prop_assert!(m0.rel.set_eq(&far.rel), "{expr} changed over time with all-∞ data");
    }

    /// Operator laws with expiration times:
    /// union is commutative and associative (max-texp is too), and
    /// intersection is commutative (min-texp is too).
    #[test]
    fn union_and_intersection_laws(catalog in arb_catalog(14), tau in 0u64..45) {
        let tau = Time::new(tau);
        let r = catalog.get("r").unwrap();
        let s = catalog.get("s").unwrap();
        let ab = ops::union(r, s, tau).unwrap();
        let ba = ops::union(s, r, tau).unwrap();
        prop_assert!(ab.set_eq(&ba), "∪ commutes");
        let iab = ops::intersect(r, s, tau).unwrap();
        let iba = ops::intersect(s, r, tau).unwrap();
        prop_assert!(iab.set_eq(&iba), "∩ commutes");
        // (R ∪ S) ∪ R = R ∪ S (idempotence through max).
        let again = ops::union(&ab, r, tau).unwrap();
        prop_assert!(again.set_eq(&ab), "∪ idempotent with KeepMax");
    }

    /// Difference identities: R − S ⊆ R, (R − S) ∩ S = ∅ at evaluation
    /// time, and R − ∅ = R (all through expτ).
    #[test]
    fn difference_laws(catalog in arb_catalog(14), tau in 0u64..45) {
        let tau = Time::new(tau);
        let r = catalog.get("r").unwrap();
        let s = catalog.get("s").unwrap();
        let d = ops::difference(r, s, tau).unwrap();
        for (t, e) in d.iter() {
            prop_assert_eq!(r.texp(t), Some(e), "R − S keeps texp_R");
            prop_assert!(!s.contains_at(t, tau));
        }
        let empty = Relation::new(schema2());
        let d_empty = ops::difference(r, &empty, tau).unwrap();
        prop_assert!(d_empty.set_eq(&r.exp(tau)), "R − ∅ = expτ(R)");
        let i = ops::intersect(&d, s, tau).unwrap();
        prop_assert_eq!(i.count_unexpired(tau), 0, "(R − S) ∩ S = ∅");
    }

    /// The join rewrite of Equation 5 agrees with select-over-product.
    #[test]
    fn join_is_select_over_product(catalog in arb_catalog(10), tau in 0u64..45) {
        let tau = Time::new(tau);
        let r = catalog.get("r").unwrap();
        let s = catalog.get("s").unwrap();
        let p = exptime::core::predicate::Predicate::attr_eq_attr(0, 2);
        let joined = ops::join(r, s, &p, tau).unwrap();
        let via_product = ops::select(&ops::product(r, s, tau).unwrap(), &p, tau).unwrap();
        prop_assert!(joined.set_eq(&via_product));
    }

    /// The hash-join fast path equals the literal nested loop on random
    /// relations and randomly shaped join predicates.
    #[test]
    fn hash_join_equals_nested_loop(
        catalog in arb_catalog(14),
        tau in 0u64..45,
        shape in 0u8..5,
    ) {
        use exptime::core::predicate::{CmpOp, Predicate};
        let tau = Time::new(tau);
        let r = catalog.get("r").unwrap();
        let s = catalog.get("s").unwrap();
        let p = match shape {
            0 => Predicate::attr_eq_attr(0, 2),
            1 => Predicate::attr_eq_attr(0, 2).and(Predicate::attr_eq_attr(1, 3)),
            2 => Predicate::attr_eq_attr(1, 3)
                .and(Predicate::attr_cmp_const(0, CmpOp::Ge, 2)),
            3 => Predicate::attr_eq_attr(0, 2).or(Predicate::attr_eq_const(1, 1)),
            _ => Predicate::attr_cmp_attr(0, CmpOp::Lt, 2),
        };
        let fast = ops::join(r, s, &p, tau).unwrap();
        let slow = ops::join_nested_loop(r, s, &p, tau).unwrap();
        prop_assert!(fast.set_eq(&slow), "shape {shape} at {tau}");
    }

    /// The rewriter preserves semantics exactly: rewritten plans produce
    /// identical relations (tuples and expiration times) at every probe
    /// instant.
    #[test]
    fn rewriter_preserves_semantics(
        catalog in arb_catalog(12),
        expr in arb_expr(),
    ) {
        let rewritten = rewrite::rewrite(&expr);
        for tau in probe_times(&catalog) {
            let a = eval(&expr, &catalog, tau, &opts())?;
            let b = eval(&rewritten, &catalog, tau, &opts())?;
            prop_assert!(
                a.rel.set_eq(&b.rel),
                "rewrite changed semantics at {tau}:\n  {expr}\n  {rewritten}"
            );
        }
        // And it is a fixpoint.
        prop_assert_eq!(rewrite::rewrite(&rewritten.clone()), rewritten);
    }

    /// Evaluating at τ is the same as evaluating the expτ-snapshots of the
    /// base relations at the same τ — the "replace each argument relation R
    /// with expτ(R)" definition.
    #[test]
    fn eval_commutes_with_base_snapshots(
        catalog in arb_catalog(14),
        expr in arb_expr(),
        tau in 0u64..45,
    ) {
        let tau = Time::new(tau);
        let mut snapped = Catalog::new();
        for (name, rel) in catalog.iter() {
            snapped.register(name.to_string(), rel.exp(tau));
        }
        let a = eval(&expr, &catalog, tau, &opts())?;
        let b = eval(&expr, &snapped, tau, &opts())?;
        prop_assert!(a.rel.set_eq(&b.rel));
        prop_assert_eq!(a.texp, b.texp);
    }
}

/// Deterministic regression: the exact Figure 3 difference anomaly, as a
/// non-proptest test (fast and pinpointed).
#[test]
fn figure_3_difference_grows_then_shrinks() {
    let mut catalog = Catalog::new();
    let mut pol = Relation::new(schema2());
    pol.insert(exptime::core::tuple![1, 25], Time::new(10))
        .unwrap();
    pol.insert(exptime::core::tuple![2, 25], Time::new(15))
        .unwrap();
    pol.insert(exptime::core::tuple![3, 35], Time::new(10))
        .unwrap();
    let mut el = Relation::new(schema2());
    el.insert(exptime::core::tuple![1, 75], Time::new(5))
        .unwrap();
    el.insert(exptime::core::tuple![2, 85], Time::new(3))
        .unwrap();
    el.insert(exptime::core::tuple![4, 90], Time::new(2))
        .unwrap();
    catalog.register("r", pol);
    catalog.register("s", el);
    let expr = Expr::base("r")
        .project([0])
        .difference(Expr::base("s").project([0]));
    let counts: Vec<usize> = [0u64, 3, 5, 10, 15]
        .iter()
        .map(|&t| {
            eval(&expr, &catalog, Time::new(t), &opts())
                .unwrap()
                .rel
                .len()
        })
        .collect();
    assert_eq!(counts, vec![1, 2, 3, 1, 0]);
}
