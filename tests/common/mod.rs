//! Shared generators and helpers for the integration/property tests.
#![allow(dead_code)] // each test harness uses a different subset

use exptime::core::aggregate::AggFunc;
use exptime::core::algebra::Expr;
use exptime::core::catalog::Catalog;
use exptime::core::predicate::{CmpOp, Predicate};
use exptime::core::relation::Relation;
use exptime::core::schema::Schema;
use exptime::core::time::Time;
use exptime::core::tuple::Tuple;
use exptime::core::value::{Value, ValueType};
use proptest::prelude::*;

/// The common two-int schema every generated relation uses, so that any
/// two generated relations are union-compatible.
pub fn schema2() -> Schema {
    Schema::of(&[("k", ValueType::Int), ("v", ValueType::Int)])
}

/// A generated row: small key/value domains force collisions (shared
/// tuples between relations, duplicate projections, multi-row groups),
/// which is where all the interesting expiration semantics live.
pub fn arb_row() -> impl Strategy<Value = (Tuple, Time)> {
    (
        0i64..8,
        -3i64..4,
        prop_oneof![3 => (1u64..40).prop_map(Time::new), 1 => Just(Time::INFINITY)],
    )
        .prop_map(|(k, v, e)| (Tuple::new(vec![Value::Int(k), Value::Int(v)]), e))
}

/// An arbitrary relation of up to `max` rows.
pub fn arb_relation(max: usize) -> impl Strategy<Value = Relation> {
    proptest::collection::vec(arb_row(), 0..max)
        .prop_map(|rows| Relation::from_rows(schema2(), rows).expect("generated rows are valid"))
}

/// A catalog with two generated relations `r` and `s`.
pub fn arb_catalog(max: usize) -> impl Strategy<Value = Catalog> {
    (arb_relation(max), arb_relation(max)).prop_map(|(r, s)| {
        let mut c = Catalog::new();
        c.register("r", r);
        c.register("s", s);
        c
    })
}

/// An arbitrary algebra expression over `r` and `s` (both arity 2).
///
/// Every generated expression is well-typed against [`arb_catalog`]:
/// projections/products are tracked through a recursive strategy that
/// always yields arity-2 results, so unions/differences stay compatible.
pub fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![Just(Expr::base("r")), Just(Expr::base("s"))];
    leaf.prop_recursive(3, 24, 2, |inner| {
        let pred = prop_oneof![
            (0usize..2, 0i64..8).prop_map(|(a, c)| Predicate::attr_eq_const(a, c)),
            (0usize..2, 0i64..8).prop_map(|(a, c)| Predicate::attr_cmp_const(a, CmpOp::Lt, c)),
            Just(Predicate::attr_eq_attr(0, 1)),
            Just(Predicate::True),
        ];
        prop_oneof![
            (inner.clone(), pred).prop_map(|(e, p)| e.select(p)),
            // Arity-preserving projection (swap) keeps compatibility.
            inner.clone().prop_map(|e| e.project([1, 0])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.union(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.intersect(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.difference(b)),
            // Aggregation appends a column; project back to arity 2. Avg
            // is excluded: it appends a FLOAT, which would break the
            // union compatibility of (INT, INT) subexpressions.
            (
                inner.clone(),
                prop_oneof![
                    Just(AggFunc::Count),
                    Just(AggFunc::Sum(1)),
                    Just(AggFunc::Min(1)),
                    Just(AggFunc::Max(1)),
                ]
            )
                .prop_map(|(e, f)| e.aggregate([0], f).project([0, 2])),
        ]
    })
}

/// All instants worth testing for a catalog: every distinct expiration
/// time ± 1, plus 0 and a far-future probe.
pub fn probe_times(catalog: &Catalog) -> Vec<Time> {
    let mut ts = vec![Time::ZERO, Time::new(1_000)];
    for (_, rel) in catalog.iter() {
        for e in rel.event_times(Time::ZERO) {
            ts.push(e.pred());
            ts.push(e);
            ts.push(e.succ());
        }
    }
    ts.sort_unstable();
    ts.dedup();
    ts
}
