//! Property tests for the wire protocol: the codec round-trips every
//! message exactly, rejects every truncation and every single-bit
//! corruption, and session re-delivery across arbitrary seeded fault
//! schedules applies each statement exactly once.

use exptime::core::time::Time;
use exptime::core::value::{Value, ValueType};
use exptime::prelude::*;
use exptime::replica::{FaultSpec, RetryPolicy};
use exptime_net::{decode_msg, encode_msg, ChaosNet, Msg, ReplyBody};
use proptest::prelude::*;

fn arb_vtype() -> impl Strategy<Value = ValueType> {
    prop_oneof![
        Just(ValueType::Int),
        Just(ValueType::Float),
        Just(ValueType::Str),
        Just(ValueType::Bool),
    ]
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        "[ -~]{0,12}".prop_map(Value::str),
        any::<bool>().prop_map(Value::Bool),
    ]
}

fn arb_time() -> impl Strategy<Value = Time> {
    prop_oneof![(0u64..u64::MAX).prop_map(Time::new), Just(Time::INFINITY)]
}

fn arb_body() -> impl Strategy<Value = ReplyBody> {
    let rows = (
        any::<u64>(),
        any::<u64>(),
        any::<bool>(),
        proptest::collection::vec(("[a-z]{1,8}", arb_vtype()), 0..4),
        proptest::collection::vec(
            (proptest::collection::vec(arb_value(), 0..4), arb_time()),
            0..4,
        ),
    )
        .prop_map(|(as_of, texp, degraded, schema, rows)| ReplyBody::Rows {
            as_of,
            texp,
            degraded,
            schema,
            rows,
        });
    prop_oneof![
        any::<u64>().prop_map(ReplyBody::Affected),
        "[ -~]{0,16}".prop_map(ReplyBody::Ok),
        (any::<u16>(), any::<u32>(), "[ -~]{0,24}").prop_map(|(code, retry_after_ms, message)| {
            ReplyBody::Err {
                code,
                retry_after_ms,
                message,
            }
        }),
        rows,
    ]
}

fn arb_msg() -> impl Strategy<Value = Msg> {
    prop_oneof![
        (any::<u64>(), any::<u64>()).prop_map(|(token, last_seq)| Msg::Hello { token, last_seq }),
        (any::<u64>(), any::<u64>()).prop_map(|(token, applied)| Msg::Welcome { token, applied }),
        (any::<u64>(), any::<u32>(), "[ -~]{0,48}").prop_map(|(seq, deadline_ms, sql)| {
            Msg::Stmt {
                seq,
                deadline_ms,
                sql,
            }
        }),
        (any::<u64>(), arb_body()).prop_map(|(seq, body)| Msg::Reply { seq, body }),
        (any::<u64>(), any::<u32>()).prop_map(|(seq, retry_after_ms)| Msg::Shed {
            seq,
            retry_after_ms
        }),
        Just(Msg::Bye),
    ]
}

proptest! {
    /// Whatever the message, the frame decodes back to it exactly, and
    /// consumes exactly the bytes that were produced.
    #[test]
    fn codec_round_trips_every_message(msg in arb_msg()) {
        let bytes = encode_msg(&msg);
        let (decoded, used) = decode_msg(&bytes)
            .map_err(|e| TestCaseError::fail(format!("{msg:?}: {e:?}")))?;
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(decoded, msg);
    }

    /// Every strict prefix of every frame is rejected (or reports
    /// "incomplete"), never misparsed as some other message.
    #[test]
    fn every_prefix_of_every_frame_is_rejected(msg in arb_msg()) {
        let bytes = encode_msg(&msg);
        for n in 0..bytes.len() {
            prop_assert!(
                decode_msg(&bytes[..n]).is_err(),
                "prefix of {} bytes of {:?} decoded",
                n,
                msg
            );
        }
    }

    /// Any single flipped bit — header or payload — must never yield a
    /// successfully decoded frame (the CRC catches payload damage, the
    /// header sanity checks catch the rest).
    #[test]
    fn every_single_bit_flip_is_rejected(msg in arb_msg(), bit in any::<u32>()) {
        let mut bytes = encode_msg(&msg);
        let bit = bit as usize % (bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(
            decode_msg(&bytes).is_err(),
            "bit {} flipped in {:?} still decoded",
            bit,
            msg
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Exactly-once re-delivery: under an arbitrary seeded fault
    /// schedule (loss, duplication, reordering, delay, partitions), a
    /// session that heals and quiesces has applied each DML exactly
    /// once — reconnect replays are absorbed as cached-reply fetches.
    #[test]
    fn redelivery_across_faults_is_exactly_once(
        seed in 0u64..10_000,
        loss_tenths in 0u32..=4,
        dup_tenths in 0u32..=3,
        n in 3usize..12,
    ) {
        let spec = FaultSpec {
            seed,
            loss: f64::from(loss_tenths) / 10.0,
            duplicate: f64::from(dup_tenths) / 10.0,
            reorder: 0.15,
            delay: 0.1,
            delay_max: 4,
            partition: 0.02,
            partition_min: 2,
            partition_max: 10,
        };
        let mut db = Database::default();
        let mut net = ChaosNet::new(spec, RetryPolicy::default());
        net.submit("CREATE TABLE p (k INT, v INT)");
        for i in 0..n {
            net.submit(&format!("INSERT INTO p VALUES ({i}, 1) EXPIRES NEVER"));
        }
        let _ = net.run(&mut db, 500);
        net.link().heal();
        let report = net.run(&mut db, 20_000);
        let schedule = net.link().schedule_report();
        prop_assert!(report.quiesced, "seed {}: {:?}\n{}", seed, report, schedule);
        prop_assert!(
            net.exactly_once(),
            "seed {}: effects not exactly-once: {:?}\ncounts: {:?}\n{}",
            seed,
            report,
            net.exec_counts(),
            schedule
        );
        let rows = db.execute("SELECT * FROM p").unwrap().rows().unwrap().len();
        prop_assert_eq!(rows, n, "seed {}: {}", seed, schedule);
    }
}
