//! Property tests for the interval-set algebra backing Schrödinger
//! semantics (paper Section 3.4): every set operation is checked against
//! brute-force pointwise membership, plus the usual lattice laws.

use exptime::core::interval::{Interval, IntervalSet};
use exptime::core::time::Time;
use proptest::prelude::*;

const HORIZON: u64 = 64;

fn arb_interval() -> impl Strategy<Value = Interval> {
    (0u64..HORIZON, 1u64..16, any::<bool>()).prop_map(|(start, len, unbounded)| {
        if unbounded && start > HORIZON - 8 {
            Interval::from(Time::new(start))
        } else {
            Interval::new(Time::new(start), Time::new(start + len))
        }
    })
}

fn arb_set() -> impl Strategy<Value = IntervalSet> {
    proptest::collection::vec(arb_interval(), 0..8).prop_map(IntervalSet::from_intervals)
}

/// Pointwise membership over the probe range, the brute-force model.
fn bitmap(s: &IntervalSet) -> Vec<bool> {
    (0..HORIZON + 32)
        .map(|t| s.contains(Time::new(t)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn normalisation_is_canonical(ivs in proptest::collection::vec(arb_interval(), 0..8)) {
        let s = IntervalSet::from_intervals(ivs.clone());
        // Sorted, disjoint, non-adjacent.
        for w in s.intervals().windows(2) {
            prop_assert!(w[0].end < w[1].start, "gap required between {:?} and {:?}", w[0], w[1]);
        }
        // Membership equals the union of the raw intervals.
        for t in 0..HORIZON + 32 {
            let tt = Time::new(t);
            let raw = ivs.iter().any(|iv| iv.contains(tt));
            prop_assert_eq!(s.contains(tt), raw, "at {}", t);
        }
        // Normalisation is idempotent.
        let again = IntervalSet::from_intervals(s.intervals().to_vec());
        prop_assert_eq!(&again, &s);
    }

    #[test]
    fn union_is_pointwise_or(a in arb_set(), b in arb_set()) {
        let u = a.union(&b);
        let (ba, bb, bu) = (bitmap(&a), bitmap(&b), bitmap(&u));
        for t in 0..bu.len() {
            prop_assert_eq!(bu[t], ba[t] || bb[t], "at {}", t);
        }
    }

    #[test]
    fn intersection_is_pointwise_and(a in arb_set(), b in arb_set()) {
        let i = a.intersect(&b);
        let (ba, bb, bi) = (bitmap(&a), bitmap(&b), bitmap(&i));
        for t in 0..bi.len() {
            prop_assert_eq!(bi[t], ba[t] && bb[t], "at {}", t);
        }
    }

    #[test]
    fn subtraction_is_pointwise_andnot(a in arb_set(), b in arb_set()) {
        let d = a.subtract(&b);
        let (ba, bb, bd) = (bitmap(&a), bitmap(&b), bitmap(&d));
        for t in 0..bd.len() {
            prop_assert_eq!(bd[t], ba[t] && !bb[t], "at {}", t);
        }
    }

    #[test]
    fn lattice_laws(a in arb_set(), b in arb_set(), c in arb_set()) {
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.intersect(&b), b.intersect(&a));
        prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
        prop_assert_eq!(a.intersect(&b).intersect(&c), a.intersect(&b.intersect(&c)));
        // Absorption.
        prop_assert_eq!(a.union(&a.intersect(&b)), a.clone());
        prop_assert_eq!(a.intersect(&a.union(&b)), a.clone());
        // De Morgan via subtraction from a universe.
        let universe = IntervalSet::from_time(Time::ZERO);
        let not_a = universe.subtract(&a);
        let not_b = universe.subtract(&b);
        prop_assert_eq!(
            universe.subtract(&a.union(&b)),
            not_a.intersect(&not_b)
        );
        prop_assert_eq!(
            universe.subtract(&a.intersect(&b)),
            not_a.union(&not_b)
        );
    }

    #[test]
    fn next_and_prev_covered_agree_with_bitmap(a in arb_set(), q in 0u64..(HORIZON + 16)) {
        let q = Time::new(q);
        let next = a.next_covered(q);
        let expected_next = (q.finite().unwrap()..HORIZON + 64)
            .map(Time::new)
            .find(|&t| a.contains(t));
        // next_covered may return a start beyond the probe range only for
        // unbounded tails; both agree within the probed horizon.
        match (next, expected_next) {
            (Some(n), Some(e)) => prop_assert_eq!(n, e),
            (None, None) => {}
            (Some(n), None) => prop_assert!(n >= Time::new(HORIZON + 64)),
            (None, Some(e)) => prop_assert!(false, "missed covered instant {}", e),
        }
        let prev = a.prev_covered(q);
        let expected_prev = (0..=q.finite().unwrap())
            .rev()
            .map(Time::new)
            .find(|&t| a.contains(t));
        prop_assert_eq!(prev, expected_prev);
    }

    #[test]
    fn measure_counts_instants(a in arb_set()) {
        match a.measure() {
            Some(m) => {
                let count = bitmap(&a).iter().filter(|&&x| x).count() as u64;
                prop_assert_eq!(m, count);
            }
            None => {
                // Unbounded: the last interval must reach ∞.
                prop_assert!(a.intervals().last().unwrap().end.is_infinite());
            }
        }
    }
}
