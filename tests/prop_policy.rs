//! Property tests for the TTL policy layer (PR 9's tentpole):
//!
//! 1. **sliding-touch monotonicity** — a touch never moves an expiration
//!    backwards, `slid` is set exactly when it moved forwards, and a
//!    whole session of touches at non-decreasing clocks produces a
//!    non-decreasing expiration sequence;
//! 2. **clamp idempotence** — feeding a policy's own verdict back in as
//!    the requested expiration is a fixed point: the composition
//!    default → clamp → maintenance cannot displace its own output; and
//! 3. **forecast conservation under sliding workloads** — with reads
//!    re-arming rows mid-flight, the expiration-horizon forecast's
//!    bucket sum still equals the live row count at every advance.
//!
//! The crash matrix honours `EXPTIME_POLICY_SEEDS` (comma-separated
//! integers), mirroring `EXPTIME_CHAOS_SEEDS`/`EXPTIME_CRASH_SEEDS`: a
//! seeded workload of policy DDL, inserts, ticks, and touching reads
//! runs on a WAL-backed in-memory store, crashes without a checkpoint,
//! and must recover the policy catalog and every surviving expiration
//! exactly — with no resurrection of rows that expired before the crash.

use exptime::policy::{Event, Sliding, TouchKind, TtlPolicy};
use exptime::prelude::*;
use exptime::wal::MemStore;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn arb_policy() -> impl Strategy<Value = TtlPolicy> {
    (
        proptest::option::of(0u64..400),
        prop_oneof![
            Just(Sliding::Absolute),
            Just(Sliding::OnModify),
            Just(Sliding::OnAccess),
        ],
        proptest::option::of((0u64..200, 0u64..400).prop_map(|(min, extra)| (min, min + extra))),
        proptest::option::of((0u64..500, 0u64..300).prop_map(|(s, len)| (s, s + len))),
    )
        .prop_map(|(ttl, sliding, clamp, maintenance)| {
            let mut p = TtlPolicy {
                ttl,
                sliding,
                ..TtlPolicy::default()
            };
            if let Some((min, max)) = clamp {
                p = p.clamped(min, max);
            }
            if let Some((start, end)) = maintenance {
                p = p.with_maintenance(start, end);
            }
            p
        })
}

fn arb_time() -> impl Strategy<Value = Time> {
    prop_oneof![
        8 => (0u64..1000).prop_map(Time::new),
        1 => Just(Time::INFINITY),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// A touch never decreases the expiration, and `slid` is set exactly
    /// when it strictly increased it.
    #[test]
    fn touch_is_monotone(
        policy in arb_policy(),
        current in arb_time(),
        now in 0u64..1000,
        access in any::<bool>(),
    ) {
        let kind = if access { TouchKind::Access } else { TouchKind::Modify };
        let fx = policy.effective_texp(Event::Touch { kind, current }, Time::new(now));
        prop_assert!(fx.texp >= current, "touch moved {current} back to {}", fx.texp);
        prop_assert_eq!(fx.slid, fx.texp > current, "slid must mean strictly later");
        if !policy.sliding.slides_on(kind) {
            prop_assert_eq!(fx.texp, current, "non-sliding policies must not touch");
        }
    }

    /// A session of touches at non-decreasing clocks yields a
    /// non-decreasing expiration sequence (the engine applies exactly
    /// this chain on repeated reads of a sliding row).
    #[test]
    fn touch_sessions_never_regress(
        policy in arb_policy(),
        start in arb_time(),
        steps in proptest::collection::vec((0u64..30, any::<bool>()), 1..24),
    ) {
        let mut now = 0u64;
        let mut current = start;
        for (step, access) in steps {
            now += step;
            let kind = if access { TouchKind::Access } else { TouchKind::Modify };
            let fx = policy.effective_texp(Event::Touch { kind, current }, Time::new(now));
            prop_assert!(
                fx.texp >= current,
                "expiration regressed {current} -> {} at t={now}", fx.texp
            );
            current = fx.texp;
        }
    }

    /// Idempotence: the policy's own verdict, requested back verbatim at
    /// the same instant, is a fixed point — clamping and maintenance
    /// displacement never oscillate.
    #[test]
    fn write_verdict_is_a_fixed_point(
        policy in arb_policy(),
        requested in proptest::option::of(arb_time()),
        now in arb_time(),
    ) {
        let first = policy.effective_texp(Event::Write { requested }, now);
        let again = policy.effective_texp(
            Event::Write { requested: Some(first.texp) },
            now,
        );
        prop_assert_eq!(
            again.texp, first.texp,
            "not idempotent under {}: {:?} -> {:?}", policy, first, again
        );
        // And a touch of a row already at the verdict is a no-op.
        for kind in [TouchKind::Access, TouchKind::Modify] {
            let touched = policy.effective_texp(
                Event::Touch { kind, current: first.texp },
                now,
            );
            prop_assert!(touched.texp >= first.texp);
        }
    }

    /// Conservation under sliding: reads re-arm rows between advances,
    /// yet the forecast's bucket sum (plus eternals) equals the live row
    /// count per table and in total at every step.
    #[test]
    fn forecast_bucket_sum_survives_sliding_touches(
        ttl in 2u64..60,
        rows in proptest::collection::vec(0i64..24, 1..32),
        ops in proptest::collection::vec((1u64..12, 0i64..24), 1..20),
        lazy in any::<bool>(),
    ) {
        let removal = if lazy {
            Removal::Lazy { vacuum_every: 8 }
        } else {
            Removal::Eager
        };
        let mut db = Database::new(DbConfig { removal, ..DbConfig::default() });
        db.execute(&format!("CREATE TABLE s (sid INT) TTL {ttl} SLIDING ON ACCESS"))
            .unwrap();
        db.execute("CREATE TABLE p (k INT)").unwrap();
        for (i, &sid) in rows.iter().enumerate() {
            db.insert_default("s", exptime::core::tuple![sid]).unwrap();
            // Half the plain table is eternal, half expires.
            let texp = if i % 2 == 0 { Time::INFINITY } else { db.now() + ttl / 2 + 1 };
            db.insert("p", exptime::core::tuple![i as i64], texp).unwrap();
        }
        for (step, probe) in ops {
            // The read slides whatever it sees, then the clock advances.
            db.execute(&format!("SELECT * FROM s WHERE sid = {probe}")).unwrap();
            db.tick(step);
            let now = db.now();
            let fc = db.forecast();
            let mut live_total = 0u64;
            for name in ["s", "p"] {
                let live = db.table(name).unwrap().live_count(now) as u64;
                live_total += live;
                let (_, table_fc) = fc
                    .tables
                    .iter()
                    .find(|(n, _)| n == name)
                    .expect("forecast covers every table");
                prop_assert_eq!(
                    table_fc.total(), live,
                    "table {} at {}: forecast total must equal live rows", name, now
                );
            }
            prop_assert_eq!(fc.horizon.total(), live_total);
            prop_assert_eq!(
                fc.horizon.expiring() + fc.horizon.eternal(),
                fc.horizon.total()
            );
        }
    }
}

/// One seeded crash-recovery workload: random policy DDL, inserts,
/// touching reads, and ticks on a WAL-backed store; crash with no
/// checkpoint; recovery must restore the policy catalog and every
/// surviving row's exact expiration, resurrecting nothing.
fn check_policy_crash(seed: u64) -> std::result::Result<(), String> {
    let config = DbConfig {
        durability: Durability::Wal {
            group_commit: 1,
            checkpoint_every: 0, // recovery is pure log replay
            expiration_aware: true,
        },
        ..DbConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(seed ^ 0x90_11C7);
    let ttl = rng.gen_range(5..60u64);
    let clamp = if rng.gen_bool(0.5) {
        let min = rng.gen_range(1..10u64);
        Some((min, min + rng.gen_range(0..80u64)))
    } else {
        None
    };
    let sliding = if rng.gen_bool(0.5) {
        "ACCESS"
    } else {
        "MODIFY"
    };
    let mut ddl = format!("CREATE TABLE s (sid INT) TTL {ttl} SLIDING ON {sliding}");
    if let Some((min, max)) = clamp {
        ddl.push_str(&format!(" CLAMP {min}..{max}"));
    }

    let disk = MemStore::new();
    let expected_policy;
    let mut expected_rows: Vec<(i64, Option<Time>)> = Vec::new();
    let crash_clock;
    {
        let mut db = Database::open_with_store(Box::new(disk.clone()), config)
            .map_err(|e| format!("[seed {seed}] open: {e}"))?;
        db.execute(&ddl)
            .map_err(|e| format!("[seed {seed}] {ddl}: {e}"))?;
        for _ in 0..rng.gen_range(10..40) {
            match rng.gen_range(0..4u8) {
                0 | 1 => {
                    let sid = rng.gen_range(0..16i64);
                    db.execute(&format!("INSERT INTO s VALUES ({sid})"))
                        .map_err(|e| format!("[seed {seed}] insert: {e}"))?;
                }
                2 => {
                    // Reads touch (ON ACCESS); EXPIRES DEFAULT touches (ON MODIFY).
                    let sid = rng.gen_range(0..16i64);
                    let stmt = if rng.gen_bool(0.5) {
                        format!("SELECT * FROM s WHERE sid = {sid}")
                    } else {
                        format!("UPDATE s SET EXPIRES DEFAULT WHERE sid = {sid}")
                    };
                    db.execute(&stmt)
                        .map_err(|e| format!("[seed {seed}] touch: {e}"))?;
                }
                _ => {
                    db.tick(rng.gen_range(1..8u64));
                }
            }
        }
        expected_policy = db.ttl_policy("s");
        crash_clock = db.now();
        for sid in 0..16i64 {
            expected_rows.push((
                sid,
                db.table("s").unwrap().texp(&exptime::core::tuple![sid]),
            ));
        }
    } // crash: drop without checkpoint

    let db = Database::open_with_store(Box::new(disk), config)
        .map_err(|e| format!("[seed {seed}] reopen: {e}"))?;
    if db.ttl_policy("s") != expected_policy {
        return Err(format!(
            "[seed {seed}] policy diverged: recovered {:?}, expected {expected_policy:?}",
            db.ttl_policy("s")
        ));
    }
    if db.now() != crash_clock {
        return Err(format!(
            "[seed {seed}] clock diverged: recovered {}, expected {crash_clock}",
            db.now()
        ));
    }
    for (sid, want) in expected_rows {
        let got = db.table("s").unwrap().texp(&exptime::core::tuple![sid]);
        if got != want {
            return Err(format!(
                "[seed {seed}] sid {sid}: recovered texp {got:?}, expected {want:?} \
                 (touches must be durable; expired rows must stay dead)"
            ));
        }
    }
    Ok(())
}

/// Deterministic seed matrix for CI: `EXPTIME_POLICY_SEEDS=1,2,3` pins
/// the exact workloads; the default covers eight distinct ones.
#[test]
fn policy_crash_seed_matrix() {
    let seeds = std::env::var("EXPTIME_POLICY_SEEDS").unwrap_or_else(|_| "1,2,3,4,5,6,7,8".into());
    let mut ran = 0usize;
    for part in seeds.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let seed: u64 = part
            .parse()
            .unwrap_or_else(|e| panic!("EXPTIME_POLICY_SEEDS entry `{part}`: {e}"));
        if let Err(msg) = check_policy_crash(seed) {
            panic!("policy crash matrix: {msg}");
        }
        ran += 1;
    }
    assert!(ran > 0, "EXPTIME_POLICY_SEEDS named no seeds");
}
