//! Chaos tests for the fault-hardened replica sync layer: whatever a
//! seeded fault schedule does to the link — loss, duplication,
//! reordering, delay, partitions — once the link heals and the session
//! machinery quiesces, the replica's state is exactly what a fresh
//! server-side computation produces, at every subsequent event time.
//!
//! Every failure message carries the seed and the full fault schedule
//! (`FaultyLink::schedule_report`), so a failing run is replayable by
//! constructing `FaultSpec::chaos(seed)` (or the printed variant) again.
//!
//! The seed matrix test honours `EXPTIME_CHAOS_SEEDS` (comma-separated
//! integers) so CI can pin distinct deterministic schedules per job.

use exptime::core::algebra::{eval, EvalOptions, Expr};
use exptime::core::relation::Relation;
use exptime::core::time::Time;
use exptime::obs::SloConfig;
use exptime::prelude::*;
use exptime::replica::{ChaosDeletePush, ChaosReadOutcome, ChaosReplica, FaultSpec, RetryPolicy};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The facade prelude aliases `Result` to the core error type; the
/// checks below carry their diagnosis as a plain string instead.
type Check = std::result::Result<(), String>;

fn build_server(seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::default();
    db.execute("CREATE TABLE r (k INT, v INT)").unwrap();
    db.execute("CREATE TABLE s (k INT, v INT)").unwrap();
    for i in 0..60i64 {
        db.insert_ttl("r", exptime::core::tuple![i, i % 5], rng.gen_range(1..90))
            .unwrap();
        if rng.gen_bool(0.5) {
            db.insert_ttl("s", exptime::core::tuple![i, i % 5], rng.gen_range(1..60))
                .unwrap();
        }
    }
    db
}

fn truth(server: &Database, expr: &Expr) -> Relation {
    eval(
        expr,
        &server.snapshot(),
        server.now(),
        &EvalOptions::default(),
    )
    .unwrap()
    .rel
}

fn views() -> Vec<(&'static str, Expr)> {
    vec![
        ("mono", Expr::base("r").project([0])),
        ("diff", Expr::base("r").difference(Expr::base("s"))),
    ]
}

/// The tentpole invariant, exercised end to end: run `horizon` ticks of
/// reads under the faulty link (degraded answers allowed), heal,
/// reconcile, drain to quiescence, then demand exact agreement with a
/// fresh server computation at every following event time.
///
/// Returns `Err(diagnosis)` — including the replayable schedule — rather
/// than panicking, so both the proptest and the seed matrix can wrap it.
fn check_chaos_replica(spec: FaultSpec, data_seed: u64, horizon: u64) -> Check {
    let seed = spec.seed;
    let mut srv = build_server(data_seed);
    let mut rep = ChaosReplica::new(spec, RetryPolicy::default());
    for (name, e) in &views() {
        rep.subscribe(name, e.clone(), &srv)
            .map_err(|e| format!("[seed {seed}] subscribe failed: {e}"))?;
    }

    // Chaos phase: reads may be Stale or even time out; that is the
    // graceful-degradation contract, not a failure. What must NOT happen
    // is a wrong answer labelled fresh.
    for _ in 0..horizon {
        srv.tick(1);
        for (name, e) in &views() {
            match rep.read(name, &srv) {
                Ok((rel, ChaosReadOutcome::Local | ChaosReadOutcome::Synced)) => {
                    let want = truth(&srv, e);
                    if !rel.set_eq(&want) {
                        return Err(format!(
                            "[seed {seed}] `{name}` served a WRONG fresh answer at \
                             {:?}:\n{rel:?}\nvs {want:?}\n{}",
                            srv.now(),
                            rep.link().schedule_report()
                        ));
                    }
                }
                Ok((_, ChaosReadOutcome::Stale(back))) => {
                    if back > srv.now() {
                        return Err(format!(
                            "[seed {seed}] `{name}` claims staleness from the future \
                             ({back:?} > {:?})\n{}",
                            srv.now(),
                            rep.link().schedule_report()
                        ));
                    }
                }
                Err(_) => {} // honest unavailability mid-chaos is allowed
            }
        }
    }

    // Recovery phase: heal, anti-entropy, drain.
    rep.link().heal();
    rep.reconcile(&srv)
        .map_err(|e| format!("[seed {seed}] reconcile failed: {e}"))?;
    for _ in 0..64 {
        if rep.quiesced() {
            break;
        }
        srv.tick(1);
        rep.pump(&srv)
            .map_err(|e| format!("[seed {seed}] pump failed: {e}"))?;
    }
    if !rep.quiesced() {
        return Err(format!(
            "[seed {seed}] never quiesced after heal\n{}",
            rep.link().schedule_report()
        ));
    }

    // Post-recovery: every event time must now be answered exactly, and
    // exclusively with fresh (Local/Synced) outcomes.
    for _ in 0..12 {
        srv.tick(1);
        for (name, e) in &views() {
            let (rel, outcome) = rep.read(name, &srv).map_err(|e| {
                format!(
                    "[seed {seed}] `{name}` failed after recovery: {e}\n{}",
                    rep.link().schedule_report()
                )
            })?;
            if matches!(outcome, ChaosReadOutcome::Stale(_)) {
                return Err(format!(
                    "[seed {seed}] `{name}` still stale after heal+quiesce at {:?}\n{}",
                    srv.now(),
                    rep.link().schedule_report()
                ));
            }
            let want = truth(&srv, e);
            if !rel.set_eq(&want) {
                return Err(format!(
                    "[seed {seed}] `{name}` ≠ fresh computation at {:?} after \
                     recovery ({outcome:?}):\n{rel:?}\nvs {want:?}\n{}",
                    srv.now(),
                    rep.link().schedule_report()
                ));
            }
        }
    }
    Ok(())
}

/// Same shape for the explicit-delete baseline: after the outbox drains
/// over the healed link, the pushed cache equals the server's current
/// result (ignoring texps, which delete-push does not replicate).
fn check_chaos_delete_push(spec: FaultSpec, data_seed: u64, horizon: u64) -> Check {
    let seed = spec.seed;
    let mut srv = build_server(data_seed);
    let expr = Expr::base("r").difference(Expr::base("s"));
    let mut push = ChaosDeletePush::subscribe(expr.clone(), &srv, spec, RetryPolicy::default())
        .map_err(|e| format!("[seed {seed}] subscribe failed: {e}"))?;

    for _ in 0..horizon {
        srv.tick(1);
        push.server_sync(&srv)
            .map_err(|e| format!("[seed {seed}] server_sync failed: {e}"))?;
    }
    push.link().heal();
    for _ in 0..200 {
        srv.tick(1);
        push.server_sync(&srv)
            .map_err(|e| format!("[seed {seed}] server_sync failed: {e}"))?;
        if push.quiesced() {
            break;
        }
    }
    if !push.quiesced() {
        return Err(format!(
            "[seed {seed}] delete-push outbox never drained\n{}",
            push.link().schedule_report()
        ));
    }
    let want = truth(&srv, &expr);
    if !push.read().tuples_eq_at(&want, srv.now()) {
        let got = push.read().clone();
        return Err(format!(
            "[seed {seed}] delete-push cache ≠ fresh computation at {:?}:\n{got:?}\nvs {want:?}\n{}",
            srv.now(),
            push.link().schedule_report()
        ));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary seeded chaos schedules (loss + duplication + reordering
    /// + delay + partitions all at once): the replica must come back to
    /// exact agreement after reconnect and quiesce.
    #[test]
    fn chaos_replica_recovers_exactly(seed in 1u64..50_000, data_seed in 1u64..1_000) {
        let r = check_chaos_replica(FaultSpec::chaos(seed), data_seed, 40);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }

    /// Pure-loss schedules at brutal rates: retry/backoff alone (no
    /// reordering to hide behind) must still converge.
    #[test]
    fn lossy_replica_recovers_exactly(seed in 1u64..50_000, loss in 1u32..=8) {
        let spec = FaultSpec::lossy(seed, f64::from(loss) / 10.0);
        let r = check_chaos_replica(spec, seed ^ 0x5EED, 40);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }

    /// The hardened delete-push baseline survives the same chaos: its
    /// acked, retransmitted notice stream must drain to the exact result.
    #[test]
    fn chaos_delete_push_recovers_exactly(seed in 1u64..50_000, data_seed in 1u64..1_000) {
        let r = check_chaos_delete_push(FaultSpec::chaos(seed), data_seed, 40);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }
}

/// Deterministic seed matrix for CI: `EXPTIME_CHAOS_SEEDS=1,2,3` pins
/// the exact schedules; the default covers eight distinct ones. Runs the
/// full invariant (both strategies) per seed.
#[test]
fn chaos_seed_matrix() {
    let seeds = std::env::var("EXPTIME_CHAOS_SEEDS").unwrap_or_else(|_| "1,2,3,4,5,6,7,8".into());
    let mut ran = 0usize;
    for part in seeds.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let seed: u64 = part
            .parse()
            .unwrap_or_else(|e| panic!("EXPTIME_CHAOS_SEEDS entry `{part}`: {e}"));
        if let Err(msg) = check_chaos_replica(FaultSpec::chaos(seed), seed, 48) {
            panic!("chaos matrix (exp-aware): {msg}");
        }
        if let Err(msg) = check_chaos_delete_push(FaultSpec::chaos(seed), seed, 48) {
            panic!("chaos matrix (delete-push): {msg}");
        }
        ran += 1;
    }
    assert!(ran > 0, "EXPTIME_CHAOS_SEEDS named no seeds");
}

/// The tentpole trace-propagation invariant, end to end: under a lossy
/// link, a sync session that needed at least one retransmission must
/// still render as ONE connected causal trace on the span ring — the
/// root session span, every `client.send.*` attempt (the retried ones
/// flagged `retransmission=true`), the server-side handling span, and
/// the final `client.apply.*` — all reachable from the same root via
/// parent links, even though the spans belong to both endpoints.
#[test]
fn retransmitted_sync_renders_as_one_connected_trace() {
    use exptime::obs::SpanRecord;
    use std::collections::BTreeMap;

    let attr = |s: &SpanRecord, key: &str| -> Option<String> {
        s.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
    };

    for seed in 1..64u64 {
        let mut srv = build_server(seed);
        let mut rep = ChaosReplica::new(FaultSpec::lossy(seed, 0.5), RetryPolicy::default());
        rep.tracer().enable();
        if rep
            .subscribe("diff", Expr::base("r").difference(Expr::base("s")), &srv)
            .is_err()
        {
            continue;
        }
        for _ in 0..30 {
            srv.tick(1);
            let _ = rep.read("diff", &srv);
        }
        rep.link().heal();
        for _ in 0..40 {
            if rep.quiesced() {
                break;
            }
            srv.tick(1);
            rep.pump(&srv).unwrap();
        }
        let stats = rep.session_stats();
        if stats.retries == 0 || stats.sessions_completed == 0 {
            continue; // this schedule produced no interesting session
        }

        // Group the ring's spans into traces by their `trace` attribute.
        let spans = rep.tracer().recent(2048);
        let mut traces: BTreeMap<String, Vec<&SpanRecord>> = BTreeMap::new();
        for s in &spans {
            if let Some(t) = attr(s, "trace") {
                traces.entry(t).or_default().push(s);
            }
        }

        for group in traces.values() {
            let roots: Vec<&&SpanRecord> = group.iter().filter(|s| s.parent.is_none()).collect();
            // Exactly one root per trace — never a forest.
            assert_eq!(
                roots.len(),
                1,
                "seed {seed}: trace with {} roots",
                roots.len()
            );
            let root = roots[0];
            assert!(
                root.name.starts_with("session."),
                "seed {seed}: {}",
                root.name
            );

            // Connectivity: every span in the trace walks up to the root.
            let ids: std::collections::BTreeSet<u64> = group.iter().map(|s| s.id).collect();
            let by_id: BTreeMap<u64, &&SpanRecord> = group.iter().map(|s| (s.id, s)).collect();
            for s in group {
                let mut cur = *s;
                let mut hops = 0;
                while let Some(p) = cur.parent {
                    assert!(
                        ids.contains(&p),
                        "seed {seed}: span `{}` parents outside its trace",
                        cur.name
                    );
                    cur = by_id[&p];
                    hops += 1;
                    assert!(hops < 1000, "seed {seed}: parent cycle");
                }
                assert_eq!(cur.id, root.id, "seed {seed}: disconnected span");
            }
        }

        // At least one trace shows the full story: a retransmitted send
        // AND the server's handling AND the client's apply.
        let complete = traces.values().any(|group| {
            group.iter().any(|s| {
                s.name.starts_with("client.send.")
                    && attr(s, "retransmission").as_deref() == Some("true")
            }) && group.iter().any(|s| s.name.starts_with("server.handle."))
                && group.iter().any(|s| s.name.starts_with("client.apply."))
        });
        if complete {
            return; // invariant demonstrated on this seed's schedule
        }
    }
    panic!("no seed in 1..64 produced a completed, retransmitted, traced session");
}

/// Graceful degradation across the validity horizon: a fully
/// disconnected replica keeps answering from its still-valid cache, and
/// once the cache lapses past the resync SLO the degradation shows up in
/// `health()` — without a single panic or wrong "fresh" answer.
#[test]
fn disconnected_replica_serves_cache_then_reports_staleness() {
    let mut srv = Database::default();
    srv.execute("CREATE TABLE r (k INT, v INT)").unwrap();
    srv.execute("CREATE TABLE s (k INT, v INT)").unwrap();
    for i in 0..8i64 {
        srv.insert_ttl("r", exptime::core::tuple![i, i], 30)
            .unwrap();
        if i < 4 {
            srv.insert_ttl("s", exptime::core::tuple![i, i], 12)
                .unwrap();
        }
    }
    let slo = SloConfig {
        max_resync_lag: 4,
        ..SloConfig::default()
    };
    let mut rep = ChaosReplica::with_slo(FaultSpec::none(2), RetryPolicy::default(), slo);
    // r − s is invalid past t=12: the s-side rows expire then, and rows
    // 0..4 reappear in the result — which the cut-off replica cannot see.
    rep.subscribe("v", Expr::base("r").difference(Expr::base("s")), &srv)
        .unwrap();
    let (_, outcome) = rep.read("v", &srv).unwrap();
    assert!(matches!(
        outcome,
        ChaosReadOutcome::Local | ChaosReadOutcome::Synced
    ));

    // Cut the link for good. The cached view stays provably valid until
    // t=12, so reads keep being answered locally, without traffic.
    rep.link().link().disconnect();
    let before = rep.link_stats().total_messages();
    for _ in 0..10 {
        srv.tick(1);
        let (rel, outcome) = rep.read("v", &srv).unwrap();
        assert_eq!(outcome, ChaosReadOutcome::Local, "valid until t=12");
        assert_eq!(rel.len(), 4, "r − s = rows 4..8 while s is alive");
    }
    assert_eq!(
        rep.link_stats().total_messages(),
        before,
        "no messages crossed a dead link"
    );

    // Past the validity horizon the cache covers nothing newer; reads
    // degrade to the newest covered instant and, once the lag exceeds
    // the SLO, the monitor records the breach.
    srv.tick(5); // now = 15 > validity horizon 12
    for _ in 0..8 {
        srv.tick(1);
        match rep.read("v", &srv) {
            Ok((_, ChaosReadOutcome::Stale(back))) => assert!(back < Time::new(12)),
            Ok((_, other)) => panic!("invalid cache cannot be {other:?}"),
            Err(e) => panic!("degraded reads must not error while covered: {e}"),
        }
    }
    let health = rep.health();
    assert!(
        health.resync_lag_breaches >= 1,
        "SLO breach not reported: {health}"
    );
}
