//! Property tests for the expiration-horizon forecaster (the PR's
//! observability tentpole): whatever a seeded workload inserts, deletes,
//! and expires,
//!
//! 1. **conservation** — at every clock advance the merged forecast's
//!    bucket sum (plus eternals) equals exactly the number of live rows,
//!    per table and in total, and the `forecast.*` gauges agree; and
//! 2. **storm iff** — a `storm_warning` event is emitted at an advance
//!    *iff* some bucket's predicted expirations-per-tick strictly
//!    exceeds the configured threshold, and the emitted buckets are
//!    exactly the storming ones.

use exptime::engine::{DbConfig, ForecastConfig};
use exptime::obs::EventKind;
use exptime::prelude::*;
use proptest::prelude::*;

/// One row of the generated workload: which table, and a lifetime (0 =
/// eternal — `EXPIRES NEVER`).
fn arb_rows() -> impl Strategy<Value = Vec<(u8, u64)>> {
    proptest::collection::vec((0u8..2, 0u64..240), 1..48)
}

fn build(rows: &[(u8, u64)], removal: Removal, threshold: u64) -> Database {
    let mut db = Database::new(DbConfig {
        removal,
        forecast: ForecastConfig {
            storm_threshold: threshold,
        },
        ..DbConfig::default()
    });
    db.execute("CREATE TABLE a (k INT)").unwrap();
    db.execute("CREATE TABLE b (k INT)").unwrap();
    for (i, &(which, life)) in rows.iter().enumerate() {
        let table = if which == 0 { "a" } else { "b" };
        let texp = if life == 0 {
            exptime::core::time::Time::INFINITY
        } else {
            db.now() + life
        };
        db.insert(table, exptime::core::tuple![i as i64], texp)
            .unwrap();
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conservation: `forecast().horizon.total()` equals the live row
    /// count at every advance, under both removal modes, merged and per
    /// table — no tuple is ever double-counted or dropped from the
    /// prediction.
    #[test]
    fn forecast_bucket_sum_is_conserved_at_every_advance(
        rows in arb_rows(),
        advances in proptest::collection::vec(1u64..16, 1..16),
        lazy in any::<bool>(),
    ) {
        let removal = if lazy {
            Removal::Lazy { vacuum_every: 8 }
        } else {
            Removal::Eager
        };
        let mut db = build(&rows, removal, 64);
        for step in advances {
            db.tick(step);
            let now = db.now();
            let fc = db.forecast();
            let mut live_total = 0u64;
            for name in ["a", "b"] {
                let live = db.table(name).unwrap().live_count(now) as u64;
                live_total += live;
                let (_, table_fc) = fc
                    .tables
                    .iter()
                    .find(|(n, _)| n == name)
                    .expect("forecast covers every table");
                prop_assert_eq!(
                    table_fc.total(), live,
                    "table {} at {}: forecast total must equal live rows", name, now
                );
            }
            prop_assert_eq!(fc.horizon.total(), live_total);
            prop_assert_eq!(
                fc.horizon.expiring() + fc.horizon.eternal(),
                fc.horizon.total()
            );
            // The gauges advance_to refreshed agree with a fresh forecast.
            let live_gauge = db.metrics().gauge_value("forecast.live");
            prop_assert_eq!(live_gauge, i64::try_from(live_total).unwrap());
        }
    }

    /// Storm iff: after each advance, the set of `storm_warning` events
    /// stamped with that instant is exactly the set of buckets whose
    /// predicted rate strictly exceeds the threshold.
    #[test]
    fn storm_warning_fires_iff_a_bucket_exceeds_the_threshold(
        rows in arb_rows(),
        advances in proptest::collection::vec(1u64..16, 1..12),
        threshold in 1u64..6,
    ) {
        let mut db = build(&rows, Removal::Eager, threshold);
        let ring = db.obs().install_ring(4096);
        for step in advances {
            db.tick(step);
            let now = db.now().finite().unwrap();
            let fc = db.forecast();
            let expected: Vec<(u64, u64, u64)> = fc
                .storms
                .iter()
                .map(|s| (s.lo, s.hi, s.predicted))
                .collect();
            let mut emitted: Vec<(u64, u64, u64)> = Vec::new();
            for e in ring.recent(4096) {
                if let EventKind::StormWarning {
                    lo,
                    hi,
                    predicted,
                    threshold: t,
                    at,
                } = e.kind
                {
                    if at == now {
                        prop_assert_eq!(t, threshold);
                        emitted.push((lo, hi, predicted));
                    }
                }
            }
            prop_assert_eq!(
                emitted, expected,
                "storm events at t={} must match the storming buckets", now
            );
            let gauge = db.metrics().gauge_value("forecast.storm_buckets");
            prop_assert_eq!(gauge, i64::try_from(fc.storms.len()).unwrap());
        }
    }
}
