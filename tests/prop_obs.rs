//! Property tests for the observability layer: the metrics registry is a
//! faithful ledger of what the engine actually did, under arbitrary
//! interleavings of inserts, deletes, clock ticks, and queries.

mod common;

use common::schema2;
use exptime::core::tuple;
use exptime::engine::{Database, DbConfig};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// Insert a fresh (never-reused) key with this TTL.
    Insert { v: i64, ttl: u64 },
    /// DELETE by key; matches zero or one live row.
    Delete { k: i64 },
    /// Advance the logical clock (eager removal expires due rows).
    Tick { d: u64 },
    /// A SELECT over the table, to exercise the query-side telemetry.
    Query,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (-5i64..5, 1u64..30).prop_map(|(v, ttl)| Op::Insert { v, ttl }),
        1 => (0i64..80).prop_map(|k| Op::Delete { k }),
        2 => (1u64..12).prop_map(|d| Op::Tick { d }),
        1 => Just(Op::Query),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Conservation: at every observed clock time, every row the engine
    /// ever accepted is accounted for exactly once —
    /// `inserts == live + deleted + expired`. Keys are unique per insert
    /// so duplicate-merge semantics cannot blur the ledger.
    #[test]
    fn inserted_rows_are_conserved(ops in proptest::collection::vec(arb_op(), 1..70)) {
        let mut db = Database::new(DbConfig::default());
        db.create_table("t", schema2()).unwrap();
        let mut next_key = 0i64;

        for op in ops {
            match op {
                Op::Insert { v, ttl } => {
                    db.insert_ttl("t", tuple![next_key, v], ttl).unwrap();
                    next_key += 1;
                }
                Op::Delete { k } => {
                    db.execute(&format!("DELETE FROM t WHERE k = {k}")).unwrap();
                }
                Op::Tick { d } => {
                    db.tick(d);
                }
                Op::Query => {
                    db.execute("SELECT k FROM t").unwrap();
                }
            }

            let stats = db.stats();
            let live = db.table("t").unwrap().len() as u64;
            prop_assert_eq!(
                stats.inserts,
                live + stats.deletes + stats.expired,
                "inserts={} live={} deletes={} expired={} at {:?}",
                stats.inserts, live, stats.deletes, stats.expired, db.now()
            );
            // The public snapshot and the registry are the same ledger.
            let reg = db.metrics();
            prop_assert_eq!(reg.counter_value("db.inserts"), stats.inserts);
            prop_assert_eq!(reg.counter_value("db.deletes"), stats.deletes);
            prop_assert_eq!(reg.counter_value("db.expired"), stats.expired);
            prop_assert_eq!(reg.counter_value("db.queries"), stats.queries);
            // Single table, so the storage-level ledger must agree too.
            prop_assert_eq!(reg.counter_value("storage.t.inserts"), stats.inserts);
            prop_assert_eq!(reg.counter_value("storage.t.expired"), stats.expired);
        }
    }

    /// Latency histograms record exactly one sample per operation: the
    /// `db.query_ns` count equals the query counter and `db.insert_ns`
    /// equals the insert counter, whatever the interleaving.
    #[test]
    fn histogram_totals_match_operation_counts(
        ops in proptest::collection::vec(arb_op(), 1..70)
    ) {
        let mut db = Database::new(DbConfig::default());
        db.create_table("t", schema2()).unwrap();
        let mut next_key = 0i64;

        for op in ops {
            match op {
                Op::Insert { v, ttl } => {
                    db.insert_ttl("t", tuple![next_key, v], ttl).unwrap();
                    next_key += 1;
                }
                Op::Delete { k } => {
                    db.execute(&format!("DELETE FROM t WHERE k = {k}")).unwrap();
                }
                Op::Tick { d } => {
                    db.tick(d);
                }
                Op::Query => {
                    db.execute("SELECT k FROM t").unwrap();
                }
            }

            let stats = db.stats();
            for (name, snap) in db.metrics().histograms() {
                let expect = match name.as_str() {
                    "db.query_ns" => stats.queries,
                    "db.insert_ns" => stats.inserts,
                    // SLO histograms are fed by the staleness monitor, not
                    // by per-operation counters; this table has no views
                    // and eager removal fires triggers on time, so only
                    // internal consistency is checked below.
                    "slo.trigger_lateness_ticks" | "slo.refresh_ns" | "slo.resync_lag_ticks" => {
                        snap.count
                    }
                    other => {
                        prop_assert!(false, "unexpected histogram {}", other);
                        unreachable!()
                    }
                };
                prop_assert_eq!(snap.count, expect, "{}", name);
                // Bucket totals are internally consistent with the count.
                let bucketed: u64 = snap.buckets.iter().sum();
                prop_assert_eq!(bucketed, snap.count, "{} buckets", name);
            }
        }
    }
}
