//! Property tests for the telemetry plane: the `_telemetry.*` system
//! tables are ordinary expiring relations, so their retention needs no
//! deletion code at all —
//!
//! 1. **retention visibility** — every history row a SQL query can see
//!    is younger than the retention window, and once the clock passes
//!    `ts + retention` the row is gone from query results while the
//!    sampler keeps appending new ones (and `stats().deletes` stays 0:
//!    nothing ever issued a DELETE); and
//! 2. **forecast conservation with the sampler running** — the horizon
//!    forecast's bucket-sum invariant (total == live rows, per table and
//!    merged) keeps holding while the sampler concurrently inserts
//!    expiring rows into its own system tables, which the forecast must
//!    count like any other table.

use exptime::core::value::Value;
use exptime::engine::{DbConfig, TelemetryConfig};
use exptime::prelude::*;
use proptest::prelude::*;

const SAMPLE_EVERY: u64 = 3;
const RETENTION: u64 = 24;

/// One row of the generated workload: which table, and a lifetime (0 =
/// eternal — `EXPIRES NEVER`).
fn arb_rows() -> impl Strategy<Value = Vec<(u8, u64)>> {
    proptest::collection::vec((0u8..2, 0u64..120), 1..40)
}

fn build(rows: &[(u8, u64)]) -> Database {
    let mut db = Database::new(DbConfig {
        telemetry: TelemetryConfig::enabled(SAMPLE_EVERY, RETENTION),
        ..DbConfig::default()
    });
    db.execute("CREATE TABLE a (k INT)").unwrap();
    db.execute("CREATE TABLE b (k INT)").unwrap();
    for (i, &(which, life)) in rows.iter().enumerate() {
        let table = if which == 0 { "a" } else { "b" };
        let texp = if life == 0 {
            exptime::core::time::Time::INFINITY
        } else {
            db.now() + life
        };
        db.insert(table, exptime::core::tuple![i as i64], texp)
            .unwrap();
    }
    db
}

/// Every `ts` visible through SQL in the given system table, at the
/// current clock.
fn visible_ts(db: &mut Database, table: &str) -> Vec<u64> {
    let res = db
        .execute(&format!("SELECT ts FROM {table}"))
        .expect("system table is SELECTable");
    res.rows()
        .expect("rows")
        .iter()
        .map(|(t, _)| match t.get(0) {
            Some(Value::Int(ts)) => u64::try_from(*ts).expect("ts is a clock reading"),
            other => panic!("ts column must be INT, got {other:?}"),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Retention visibility: samples older than the retention window are
    /// invisible to SQL after an advance — shrinkage comes from expiry
    /// alone, with zero DELETEs issued by anyone.
    #[test]
    fn telemetry_history_expires_out_of_sql_visibility(
        rows in arb_rows(),
        advances in proptest::collection::vec(1u64..8, 1..12),
    ) {
        let mut db = build(&rows);
        for step in advances {
            db.tick(step);
            let now = db.now().finite().unwrap();
            if db.telemetry_status().samples == 0 {
                continue; // first sample not due yet; nothing to check
            }
            for table in ["_telemetry.metrics", "_telemetry.health"] {
                for ts in visible_ts(&mut db, table) {
                    prop_assert!(
                        ts + RETENTION > now,
                        "{table} row sampled at t={} still visible at t={} (retention {})",
                        ts, now, RETENTION
                    );
                    prop_assert!(ts <= now, "sample from the future");
                }
            }
        }

        // Force at least one sample, remember the newest live instant,
        // then advance past its expiration: everything visible now must
        // be strictly newer, the history shrank purely by expiry, and
        // the sampler itself kept running underneath.
        db.tick(SAMPLE_EVERY);
        let cutoff = visible_ts(&mut db, "_telemetry.metrics")
            .into_iter()
            .max()
            .expect("a sample was just taken");
        let before = db.telemetry_status();
        db.tick(RETENTION + 1);
        let after = db.telemetry_status();
        prop_assert!(after.samples > before.samples, "sampler kept running");
        for table in ["_telemetry.metrics", "_telemetry.health"] {
            let ts = visible_ts(&mut db, table);
            prop_assert!(!ts.is_empty(), "{table}: fresh samples must be visible");
            prop_assert!(
                ts.iter().all(|&t| t > cutoff),
                "{table}: rows from t<={cutoff} must have expired, saw {ts:?}"
            );
        }
        // Nothing in the telemetry plane deletes: retention is expiry.
        prop_assert_eq!(db.stats().deletes, 0);
    }

    /// Forecast conservation with the sampler live: the horizon's bucket
    /// sum still equals live rows — merged and per table — even though
    /// the sampler keeps inserting expiring rows into `_telemetry.*`
    /// between observations. The system tables appear in the forecast
    /// like any other table.
    #[test]
    fn forecast_conservation_holds_while_the_sampler_runs(
        rows in arb_rows(),
        advances in proptest::collection::vec(1u64..16, 1..16),
    ) {
        let mut db = build(&rows);
        for step in advances {
            db.tick(step);
            let now = db.now();
            let fc = db.forecast();
            let mut live_total = 0u64;
            for (name, table_fc) in &fc.tables {
                let live = db.table(name).unwrap().live_count(now) as u64;
                prop_assert_eq!(
                    table_fc.total(), live,
                    "table {} at {}: forecast total must equal live rows", name, now
                );
                live_total += live;
            }
            prop_assert_eq!(fc.horizon.total(), live_total);
            prop_assert_eq!(
                fc.horizon.expiring() + fc.horizon.eternal(),
                fc.horizon.total()
            );
            if db.telemetry_status().samples > 0 {
                prop_assert!(
                    fc.tables.iter().any(|(n, _)| n == "_telemetry.metrics"),
                    "the sampler's own tables must be forecast like any other"
                );
            }
        }
    }
}
