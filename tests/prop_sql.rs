//! Property tests for the SQL layer: `parse(unparse(ast)) == ast` on
//! randomly generated statements, and robustness (never panic) on
//! arbitrary input strings.

use exptime::core::predicate::CmpOp;
use exptime::core::value::ValueType;
use exptime::sql::ast::*;
use exptime::sql::unparse::statement_to_sql;
use exptime::sql::{parse, parse_many, Span};
use proptest::prelude::*;

fn arb_ident() -> impl Strategy<Value = String> {
    // Identifiers that cannot collide with keywords.
    "[a-z][a-z0-9_]{0,6}".prop_map(|s| format!("x_{s}"))
}

fn arb_colref() -> impl Strategy<Value = ColumnRef> {
    (proptest::option::of(arb_ident()), arb_ident())
        .prop_map(|(table, column)| ColumnRef::new(table, column))
}

fn arb_literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        any::<i64>().prop_map(Literal::Int),
        // Finite floats whose text form re-parses exactly.
        (-1_000_000i64..1_000_000, 0u32..1000)
            .prop_map(|(m, f)| { Literal::Float(m as f64 + f64::from(f) / 1000.0) }),
        "[ a-zA-Z0-9_',.!?-]{0,12}".prop_map(Literal::Str),
        any::<bool>().prop_map(Literal::Bool),
    ]
}

fn arb_scalar() -> impl Strategy<Value = Scalar> {
    prop_oneof![
        arb_colref().prop_map(Scalar::Column),
        arb_literal().prop_map(Scalar::Literal),
    ]
}

fn arb_cmp() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    let leaf = (arb_scalar(), arb_cmp(), arb_scalar()).prop_map(|(left, op, right)| Cond::Cmp {
        left,
        op,
        right,
    });
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Cond::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Cond::Or(Box::new(a), Box::new(b))),
            inner.prop_map(|a| Cond::Not(Box::new(a))),
        ]
    })
}

fn arb_items() -> impl Strategy<Value = Vec<SelectItem>> {
    prop_oneof![
        Just(vec![SelectItem::Wildcard]),
        proptest::collection::vec(
            prop_oneof![
                arb_colref().prop_map(SelectItem::Column),
                (
                    prop_oneof![
                        Just(AggName::Count),
                        Just(AggName::Sum),
                        Just(AggName::Avg),
                        Just(AggName::Min),
                        Just(AggName::Max),
                    ],
                    proptest::option::of(arb_colref())
                )
                    .prop_map(|(func, arg)| {
                        // Only COUNT may omit the argument.
                        let arg = if func == AggName::Count {
                            arg
                        } else {
                            Some(arg.unwrap_or(ColumnRef::new(None, "x_c")))
                        };
                        SelectItem::Aggregate {
                            func,
                            arg,
                            span: Span::DUMMY,
                        }
                    }),
            ],
            1..4
        ),
    ]
}

fn arb_having() -> impl Strategy<Value = Cond> {
    // HAVING conditions may compare aggregates with literals.
    (
        prop_oneof![Just(AggName::Count), Just(AggName::Sum), Just(AggName::Min),],
        proptest::option::of(arb_colref()),
        arb_cmp(),
        arb_literal(),
    )
        .prop_map(|(func, arg, op, lit)| {
            let arg = if func == AggName::Count {
                arg
            } else {
                Some(arg.unwrap_or(ColumnRef::new(None, "x_c")))
            };
            Cond::Cmp {
                left: Scalar::Aggregate { func, arg },
                op,
                right: Scalar::Literal(lit),
            }
        })
}

fn arb_body() -> impl Strategy<Value = QueryBody> {
    (
        arb_items(),
        proptest::collection::vec(arb_ident(), 1..3),
        proptest::option::of(arb_cond()),
        proptest::collection::vec(arb_colref(), 0..3),
        proptest::option::of(arb_having()),
    )
        .prop_map(
            |(projection, from, selection, group_by, having)| QueryBody {
                projection,
                from,
                selection,
                group_by,
                having,
                span: Span::DUMMY,
            },
        )
}

fn arb_query() -> impl Strategy<Value = Query> {
    (
        arb_body(),
        proptest::collection::vec(
            (
                prop_oneof![
                    Just(SetOp::Union),
                    Just(SetOp::Except),
                    Just(SetOp::Intersect)
                ],
                arb_body(),
            ),
            0..3,
        ),
        proptest::collection::vec((arb_colref(), any::<bool>()), 0..3),
        proptest::option::of(0usize..1000),
    )
        .prop_map(|(body, compound, order_by, limit)| Query {
            body,
            compound,
            set_op_spans: Vec::new(),
            order_by,
            limit,
            span: Span::DUMMY,
        })
}

fn arb_expires() -> impl Strategy<Value = Expires> {
    prop_oneof![
        Just(Expires::Never),
        Just(Expires::Default),
        (0u64..1_000_000).prop_map(Expires::At),
        (0u64..1_000_000).prop_map(Expires::In),
    ]
}

fn arb_ttl_clause() -> impl Strategy<Value = TtlClause> {
    (
        1u64..1_000_000,
        prop_oneof![
            Just(Sliding::Absolute),
            Just(Sliding::OnModify),
            Just(Sliding::OnAccess),
        ],
        // min ≤ max by construction (Clamp::new panics otherwise).
        proptest::option::of((1u64..1000, 0u64..1000).prop_map(|(min, extra)| (min, min + extra))),
    )
        .prop_map(|(ttl, sliding, clamp)| {
            let mut c = TtlClause::new(ttl).sliding(sliding);
            if let Some((min, max)) = clamp {
                c = c.clamp(min, max);
            }
            c
        })
}

fn arb_statement() -> impl Strategy<Value = Statement> {
    prop_oneof![
        (
            arb_ident(),
            proptest::collection::vec(
                (
                    arb_ident(),
                    prop_oneof![
                        Just(ValueType::Int),
                        Just(ValueType::Float),
                        Just(ValueType::Str),
                        Just(ValueType::Bool),
                    ]
                ),
                1..5
            ),
            proptest::option::of(arb_ttl_clause())
        )
            .prop_map(|(name, mut columns, ttl)| {
                // Column names must be unique for the engine, but the
                // parser does not care; dedup anyway for realism.
                columns.dedup_by(|a, b| a.0 == b.0);
                Statement::CreateTable { name, columns, ttl }
            }),
        arb_ident().prop_map(|name| Statement::DropTable { name }),
        (arb_ident(), any::<bool>(), arb_query()).prop_map(|(name, materialized, query)| {
            Statement::CreateView {
                name,
                materialized,
                query,
            }
        }),
        arb_ident().prop_map(|name| Statement::DropView { name }),
        (arb_ident(), proptest::option::of(arb_ttl_clause()))
            .prop_map(|(table, ttl)| Statement::AlterTtl { table, ttl }),
        proptest::option::of(arb_ident()).prop_map(|table| Statement::ShowTtl { table }),
        Just(Statement::Audit),
        (
            arb_ident(),
            proptest::collection::vec(proptest::collection::vec(arb_literal(), 1..4), 1..3),
            arb_expires()
        )
            .prop_map(|(table, mut rows, expires)| {
                // All rows of one INSERT must share an arity to be
                // realistic; truncate to the first row's arity.
                let arity = rows[0].len();
                for r in &mut rows {
                    r.truncate(arity);
                    while r.len() < arity {
                        r.push(Literal::Int(0));
                    }
                }
                Statement::Insert {
                    table,
                    rows,
                    expires,
                }
            }),
        (arb_ident(), proptest::option::of(arb_cond()))
            .prop_map(|(table, predicate)| Statement::Delete { table, predicate }),
        (arb_ident(), arb_expires(), proptest::option::of(arb_cond())).prop_map(
            |(table, expires, predicate)| Statement::UpdateExpiration {
                table,
                expires,
                predicate,
            }
        ),
        arb_query().prop_map(Statement::Select),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The unparser emits SQL the parser maps back to the identical AST.
    #[test]
    fn unparse_parse_roundtrip(stmt in arb_statement()) {
        let sql = statement_to_sql(&stmt);
        let reparsed = parse(&sql)
            .map_err(|e| TestCaseError::fail(format!("unparse produced unparsable SQL: {e}\n{sql}")))?;
        prop_assert_eq!(reparsed, stmt, "roundtrip mismatch for:\n{}", sql);
    }

    /// Scripts of several statements roundtrip through `parse_many`.
    #[test]
    fn script_roundtrip(stmts in proptest::collection::vec(arb_statement(), 1..5)) {
        let script: String = stmts
            .iter()
            .map(|s| format!("{};", statement_to_sql(s)))
            .collect::<Vec<_>>()
            .join("\n");
        let reparsed = parse_many(&script)
            .map_err(|e| TestCaseError::fail(format!("script reparse: {e}\n{script}")))?;
        prop_assert_eq!(reparsed, stmts);
    }

    /// The parser never panics, whatever bytes arrive.
    #[test]
    fn parser_never_panics(input in "\\PC{0,80}") {
        let _ = parse(&input);
        let _ = parse_many(&input);
    }

    /// Near-SQL soup (keywords and punctuation in random order) never
    /// panics either — it parses or errors.
    #[test]
    fn keyword_soup_never_panics(words in proptest::collection::vec(
        prop_oneof![
            Just("SELECT"), Just("FROM"), Just("WHERE"), Just("GROUP"), Just("BY"),
            Just("INSERT"), Just("INTO"), Just("VALUES"), Just("EXPIRES"), Just("AT"),
            Just("UNION"), Just("EXCEPT"), Just("("), Just(")"), Just(","), Just(";"),
            Just("="), Just("<"), Just("*"), Just("t"), Just("x"), Just("1"), Just("'s'"),
            Just("ORDER"), Just("LIMIT"), Just("JOIN"), Just("ON"), Just("NOT"),
        ],
        0..25
    )) {
        let input = words.join(" ");
        let _ = parse(&input);
        let _ = parse_many(&input);
    }
}
