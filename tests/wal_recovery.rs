//! Crash-recovery properties of the expiration-aware WAL.
//!
//! The central invariant: **crash anywhere, recover the committed
//! prefix.** A seeded SQL workload runs against a WAL-backed database on
//! an in-memory store; after every operation the test records a
//! milestone (log length + SQL dump of the in-memory state). The store
//! is then crashed at a battery of byte offsets — milestone boundaries,
//! off-by-one probes around them, and random cuts that land mid-frame —
//! and reopened. Whatever the offset, the recovered database must be
//! semantically identical (clock, every table, every view, and their
//! futures under further ticks) to the milestone whose durable log fit
//! inside the cut: torn frames and uncommitted transactions vanish,
//! committed statements survive, nothing in between.
//!
//! The seed matrix honours `EXPTIME_CRASH_SEEDS` (comma-separated
//! integers) so CI can pin distinct deterministic workloads per job,
//! mirroring the replica layer's `EXPTIME_CHAOS_SEEDS`.

use exptime::prelude::*;
use exptime::wal::{FaultPlan, MemStore};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

type Check = std::result::Result<(), String>;

fn wal_config(group_commit: usize) -> DbConfig {
    DbConfig {
        durability: Durability::Wal {
            group_commit,
            checkpoint_every: 0, // manual checkpoints only: eras are explicit
            expiration_aware: true,
        },
        ..DbConfig::default()
    }
}

/// One recorded point of the workload: the durable log position and a
/// full SQL dump of the in-memory state at that instant. `era` counts
/// checkpoints — a crash of the final store can only land in the final
/// era, because checkpointing truncates the log.
struct Milestone {
    era: usize,
    log_len: u64,
    dump: String,
}

struct Workload {
    store: MemStore,
    milestones: Vec<Milestone>,
    group_commit: usize,
}

/// Runs a seeded workload — inserts (finite and eternal expirations,
/// multi-row), deletes, expiration updates, clock ticks, materialised
/// views, and interleaved manual checkpoints — recording a milestone
/// after every operation.
fn run_workload(seed: u64, ops: usize) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let group_commit = [1, 2, 8][rng.gen_range(0..3usize)];
    let store = MemStore::new();
    let mut db =
        Database::open_with_store(Box::new(store.clone()), wal_config(group_commit)).unwrap();
    db.execute("CREATE TABLE t0 (k INT, v TEXT)").unwrap();
    db.execute("CREATE TABLE t1 (k INT, v TEXT)").unwrap();

    let mut era = 0usize;
    let mut next_k = 0i64;
    let mut views = 0usize;
    let mut milestones = vec![Milestone {
        era,
        log_len: store.len(),
        dump: db.dump_sql(),
    }];
    let strings = ["", "x", "it's", "ünïcödé ∞", "two  words"];
    for _ in 0..ops {
        let table = if rng.gen_bool(0.5) { "t0" } else { "t1" };
        let roll = rng.gen_range(0..100u32);
        if roll < 45 {
            let n_rows = rng.gen_range(1..4usize);
            let mut rows = Vec::new();
            for _ in 0..n_rows {
                let s = strings[rng.gen_range(0..strings.len())].replace('\'', "''");
                rows.push(format!("({next_k}, '{s}')"));
                next_k += 1;
            }
            let expires = if rng.gen_bool(0.15) {
                "EXPIRES NEVER".to_string()
            } else {
                format!("EXPIRES IN {} TICKS", rng.gen_range(1..25u64))
            };
            db.execute(&format!(
                "INSERT INTO {table} VALUES {} {expires}",
                rows.join(", ")
            ))
            .unwrap();
        } else if roll < 57 && next_k > 0 {
            let k = rng.gen_range(0..next_k);
            db.execute(&format!("DELETE FROM {table} WHERE k = {k}"))
                .unwrap();
        } else if roll < 67 && next_k > 0 {
            let k = rng.gen_range(0..next_k);
            let n = rng.gen_range(1..20u64);
            db.execute(&format!(
                "UPDATE {table} SET EXPIRES IN {n} TICKS WHERE k = {k}"
            ))
            .unwrap();
        } else if roll < 82 {
            db.tick(rng.gen_range(1..4u64));
        } else if roll < 90 {
            db.checkpoint().unwrap();
            era += 1;
        } else if views < 3 {
            db.execute(&format!(
                "CREATE MATERIALIZED VIEW mv{views} AS SELECT k FROM {table}"
            ))
            .unwrap();
            views += 1;
        } else {
            db.tick(1);
        }
        milestones.push(Milestone {
            era,
            log_len: store.len(),
            dump: db.dump_sql(),
        });
    }
    db.wal_sync().unwrap();
    drop(db);
    Workload {
        store,
        milestones,
        group_commit,
    }
}

/// Recovered-vs-oracle equivalence: same clock, same answer from every
/// table and view, now and after further ticks (expirations continue in
/// lockstep because the texps and the clock round-tripped exactly).
fn check_equiv(ctx: &str, recovered: &mut Database, oracle_dump: &str) -> Check {
    let mut oracle =
        Database::restore(oracle_dump).map_err(|e| format!("{ctx}: oracle restore: {e}"))?;
    if recovered.now() != oracle.now() {
        return Err(format!(
            "{ctx}: clock diverged: recovered t={} oracle t={}",
            recovered.now(),
            oracle.now()
        ));
    }
    let mut rec_views = recovered.view_names();
    let mut ora_views = oracle.view_names();
    rec_views.sort();
    ora_views.sort();
    if rec_views != ora_views {
        return Err(format!(
            "{ctx}: views diverged: recovered {rec_views:?} oracle {ora_views:?}"
        ));
    }
    for delta in [0u64, 3, 11] {
        if delta > 0 {
            recovered.tick(delta);
            oracle.tick(delta);
        }
        for t in ["t0", "t1"] {
            let q = format!("SELECT * FROM {t}");
            let a = recovered
                .execute(&q)
                .map_err(|e| format!("{ctx}: recovered `{q}`: {e}"))?
                .rows()
                .unwrap()
                .clone();
            let b = oracle.execute(&q).unwrap().rows().unwrap().clone();
            if !a.set_eq(&b) {
                return Err(format!(
                    "{ctx}: `{q}` diverged after +{delta}:\n  recovered {a:?}\n  oracle {b:?}"
                ));
            }
        }
        for v in &rec_views {
            let a = recovered
                .read_view(v)
                .map_err(|e| format!("{ctx}: recovered view `{v}`: {e}"))?;
            let b = oracle.read_view(v).unwrap();
            if !a.set_eq(&b) {
                return Err(format!("{ctx}: view `{v}` diverged after +{delta}"));
            }
        }
    }
    Ok(())
}

/// The committed-prefix invariant for one workload: crash the final
/// store at every interesting offset and demand the recovered state
/// equal the last milestone whose log fit inside the cut.
fn check_crash_anywhere(seed: u64) -> Check {
    let Workload {
        store,
        milestones,
        group_commit,
    } = run_workload(seed, 40);
    let final_len = store.len();
    let final_era = milestones.last().unwrap().era;

    // Offsets: exact milestone boundaries, off-by-one probes around
    // them (mid-frame cuts), and random interior offsets.
    let mut offsets = vec![0u64, final_len];
    for m in &milestones {
        if m.era == final_era {
            offsets.push(m.log_len);
            offsets.push(m.log_len.saturating_sub(1));
            offsets.push((m.log_len + 1).min(final_len));
        }
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
    for _ in 0..10 {
        offsets.push(rng.gen_range(0..=final_len));
    }
    offsets.sort_unstable();
    offsets.dedup();

    for &offset in &offsets {
        let crashed = store.crash(offset);
        let mut recovered = Database::open_with_store(Box::new(crashed), wal_config(group_commit))
            .map_err(|e| format!("[seed {seed}] open after crash at {offset}/{final_len}: {e}"))?;
        // Recovery always ends on a fresh checkpoint: clean log.
        let status = recovered.wal_status().unwrap();
        if status.log_bytes != 0 {
            return Err(format!(
                "[seed {seed}] crash at {offset}: log not truncated after recovery ({} bytes)",
                status.log_bytes
            ));
        }
        let expected = milestones
            .iter()
            .rfind(|m| m.era == final_era && m.log_len <= offset)
            .expect("the era's checkpoint milestone has log_len 0");
        let ctx = format!("[seed {seed}] crash at byte {offset}/{final_len}");
        check_equiv(&ctx, &mut recovered, &expected.dump)?;
    }
    Ok(())
}

/// Deterministic seed matrix for CI: `EXPTIME_CRASH_SEEDS=1,2,3` pins
/// the exact workloads; the default covers eight distinct ones.
#[test]
fn crash_seed_matrix() {
    let seeds = std::env::var("EXPTIME_CRASH_SEEDS").unwrap_or_else(|_| "1,2,3,4,5,6,7,8".into());
    let mut ran = 0usize;
    for part in seeds.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let seed: u64 = part
            .parse()
            .unwrap_or_else(|e| panic!("EXPTIME_CRASH_SEEDS entry `{part}`: {e}"));
        if let Err(msg) = check_crash_anywhere(seed) {
            panic!("crash matrix: {msg}");
        }
        ran += 1;
    }
    assert!(ran > 0, "EXPTIME_CRASH_SEEDS selected no seeds");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random seeds beyond the pinned matrix: the committed-prefix
    /// invariant holds for arbitrary workloads and arbitrary cuts.
    #[test]
    fn crash_at_any_offset_recovers_committed_prefix(seed in 9u64..1_000_000) {
        let r = check_crash_anywhere(seed);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }
}

/// Media corruption: flipping any single bit of the log must never make
/// recovery fail or invent state — it bounds recovery to the committed
/// prefix before the damaged frame.
#[test]
fn bit_flip_bounds_recovery_to_the_prefix_before_the_damage() {
    for seed in [3u64, 17, 99] {
        let Workload {
            store,
            milestones,
            group_commit,
        } = run_workload(seed, 30);
        let final_len = store.len();
        let final_era = milestones.last().unwrap().era;
        let mut rng = StdRng::seed_from_u64(seed ^ 0xB17);
        for _ in 0..8 {
            let byte = rng.gen_range(0..final_len);
            let bit = rng.gen_range(0..8u8);
            let damaged = store.crash(final_len); // independent copy
            damaged.flip_bit(byte, bit);
            let mut recovered =
                Database::open_with_store(Box::new(damaged), wal_config(group_commit))
                    .unwrap_or_else(|e| {
                        panic!("[seed {seed}] open with flipped bit {byte}.{bit}: {e}")
                    });
            // The frame containing the damaged byte is rejected, so the
            // recovered state is the last milestone at or before it.
            let expected = milestones
                .iter()
                .rfind(|m| m.era == final_era && m.log_len <= byte)
                .expect("era checkpoint milestone");
            let ctx = format!("[seed {seed}] bit flip at {byte}.{bit}/{final_len}");
            if let Err(msg) = check_equiv(&ctx, &mut recovered, &expected.dump) {
                panic!("{msg}");
            }
        }
    }
}

/// An injected write fault mid-workload: the failing statement errors,
/// the database flags itself degraded (durable and in-memory state may
/// have diverged by that statement), and a successful checkpoint —
/// which re-snapshots everything — heals the flag. Reopening from the
/// store at any point never sees the torn frame.
#[test]
fn io_fault_degrades_and_checkpoint_heals() {
    let store = MemStore::new();
    let mut db = Database::open_with_store(Box::new(store.clone()), wal_config(1)).unwrap();
    db.execute("CREATE TABLE t0 (k INT, v TEXT)").unwrap();
    db.execute("INSERT INTO t0 VALUES (1, 'a') EXPIRES IN 50 TICKS")
        .unwrap();

    // Arm a fault that lets the statement's TxnBegin frame (17 bytes)
    // through and tears the insert record itself: the row applies in
    // memory before its WAL append fails — the divergence the degraded
    // flag exists for.
    store.set_fault(Some(FaultPlan {
        fail_after_bytes: store.len() + 20,
        torn_bytes: 3,
    }));
    let err = db.execute("INSERT INTO t0 VALUES (2, 'b') EXPIRES IN 50 TICKS");
    assert!(err.is_err(), "statement with failing WAL append must error");
    assert!(db.wal_status().unwrap().degraded, "degraded flag must set");

    // Recovery from the torn store sees only the committed prefix.
    store.set_fault(None);
    let mut reopened =
        Database::open_with_store(Box::new(store.crash(store.len())), wal_config(1)).unwrap();
    let rows = reopened
        .execute("SELECT * FROM t0")
        .unwrap()
        .rows()
        .unwrap()
        .len();
    assert_eq!(rows, 1, "torn insert must not survive recovery");

    // A checkpoint re-snapshots the full in-memory state and heals.
    let ck = db.checkpoint().unwrap();
    assert!(!db.wal_status().unwrap().degraded);
    assert_eq!(ck.live_rows, 2, "checkpoint captures the applied insert");
    let mut healed =
        Database::open_with_store(Box::new(store.crash(store.len())), wal_config(1)).unwrap();
    let rows = healed
        .execute("SELECT * FROM t0")
        .unwrap()
        .rows()
        .unwrap()
        .len();
    assert_eq!(rows, 2, "post-checkpoint recovery has the full state");
}

/// End-to-end through the real file store: write, drop, reopen from the
/// directory, verify, then crash-cut the log file by hand and reopen.
#[test]
fn file_store_survives_reopen_and_truncated_log() {
    let dir = std::env::temp_dir().join(format!("exptime-wal-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = wal_config(2);
    {
        let mut db = Database::open(&dir, config).unwrap();
        db.execute("CREATE TABLE t0 (k INT, v TEXT)").unwrap();
        db.execute("INSERT INTO t0 VALUES (1, 'keep') EXPIRES NEVER")
            .unwrap();
        db.execute("INSERT INTO t0 VALUES (2, 'dies') EXPIRES IN 3 TICKS")
            .unwrap();
        db.tick(5);
    }
    {
        let mut db = Database::open(&dir, config).unwrap();
        let rec = db.recovery_stats().unwrap();
        assert_eq!(rec.clock, 5);
        assert_eq!(
            rec.skipped_expired, 1,
            "the dead insert is skipped, not replayed: {rec:?}"
        );
        let rows = db
            .execute("SELECT * FROM t0")
            .unwrap()
            .rows()
            .unwrap()
            .clone();
        assert_eq!(rows.len(), 1);
        db.execute("INSERT INTO t0 VALUES (3, 'tail') EXPIRES NEVER")
            .unwrap();
        db.wal_sync().unwrap();
    }
    // Tear the log mid-frame with plain filesystem tools: the tail
    // statement is cut and must vanish; everything checkpointed stays.
    let log = dir.join("wal.log");
    let len = std::fs::metadata(&log).unwrap().len();
    assert!(len > 4, "the tail insert left frames in the log");
    let bytes = std::fs::read(&log).unwrap();
    std::fs::write(&log, &bytes[..bytes.len() - 4]).unwrap();
    {
        let mut db = Database::open(&dir, config).unwrap();
        let rec = db.recovery_stats().unwrap();
        assert!(rec.torn_bytes > 0, "the cut frame is a torn tail: {rec:?}");
        let rows = db
            .execute("SELECT * FROM t0")
            .unwrap()
            .rows()
            .unwrap()
            .clone();
        assert_eq!(rows.len(), 1, "torn tail statement must not survive");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Checkpoints under load commute with recovery: however writes, ticks
/// and checkpoints interleave, crashing right at the end reproduces the
/// live state exactly (the final milestone).
#[test]
fn checkpoint_under_load_preserves_replay_equivalence() {
    for seed in [21u64, 42, 84, 168] {
        let Workload {
            store,
            milestones,
            group_commit,
        } = run_workload(seed, 60);
        let mut recovered =
            Database::open_with_store(Box::new(store.crash(store.len())), wal_config(group_commit))
                .unwrap();
        let last = milestones.last().unwrap();
        let ctx = format!("[seed {seed}] crash at end-of-log");
        if let Err(msg) = check_equiv(&ctx, &mut recovered, &last.dump) {
            panic!("{msg}");
        }
    }
}
