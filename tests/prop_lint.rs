//! Property tests for the soundness lattice: the analyzer's static
//! verdicts must agree with what the maintenance machinery actually does.
//! `Sound(∞)` is a *promise* — a plan classified monotonic with an
//! infinite static bound must never produce a stale materialised view and
//! must never recompute.

mod common;

use common::{arb_catalog, arb_expr, probe_times};
use exptime::core::algebra::{eval, EvalOptions};
use exptime::core::materialize::{MaterializedView, RefreshPolicy, RemovalPolicy};
use exptime::core::rewrite::{rewrite, Monotonicity, StaticBound, TickBound};
use exptime::core::time::Time;
use exptime::engine::{Database, DbConfig};
use exptime::lint::BoundBasis;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The tentpole promise: a plan the analyzer calls `Sound(∞)` never
    /// serves a stale read and never recomputes, at any probe instant.
    #[test]
    fn sound_infinite_plans_never_go_stale(
        catalog in arb_catalog(12),
        expr in arb_expr(),
    ) {
        let s = expr.soundness();
        prop_assume!(s.is_sound_infinite());
        let mut view = MaterializedView::new(
            expr.clone(),
            &catalog,
            Time::ZERO,
            EvalOptions::default(),
            RefreshPolicy::Recompute,
            RemovalPolicy::Lazy,
        )?;
        for tau in probe_times(&catalog) {
            let seen = view.read(&catalog, tau)?;
            let fresh = eval(&expr, &catalog, tau, &EvalOptions::default())?;
            prop_assert!(
                seen.set_eq(&fresh.rel.exp(tau)),
                "stale Sound(∞) view at {tau}: {expr}"
            );
        }
        prop_assert_eq!(view.stats().recomputations, 0, "Sound(∞) recomputed: {}", expr);
    }

    /// The lattice agrees with the operator census: a plan is monotonic
    /// iff it contains no difference or aggregate, and then (and only
    /// then) its static bound is infinite.
    #[test]
    fn soundness_classification_matches_structure(expr in arb_expr()) {
        let s = expr.soundness();
        prop_assert_eq!(
            s.monotonicity == Monotonicity::Monotonic,
            s.non_monotonic_count == 0
        );
        prop_assert_eq!(
            s.bound == StaticBound::Infinite,
            s.non_monotonic_count == 0
        );
        prop_assert_eq!(s.is_sound_infinite(), expr.is_monotonic());
    }

    /// The pull-up rewrite never makes a plan less sound: the rewritten
    /// plan's monotonicity class is never above (worse than) the original
    /// in the lattice, and the non-monotonic operator census is unchanged.
    #[test]
    fn rewrite_never_worsens_soundness(expr in arb_expr()) {
        let before = expr.soundness();
        let after = rewrite(&expr).soundness();
        prop_assert!(
            after.monotonicity <= before.monotonicity,
            "rewrite worsened {} -> {}", before.monotonicity, after.monotonicity
        );
        prop_assert_eq!(after.non_monotonic_count, before.non_monotonic_count);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The whole-database audit's promise: the observed staleness of a
    /// materialised view never exceeds the static bound `EXPLAIN AUDIT`
    /// derived for it, across random TTL policies (clamped or not,
    /// sliding or absolute), random writes with arbitrary explicit
    /// expirations, and random clock advances. Enforced (Proven/Exact)
    /// bounds are watched by the SLO monitor on every tick — zero
    /// `audit_violations` means no artifact ever outlived its bound.
    #[test]
    fn observed_staleness_never_exceeds_the_audit_bound(
        ttl in 1u64..40,
        clamp in proptest::option::of((0u64..6, 1u64..50)),
        sliding in any::<bool>(),
        seed_rows in proptest::collection::vec((0i64..8, proptest::option::of(1u64..200)), 1..10),
        advances in proptest::collection::vec((1u64..10, 0i64..8, proptest::option::of(1u64..200)), 1..8),
    ) {
        let mut ddl = format!("CREATE TABLE t (k INT) TTL {ttl}");
        if sliding {
            ddl.push_str(" SLIDING ON ACCESS");
        }
        if let Some((min, width)) = clamp {
            ddl.push_str(&format!(" CLAMP {min}..{}", min + width));
        }
        let mut db = Database::new(DbConfig::default());
        db.execute(&ddl).unwrap();
        db.execute("CREATE MATERIALIZED VIEW agg AS SELECT k, COUNT(*) FROM t GROUP BY k")
            .unwrap();
        db.execute("CREATE MATERIALIZED VIEW mono AS SELECT k FROM t WHERE k >= 0")
            .unwrap();
        for (k, exp) in &seed_rows {
            let mut sql = format!("INSERT INTO t VALUES ({k})");
            if let Some(e) = exp {
                sql.push_str(&format!(" EXPIRES IN {e} TICKS"));
            }
            db.execute(&sql).unwrap();
        }

        let report = db.audit();
        let agg = report.views.iter().find(|v| v.name == "agg").unwrap();
        let mono = report.views.iter().find(|v| v.name == "mono").unwrap();
        // Theorem 1: the monotone view is eternal — zero staleness, exact.
        prop_assert_eq!(mono.bound, TickBound::ZERO);
        prop_assert_eq!(mono.basis, BoundBasis::Exact);
        // A clamp makes the non-monotone view's bound provable (and
        // therefore enforced); without one, explicit EXPIRES can exceed
        // the declared TTL, so the basis degrades to Declared.
        prop_assert!(matches!(agg.bound, TickBound::Finite(_)), "{:?}", agg.bound);
        if clamp.is_some() {
            prop_assert_eq!(agg.basis, BoundBasis::Proven);
        }
        let gauge = db.metrics().gauge_value("view.agg.staleness_bound");
        prop_assert_eq!(Some(gauge as u64), agg.bound.finite());

        // Random life after the audit: more writes (all routed through
        // the policy), reads (touches, under sliding), clock advances.
        // The monitor re-checks every enforced bound on each tick.
        for (dt, k, exp) in &advances {
            let mut sql = format!("INSERT INTO t VALUES ({k})");
            if let Some(e) = exp {
                sql.push_str(&format!(" EXPIRES IN {e} TICKS"));
            }
            db.execute(&sql).unwrap();
            db.execute("SELECT * FROM t").unwrap();
            db.execute("SELECT * FROM agg").unwrap();
            db.tick(*dt);
        }
        prop_assert_eq!(db.health().audit_violations, 0);

        // Re-auditing at the later instant still proves a finite bound
        // for every view (live rows were all written under the policy).
        let again = db.audit();
        for v in &again.views {
            prop_assert!(
                matches!(v.bound, TickBound::Finite(_)),
                "{}: {:?}", v.name, v.bound
            );
        }
        prop_assert_eq!(db.health().audit_violations, 0);
    }
}
