//! Property tests for the soundness lattice: the analyzer's static
//! verdicts must agree with what the maintenance machinery actually does.
//! `Sound(∞)` is a *promise* — a plan classified monotonic with an
//! infinite static bound must never produce a stale materialised view and
//! must never recompute.

mod common;

use common::{arb_catalog, arb_expr, probe_times};
use exptime::core::algebra::{eval, EvalOptions};
use exptime::core::materialize::{MaterializedView, RefreshPolicy, RemovalPolicy};
use exptime::core::rewrite::{rewrite, Monotonicity, StaticBound};
use exptime::core::time::Time;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The tentpole promise: a plan the analyzer calls `Sound(∞)` never
    /// serves a stale read and never recomputes, at any probe instant.
    #[test]
    fn sound_infinite_plans_never_go_stale(
        catalog in arb_catalog(12),
        expr in arb_expr(),
    ) {
        let s = expr.soundness();
        prop_assume!(s.is_sound_infinite());
        let mut view = MaterializedView::new(
            expr.clone(),
            &catalog,
            Time::ZERO,
            EvalOptions::default(),
            RefreshPolicy::Recompute,
            RemovalPolicy::Lazy,
        )?;
        for tau in probe_times(&catalog) {
            let seen = view.read(&catalog, tau)?;
            let fresh = eval(&expr, &catalog, tau, &EvalOptions::default())?;
            prop_assert!(
                seen.set_eq(&fresh.rel.exp(tau)),
                "stale Sound(∞) view at {tau}: {expr}"
            );
        }
        prop_assert_eq!(view.stats().recomputations, 0, "Sound(∞) recomputed: {}", expr);
    }

    /// The lattice agrees with the operator census: a plan is monotonic
    /// iff it contains no difference or aggregate, and then (and only
    /// then) its static bound is infinite.
    #[test]
    fn soundness_classification_matches_structure(expr in arb_expr()) {
        let s = expr.soundness();
        prop_assert_eq!(
            s.monotonicity == Monotonicity::Monotonic,
            s.non_monotonic_count == 0
        );
        prop_assert_eq!(
            s.bound == StaticBound::Infinite,
            s.non_monotonic_count == 0
        );
        prop_assert_eq!(s.is_sound_infinite(), expr.is_monotonic());
    }

    /// The pull-up rewrite never makes a plan less sound: the rewritten
    /// plan's monotonicity class is never above (worse than) the original
    /// in the lattice, and the non-monotonic operator census is unchanged.
    #[test]
    fn rewrite_never_worsens_soundness(expr in arb_expr()) {
        let before = expr.soundness();
        let after = rewrite(&expr).soundness();
        prop_assert!(
            after.monotonicity <= before.monotonicity,
            "rewrite worsened {} -> {}", before.monotonicity, after.monotonicity
        );
        prop_assert_eq!(after.non_monotonic_count, before.non_monotonic_count);
    }
}
