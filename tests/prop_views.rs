//! Property tests for materialised-view maintenance and Theorem 3
//! patching: a view read at any instant must equal a fresh evaluation,
//! whatever combination of refresh/removal policies is in effect, and a
//! patched difference must never recompute.

mod common;

use common::{arb_catalog, arb_expr, probe_times};
use exptime::core::algebra::{eval, ops, EvalOptions, Expr};
use exptime::core::materialize::{MaterializedView, RefreshPolicy, RemovalPolicy};
use exptime::core::patch::PatchQueue;
use exptime::core::schrodinger::{self, QueryPolicy};
use exptime::core::time::Time;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The central contract: a maintained view equals a fresh evaluation
    /// at every probe instant, under every policy combination AND every
    /// aggregate expiration mode (the conservative modes shorten tuple
    /// lifetimes, which the expression metadata must track so the view
    /// recomputes exactly when rows would go missing).
    #[test]
    fn view_reads_equal_fresh_evaluation(
        catalog in arb_catalog(12),
        expr in arb_expr(),
        refresh in prop_oneof![Just(RefreshPolicy::Recompute), Just(RefreshPolicy::Patch)],
        removal in prop_oneof![Just(RemovalPolicy::Eager), Just(RemovalPolicy::Lazy)],
        agg_mode in prop_oneof![
            Just(exptime::core::aggregate::AggMode::Naive),
            Just(exptime::core::aggregate::AggMode::Contributing),
            Just(exptime::core::aggregate::AggMode::Exact),
        ],
    ) {
        let opts = EvalOptions { agg_mode, ..EvalOptions::default() };
        let mut view = MaterializedView::new(
            expr.clone(), &catalog, Time::ZERO, opts, refresh, removal,
        )?;
        for tau in probe_times(&catalog) {
            let got = view.read(&catalog, tau)?;
            let fresh = eval(&expr, &catalog, tau, &opts)?;
            prop_assert!(
                got.set_eq(&fresh.rel.exp(tau)),
                "view diverges for {expr} at {tau} under {refresh:?}/{removal:?}/{agg_mode:?}:\n{got:?}\nvs {:?}",
                fresh.rel.exp(tau)
            );
        }
        if expr.is_monotonic() {
            prop_assert_eq!(view.stats().recomputations, 0, "Theorem 1");
        }
    }

    /// Theorem 3 at the view level: a root difference with patching never
    /// recomputes, at any probe instant.
    #[test]
    fn patched_root_difference_never_recomputes(catalog in arb_catalog(12)) {
        let expr = Expr::base("r").difference(Expr::base("s"));
        let mut view = MaterializedView::new(
            expr.clone(), &catalog, Time::ZERO, EvalOptions::default(),
            RefreshPolicy::Patch, RemovalPolicy::Lazy,
        )?;
        for tau in probe_times(&catalog) {
            let got = view.read(&catalog, tau)?;
            let fresh = eval(&expr, &catalog, tau, &EvalOptions::default())?;
            prop_assert!(got.set_eq(&fresh.rel.exp(tau)), "at {tau}");
        }
        prop_assert_eq!(view.stats().recomputations, 0, "Theorem 3");
    }

    /// Theorem 3 at the queue level, including the expiration times of the
    /// patched tuples: the patched materialisation equals recomputation
    /// with texps at every instant (set_eq, not just tuple equality).
    #[test]
    fn patch_queue_matches_recomputation_with_texps(catalog in arb_catalog(12)) {
        let r = catalog.get("r")?;
        let s = catalog.get("s")?;
        let mut materialised = ops::difference(r, s, Time::ZERO)?;
        let mut queue = PatchQueue::from_critical(ops::critical_tuples(r, s, Time::ZERO));
        let bound = queue.len();
        prop_assert!(bound <= r.iter().filter(|(t, _)| s.contains(t)).count(),
            "queue ≤ |R ∩ S|");
        for tau in probe_times(&catalog) {
            queue.apply_due(&mut materialised, tau);
            let fresh = ops::difference(r, s, tau)?;
            prop_assert!(
                materialised.set_eq_at(&fresh, tau),
                "at {tau}: {materialised:?}\nvs {fresh:?}"
            );
        }
    }

    /// Schrödinger query answering never returns a wrong relation: under
    /// every policy, if an answer is produced for time τ (not refused and
    /// not moved), it equals the fresh evaluation at its `as_of` time.
    #[test]
    fn schrodinger_answers_are_correct_for_their_as_of(
        catalog in arb_catalog(12),
        expr in arb_expr(),
        policy in prop_oneof![
            Just(QueryPolicy::Recompute),
            Just(QueryPolicy::MoveBackward { max_drift: 5 }),
            Just(QueryPolicy::MoveForward { max_delay: 5 }),
        ],
    ) {
        let m = eval(&expr, &catalog, Time::ZERO, &EvalOptions::default())?;
        for tau in probe_times(&catalog) {
            let ans = schrodinger::answer(&m, &expr, &catalog, tau, policy, &EvalOptions::default())?;
            let fresh = eval(&expr, &catalog, ans.as_of, &EvalOptions::default())?;
            prop_assert!(
                ans.rel.tuples_eq_at(&fresh.rel, ans.as_of),
                "{expr}: answer at {tau} (as_of {}) is wrong under {policy:?}",
                ans.as_of
            );
            // Drift bounds are honoured.
            match policy {
                QueryPolicy::MoveBackward { max_drift } => {
                    if let (Some(a), Some(q)) = (ans.as_of.finite(), tau.finite()) {
                        prop_assert!(q.saturating_sub(a) <= max_drift);
                    }
                }
                QueryPolicy::MoveForward { max_delay } => {
                    if let (Some(a), Some(q)) = (ans.as_of.finite(), tau.finite()) {
                        prop_assert!(a.saturating_sub(q) <= max_delay);
                    }
                }
                _ => prop_assert_eq!(ans.as_of, tau),
            }
        }
    }

    /// Vacuuming (lazy physical removal) never changes what reads observe.
    #[test]
    fn vacuum_is_observationally_neutral(
        catalog in arb_catalog(12),
        expr in arb_expr(),
        vacuum_at in 0u64..40,
    ) {
        let mut with_vacuum = MaterializedView::with_defaults(expr.clone(), &catalog, Time::ZERO)?;
        let mut without = MaterializedView::with_defaults(expr, &catalog, Time::ZERO)?;
        let vacuum_at = Time::new(vacuum_at);
        for tau in probe_times(&catalog) {
            if tau >= vacuum_at {
                with_vacuum.vacuum(vacuum_at);
            }
            let a = with_vacuum.read(&catalog, tau)?;
            let b = without.read(&catalog, tau)?;
            prop_assert!(a.set_eq(&b), "vacuum changed observable state at {tau}");
        }
    }
}
