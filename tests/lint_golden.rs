//! Golden tests for the static analyzer: the paper's Figure 3 anomalies
//! must produce exactly the expected diagnostic codes, anchored at the
//! expected byte spans, and the Figure 2 monotonic workload must produce
//! none at all.

use exptime::engine::{Database, DbConfig};
use exptime::lint::{Code, Severity};

fn figure1_db() -> Database {
    let mut db = Database::new(DbConfig::default());
    db.execute_script(
        "CREATE TABLE pol (uid INT, deg INT);
         CREATE TABLE el (uid INT, deg INT);
         INSERT INTO pol VALUES (1, 25) EXPIRES AT 10;
         INSERT INTO pol VALUES (2, 25) EXPIRES AT 15;
         INSERT INTO pol VALUES (3, 35) EXPIRES AT 10;
         INSERT INTO el VALUES (1, 75) EXPIRES AT 5;
         INSERT INTO el VALUES (2, 85) EXPIRES AT 3;
         INSERT INTO el VALUES (4, 90) EXPIRES AT 2;",
    )
    .unwrap();
    db
}

/// Figure 2's workload is pure monotonic algebra (Theorem 1): selection,
/// projection, join, union, intersection. Zero diagnostics, down to info.
#[test]
fn figure_2_monotonic_workload_is_clean() {
    let db = figure1_db();
    for sql in [
        "SELECT * FROM pol",
        "SELECT uid FROM pol",
        "SELECT uid FROM pol WHERE deg >= 25",
        "SELECT * FROM pol JOIN el ON pol.uid = el.uid",
        "SELECT uid FROM pol UNION SELECT uid FROM el",
        "SELECT uid FROM pol INTERSECT SELECT uid FROM el",
        "SELECT pol.uid FROM pol JOIN el ON pol.uid = el.uid WHERE el.deg > 80",
    ] {
        let r = db.lint(sql).unwrap();
        assert!(r.is_clean(), "{sql}: {:?}", r.diagnostics);
    }
}

/// Figure 3(a): πexp(aggexp(Pol)) — the aggregate sits *under* the
/// projection, and COUNT admits only the empty neutral set (Table 1).
/// Expected: X001 (non-monotonic not at top) then X003 (validity ends at
/// the next change point χ), in ranked order, with X003 anchored at the
/// COUNT(*) call.
#[test]
fn figure_3a_aggregate_under_projection() {
    let db = figure1_db();
    let sql = "SELECT deg, COUNT(*) FROM pol GROUP BY deg";
    let r = db.lint(sql).unwrap();
    assert_eq!(r.codes(), vec![Code::X001, Code::X003]);
    assert_eq!(r.diagnostics[0].severity, Severity::Warning);
    let x003 = &r.diagnostics[1];
    assert_eq!(
        (x003.span.start, x003.span.end),
        (12, 20),
        "span should cover COUNT(*)"
    );
    assert_eq!(&sql[x003.span.start..x003.span.end], "COUNT(*)");
    assert!(x003.message.contains('χ'), "{}", x003.message);
    // The X001 span covers the whole query (the defect is structural).
    let x001 = &r.diagnostics[0];
    assert_eq!((x001.span.start, x001.span.end), (0, sql.len()));
}

/// Figure 3(b): a materialised difference. A critical tuple in El gives
/// the view a *finite* expiration (Table 2 / Eq. 11) — unless Theorem 3
/// patching maintains it. Expected: exactly X002, an error, anchored at
/// the EXCEPT keyword.
#[test]
fn figure_3b_materialized_difference() {
    let db = figure1_db();
    let sql = "SELECT uid FROM pol EXCEPT SELECT uid FROM el";
    let r = db.lint(sql).unwrap();
    assert_eq!(r.codes(), vec![Code::X002]);
    let d = &r.diagnostics[0];
    assert_eq!(d.severity, Severity::Error);
    assert_eq!((d.span.start, d.span.end), (20, 26));
    assert_eq!(&sql[d.span.start..d.span.end], "EXCEPT");
    assert!(
        d.suggestion.as_deref().unwrap().contains("Theorem 3"),
        "{:?}",
        d.suggestion
    );
    // With the Theorem 3 patch queue enabled, the hazard is gone.
    let mut config = DbConfig::default();
    config.eval.patch_root_difference = true;
    let mut db = Database::new(config);
    db.execute_script(
        "CREATE TABLE pol (uid INT, deg INT);
         CREATE TABLE el (uid INT, deg INT);",
    )
    .unwrap();
    assert!(db.lint(sql).unwrap().is_clean());
}

/// Both anomalies stacked: aggregate over a difference. Every code keeps
/// its anchor, and the rendered output carries carets into the source.
#[test]
fn stacked_anomalies_render_with_carets() {
    let db = figure1_db();
    let sql = "SELECT deg, COUNT(*) FROM pol GROUP BY deg EXCEPT SELECT uid, deg FROM el";
    let r = db.lint(sql).unwrap();
    assert_eq!(r.codes(), vec![Code::X002, Code::X001, Code::X003]);
    let rendered = db.explain_lint(sql).unwrap();
    assert!(rendered.contains("X002 [error] at 1:44"), "{rendered}");
    // Caret run under EXCEPT: 43 spaces of padding, 6 carets.
    assert!(
        rendered.contains(&format!("  {}{}\n", " ".repeat(43), "^".repeat(6))),
        "{rendered}"
    );
    assert!(rendered.contains("1 error(s), 2 warning(s)"), "{rendered}");
}

/// W101 golden rendering: the operational SLO check is a dummy-span
/// diagnostic, so it renders without an excerpt — code, severity,
/// message, suggestion, nothing else.
#[test]
fn w101_golden_rendering() {
    let mut config = DbConfig::default();
    config.slo.max_trigger_lateness = 100;
    let mut db = Database::new(config);
    db.execute_script(
        "CREATE TABLE pol (uid INT, deg INT);
         INSERT INTO pol VALUES (1, 25) EXPIRES AT 10;
         INSERT INTO pol VALUES (2, 25) EXPIRES AT 20;",
    )
    .unwrap();
    let sql = "CREATE MATERIALIZED VIEW soon AS SELECT deg, COUNT(*) FROM pol GROUP BY deg";
    db.execute(sql).unwrap();
    let report = db.view_diagnostics("soon").unwrap();
    assert!(report.codes().contains(&Code::W101), "{:?}", report.codes());
    let rendered = exptime::lint::render(&report, sql);
    assert!(
        rendered.contains(
            "W101 [warning]: view refresh falls due in 10 tick(s), within the SLO's \
             tolerated trigger lateness of 100; a legally late trigger misses the \
             refresh window\n  = suggestion: tighten SloConfig::max_trigger_lateness, \
             switch to eager removal, or give the view's inputs longer expiration times\n"
        ),
        "{rendered}"
    );
    // Dummy spans never draw an excerpt/caret block: the W101 block runs
    // straight from message to suggestion to the next diagnostic.
    let block = rendered
        .split("W101")
        .nth(1)
        .unwrap()
        .split("X001")
        .next()
        .unwrap();
    assert!(!block.contains('^'), "{rendered}");
}

/// W102 golden rendering: a sliding-TTL base under a materialised view.
/// The view definition itself is monotone, so W102 is the *only*
/// diagnostic and the full rendered report is pinned exactly.
#[test]
fn w102_golden_rendering() {
    let mut db = Database::new(DbConfig::default());
    db.execute("CREATE TABLE s (k INT) TTL 30 SLIDING ON ACCESS")
        .unwrap();
    let sql = "CREATE MATERIALIZED VIEW mv AS SELECT k FROM s";
    db.execute(sql).unwrap();
    let report = db.view_diagnostics("mv").unwrap();
    assert_eq!(report.codes(), vec![Code::W102]);
    let rendered = exptime::lint::render(&report, sql);
    assert_eq!(
        rendered,
        "W102 [warning]: materialised view `mv` reads `s`, whose TTL policy slides: \
         every touch rewrites a base `texp`, so the monotone-expiration assumption \
         behind Theorems 1–3 no longer holds and each touched read forces a view \
         refresh\n  = suggestion: make `s`'s TTL absolute, or use a virtual \
         (non-materialised) view\n0 error(s), 1 warning(s)\n"
    );
}

/// The analyzer runs automatically at CREATE MATERIALIZED VIEW and the
/// diagnostics stay queryable from the catalog.
#[test]
fn create_materialized_view_records_the_golden_codes() {
    let mut db = figure1_db();
    db.execute("CREATE MATERIALIZED VIEW danger AS SELECT uid FROM pol EXCEPT SELECT uid FROM el")
        .unwrap();
    assert_eq!(
        db.view_diagnostics("danger").unwrap().codes(),
        vec![Code::X002]
    );
    db.execute("CREATE MATERIALIZED VIEW fine AS SELECT uid FROM pol WHERE deg >= 25")
        .unwrap();
    assert!(db.view_diagnostics("fine").unwrap().is_clean());
    assert_eq!(db.metrics().counter_value("lint.diagnostics"), 1);
}
