//! Dump → restore round-trip property: for a randomly generated
//! database — odd-but-legal identifiers, every value type, tricky
//! string literals, finite and infinite expiration times, plain and
//! materialised views, an advanced logical clock —
//! `Database::restore(db.dump_sql())` reproduces the logical clock
//! exactly and a database that answers every query identically forever
//! after, and the dump itself is a fixpoint of the round trip.

use exptime::core::time::Time;
use exptime::core::tuple;
use exptime::core::value::Value;
use exptime::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Identifiers the lexer accepts but that exercise its edges: leading
/// and doubled underscores, mixed case (preserved through the round
/// trip), digits, and keyword prefixes that must still lex as plain
/// identifiers.
fn odd_name(kind: &str, i: usize, flavor: u64) -> String {
    match flavor % 6 {
        0 => format!("_{kind}{i}"),
        1 => format!("{kind}{i}__x"),
        2 => format!("MiXeD_{kind}_{i}"),
        3 => format!("select_{kind}{i}"),
        4 => format!("where_{kind}_{i}"),
        _ => format!("__{kind}{i}"),
    }
}

/// String payloads that stress literal escaping in the dump.
const TRICKY: &[&str] = &[
    "it's",
    "",
    "two  spaces",
    "quote '' already doubled",
    "ünïcödé ∞",
    "a'b''c'",
    "-- not a comment",
    "EXPIRES AT 5",
];

struct Built {
    db: Database,
    tables: Vec<String>,
    views: Vec<String>,
}

/// Builds a database worth dumping from one seed: 2–4 tables with odd
/// names and mixed column types, 0–12 rows each (some `EXPIRES NEVER`),
/// one plain and one materialised SQL view, and a partially advanced
/// clock so some rows have already expired by dump time.
fn build(seed: u64) -> Built {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::default();
    let mut tables = Vec::new();

    let n_tables = rng.gen_range(2..5usize);
    for ti in 0..n_tables {
        let name = odd_name("t", ti, rng.gen_range(0..6u64));
        let mut cols = vec![format!("{} INT", odd_name("k", 0, rng.gen_range(0..6u64)))];
        let extra = rng.gen_range(0..3usize);
        for ci in 0..extra {
            let ty = ["INT", "FLOAT", "TEXT", "BOOL"][rng.gen_range(0..4usize)];
            cols.push(format!(
                "{} {ty}",
                odd_name("c", ci + 1, rng.gen_range(0..6u64))
            ));
        }
        db.execute(&format!("CREATE TABLE {name} ({})", cols.join(", ")))
            .unwrap();

        let n_rows = rng.gen_range(0..13usize);
        for r in 0..n_rows {
            let mut t = tuple![r as i64];
            for col in &cols[1..] {
                let v = match col.rsplit(' ').next().unwrap() {
                    "INT" => Value::from(rng.gen_range(-50i64..50)),
                    "FLOAT" => Value::from(f64::from(rng.gen_range(-200i32..200)) / 8.0),
                    "TEXT" => Value::from(TRICKY[rng.gen_range(0..TRICKY.len())]),
                    _ => Value::from(rng.gen_bool(0.5)),
                };
                t = t.append(v);
            }
            let texp = if rng.gen_bool(0.2) {
                Time::INFINITY
            } else {
                Time::new(rng.gen_range(1..40u64))
            };
            db.insert(&name, t, texp).unwrap();
        }
        tables.push(name);
    }

    // One virtual and one materialised view over random tables; their
    // SQL definitions must survive the dump.
    let mut views = Vec::new();
    let vt = &tables[rng.gen_range(0..tables.len())];
    db.execute(&format!("CREATE VIEW v_plain AS SELECT * FROM {vt}"))
        .unwrap();
    views.push("v_plain".to_string());
    let mt = &tables[rng.gen_range(0..tables.len())];
    db.execute(&format!(
        "CREATE MATERIALIZED VIEW V__mat AS SELECT * FROM {mt}"
    ))
    .unwrap();
    views.push("V__mat".to_string());

    // Let some rows expire before the dump: the dump must contain only
    // what is semantically present.
    db.tick(rng.gen_range(0..20u64));
    Built { db, tables, views }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dump_restore_reproduces_the_database_exactly(seed in 0u64..1_000_000) {
        let Built { mut db, tables, views } = build(seed);
        let dump = db.dump_sql();
        let restored = Database::restore(&dump);
        prop_assert!(restored.is_ok(), "[seed {seed}] restore failed: {:?}\ndump:\n{dump}", restored.err());
        let mut restored = restored.unwrap();

        // Logical clock restored exactly.
        prop_assert_eq!(restored.now(), db.now(), "clock diverged (seed {})", seed);

        // The dump is a fixpoint: dumping the restored database gives
        // byte-identical SQL (tables, rows, texps, views, clock).
        prop_assert_eq!(
            restored.dump_sql(),
            dump.clone(),
            "dump ∘ restore not a fixpoint (seed {})",
            seed
        );

        // Every table and view answers identically on both databases,
        // now and at every later instant (expirations continue in
        // lockstep because the texps and the clock are exact).
        for delta in [0u64, 1, 5, 13, 40] {
            if delta > 0 {
                db.tick(delta);
                restored.tick(delta);
            }
            for t in &tables {
                let q = format!("SELECT * FROM {t}");
                let a = db.execute(&q).unwrap().rows().unwrap().clone();
                let b = restored.execute(&q).unwrap().rows().unwrap().clone();
                prop_assert!(
                    a.set_eq(&b),
                    "[seed {}] `{}` diverged after +{}:\n{:?}\nvs {:?}\ndump:\n{}",
                    seed, q, delta, a, b, dump
                );
            }
            for v in &views {
                let a = db.read_view(v).unwrap();
                let b = restored.read_view(v).unwrap();
                prop_assert!(
                    a.set_eq(&b),
                    "[seed {}] view `{}` diverged after +{}",
                    seed, v, delta
                );
            }
        }
    }
}
