//! Dump → restore round-trip property: for a randomly generated
//! database — odd-but-legal identifiers, every value type, tricky
//! string literals, finite and infinite expiration times, plain and
//! materialised views, an advanced logical clock —
//! `Database::restore(db.dump_sql())` reproduces the logical clock
//! exactly and a database that answers every query identically forever
//! after, and the dump itself is a fixpoint of the round trip.

use exptime::core::time::Time;
use exptime::core::tuple;
use exptime::core::value::Value;
use exptime::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Identifiers the lexer accepts but that exercise its edges: leading
/// and doubled underscores, mixed case (preserved through the round
/// trip), digits, and keyword prefixes that must still lex as plain
/// identifiers.
fn odd_name(kind: &str, i: usize, flavor: u64) -> String {
    match flavor % 6 {
        0 => format!("_{kind}{i}"),
        1 => format!("{kind}{i}__x"),
        2 => format!("MiXeD_{kind}_{i}"),
        3 => format!("select_{kind}{i}"),
        4 => format!("where_{kind}_{i}"),
        _ => format!("__{kind}{i}"),
    }
}

/// String payloads that stress literal escaping in the dump.
const TRICKY: &[&str] = &[
    "it's",
    "",
    "two  spaces",
    "quote '' already doubled",
    "ünïcödé ∞",
    "a'b''c'",
    "-- not a comment",
    "EXPIRES AT 5",
];

struct Built {
    db: Database,
    tables: Vec<String>,
    views: Vec<String>,
}

/// Builds a database worth dumping from one seed: 2–4 tables with odd
/// names and mixed column types, 0–12 rows each (some `EXPIRES NEVER`),
/// one plain and one materialised SQL view, and a partially advanced
/// clock so some rows have already expired by dump time.
fn build(seed: u64) -> Built {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::default();
    let mut tables = Vec::new();

    let n_tables = rng.gen_range(2..5usize);
    for ti in 0..n_tables {
        let name = odd_name("t", ti, rng.gen_range(0..6u64));
        let mut cols = vec![format!("{} INT", odd_name("k", 0, rng.gen_range(0..6u64)))];
        let extra = rng.gen_range(0..3usize);
        for ci in 0..extra {
            let ty = ["INT", "FLOAT", "TEXT", "BOOL"][rng.gen_range(0..4usize)];
            cols.push(format!(
                "{} {ty}",
                odd_name("c", ci + 1, rng.gen_range(0..6u64))
            ));
        }
        db.execute(&format!("CREATE TABLE {name} ({})", cols.join(", ")))
            .unwrap();

        let n_rows = rng.gen_range(0..13usize);
        for r in 0..n_rows {
            let mut t = tuple![r as i64];
            for col in &cols[1..] {
                let v = match col.rsplit(' ').next().unwrap() {
                    "INT" => Value::from(rng.gen_range(-50i64..50)),
                    "FLOAT" => Value::from(f64::from(rng.gen_range(-200i32..200)) / 8.0),
                    "TEXT" => Value::from(TRICKY[rng.gen_range(0..TRICKY.len())]),
                    _ => Value::from(rng.gen_bool(0.5)),
                };
                t = t.append(v);
            }
            let texp = if rng.gen_bool(0.2) {
                Time::INFINITY
            } else {
                Time::new(rng.gen_range(1..40u64))
            };
            db.insert(&name, t, texp).unwrap();
        }
        tables.push(name);
    }

    // One virtual and one materialised view over random tables; their
    // SQL definitions must survive the dump.
    let mut views = Vec::new();
    let vt = &tables[rng.gen_range(0..tables.len())];
    db.execute(&format!("CREATE VIEW v_plain AS SELECT * FROM {vt}"))
        .unwrap();
    views.push("v_plain".to_string());
    let mt = &tables[rng.gen_range(0..tables.len())];
    db.execute(&format!(
        "CREATE MATERIALIZED VIEW V__mat AS SELECT * FROM {mt}"
    ))
    .unwrap();
    views.push("V__mat".to_string());

    // Let some rows expire before the dump: the dump must contain only
    // what is semantically present.
    db.tick(rng.gen_range(0..20u64));
    Built { db, tables, views }
}

/// A random WAL record exercising the encoder's edges: `texp = ∞`,
/// multi-byte UTF-8 in table names, SQL and string values, zero-length
/// strings and zero-column tuples, and extreme numeric values.
fn wal_record(seed: u64) -> exptime::wal::WalRecord {
    use exptime::wal::WalRecord;
    let mut rng = StdRng::seed_from_u64(seed);
    let strs = ["", "x", "ünïcödé ∞", "it's", "🦀🦀", "a\nb\tc", "'); --"];
    let s = |rng: &mut StdRng| strs[rng.gen_range(0..strs.len())].to_string();
    let time = |rng: &mut StdRng| match rng.gen_range(0..4u32) {
        0 => Time::INFINITY,
        1 => Time::ZERO,
        2 => Time::MAX_FINITE,
        _ => Time::new(rng.gen_range(0..1_000_000u64)),
    };
    let values = |rng: &mut StdRng| {
        let n = rng.gen_range(0..5usize);
        (0..n)
            .map(|_| match rng.gen_range(0..5u32) {
                0 => Value::from(rng.gen_range(i64::MIN..i64::MAX)),
                1 => Value::from(f64::from_bits(0x7FF0_0000_0000_0000)), // +inf
                2 => Value::from(-0.0f64),
                3 => Value::from(rng.gen_bool(0.5)),
                _ => Value::from(strs[rng.gen_range(0..strs.len())]),
            })
            .collect::<Vec<_>>()
    };
    match rng.gen_range(0..7u32) {
        0 => WalRecord::TxnBegin { txn: rng.gen() },
        1 => WalRecord::TxnCommit { txn: u64::MAX },
        2 => WalRecord::Insert {
            txn: rng.gen(),
            table: s(&mut rng),
            values: values(&mut rng),
            texp: time(&mut rng),
        },
        3 => WalRecord::Delete {
            txn: rng.gen(),
            table: s(&mut rng),
            values: values(&mut rng),
        },
        4 => WalRecord::UpdateTexp {
            txn: rng.gen(),
            table: s(&mut rng),
            values: values(&mut rng),
            texp: time(&mut rng),
        },
        5 => WalRecord::ClockAdvance { to: rng.gen() },
        _ => WalRecord::Ddl { sql: s(&mut rng) },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// WAL frames round-trip exactly — including `texp = ∞`, multi-byte
    /// UTF-8, and zero-length payloads — and every strict prefix of a
    /// frame is rejected rather than misread (the torn-tail guarantee
    /// crash recovery is built on).
    #[test]
    fn wal_record_frame_roundtrip(seed in 0u64..1_000_000) {
        use exptime::wal::{decode_frame, encode_frame};
        let record = wal_record(seed);
        let frame = encode_frame(&record);
        let (decoded, used) = decode_frame(&frame)
            .unwrap_or_else(|e| panic!("[seed {seed}] decode failed: {e:?}\n{record:?}"));
        prop_assert_eq!(&decoded, &record, "round trip diverged (seed {})", seed);
        prop_assert_eq!(used, frame.len(), "frame length miscounted (seed {})", seed);
        // A frame followed by more log bytes decodes to the same record.
        let mut log = frame.clone();
        log.extend_from_slice(&encode_frame(&wal_record(seed ^ 1)));
        let (first, used2) = decode_frame(&log).unwrap();
        prop_assert_eq!(&first, &record);
        prop_assert_eq!(used2, frame.len());
        // No strict prefix may decode: torn writes are always detected.
        for cut in 0..frame.len() {
            prop_assert!(
                decode_frame(&frame[..cut]).is_err(),
                "[seed {}] prefix of {} / {} bytes decoded",
                seed, cut, frame.len()
            );
        }
    }

    /// Restoring tolerates human-edited headers: blank lines and extra
    /// `--` comments before the `-- exptime dump at t=N` line.
    #[test]
    fn restore_tolerates_leading_noise(seed in 0u64..1_000_000, noise in 0usize..4) {
        let Built { mut db, tables, .. } = build(seed);
        let mut dump = String::new();
        for i in 0..noise {
            dump.push_str(["\n", "  \n", "-- edited by hand\n", "\t\n"][i % 4]);
        }
        dump.push_str(&db.dump_sql());
        let restored = Database::restore(&dump);
        prop_assert!(restored.is_ok(), "[seed {seed}] restore failed: {:?}", restored.err());
        let mut restored = restored.unwrap();
        prop_assert_eq!(restored.now(), db.now());
        for t in &tables {
            let q = format!("SELECT * FROM {t}");
            let a = db.execute(&q).unwrap().rows().unwrap().clone();
            let b = restored.execute(&q).unwrap().rows().unwrap().clone();
            prop_assert!(a.set_eq(&b), "[seed {}] `{}` diverged", seed, q);
        }
    }

    #[test]
    fn dump_restore_reproduces_the_database_exactly(seed in 0u64..1_000_000) {
        let Built { mut db, tables, views } = build(seed);
        let dump = db.dump_sql();
        let restored = Database::restore(&dump);
        prop_assert!(restored.is_ok(), "[seed {seed}] restore failed: {:?}\ndump:\n{dump}", restored.err());
        let mut restored = restored.unwrap();

        // Logical clock restored exactly.
        prop_assert_eq!(restored.now(), db.now(), "clock diverged (seed {})", seed);

        // The dump is a fixpoint: dumping the restored database gives
        // byte-identical SQL (tables, rows, texps, views, clock).
        prop_assert_eq!(
            restored.dump_sql(),
            dump.clone(),
            "dump ∘ restore not a fixpoint (seed {})",
            seed
        );

        // Every table and view answers identically on both databases,
        // now and at every later instant (expirations continue in
        // lockstep because the texps and the clock are exact).
        for delta in [0u64, 1, 5, 13, 40] {
            if delta > 0 {
                db.tick(delta);
                restored.tick(delta);
            }
            for t in &tables {
                let q = format!("SELECT * FROM {t}");
                let a = db.execute(&q).unwrap().rows().unwrap().clone();
                let b = restored.execute(&q).unwrap().rows().unwrap().clone();
                prop_assert!(
                    a.set_eq(&b),
                    "[seed {}] `{}` diverged after +{}:\n{:?}\nvs {:?}\ndump:\n{}",
                    seed, q, delta, a, b, dump
                );
            }
            for v in &views {
                let a = db.read_view(v).unwrap();
                let b = restored.read_view(v).unwrap();
                prop_assert!(
                    a.set_eq(&b),
                    "[seed {}] view `{}` diverged after +{}",
                    seed, v, delta
                );
            }
        }
    }
}
