//! Emulating sliding-window stream queries with expiration times.
//!
//! ```sh
//! cargo run --example stream_window
//! ```
//!
//! The paper's related-work section observes that "automatic data
//! invalidation is implicit in sliding window-based processing of data
//! streams": a CQL-style window `RANGE W` over a stream is exactly a
//! relation whose tuples are inserted with `EXPIRES IN W TICKS`. This
//! example runs a click-stream with a 10-tick window, maintains a
//! per-page count view over it, and checks the window semantics against
//! an explicit reference computation. The conceptual difference the paper
//! draws stays visible: here the *source* assigns each tuple's validity
//! (tuples could carry different TTLs), whereas a stream window is one
//! size chosen by the *querying user*.

use exptime::prelude::*;
use std::collections::VecDeque;

const WINDOW: u64 = 10;

fn main() -> DbResult<()> {
    let mut db = Database::new(DbConfig::default());
    db.execute("CREATE TABLE clicks (page INT, user INT)")?;
    db.execute(
        "CREATE MATERIALIZED VIEW page_counts AS
         SELECT page, COUNT(*) FROM clicks GROUP BY page",
    )?;

    // A deterministic pseudo-stream of (tick, page, user) click events.
    let stream: Vec<(u64, i64, i64)> = (0..120)
        .map(|i| {
            let t = i as u64 / 3; // ~3 clicks per tick
            let page = (i * 7 % 5) as i64;
            let user = (i * 13 % 23) as i64;
            (t, page, user)
        })
        .collect();

    // Reference: an explicit sliding window (what a stream system keeps).
    let mut reference: VecDeque<(u64, i64, i64)> = VecDeque::new();
    let mut checked = 0;

    println!("click stream, RANGE {WINDOW} TICKS window, COUNT(*) per page:\n");
    for (t, page, user) in stream {
        if Time::new(t) > db.now() {
            db.advance_to(Time::new(t));
        }
        // "Insert into the window" = insert with the window as TTL.
        db.insert_ttl("clicks", tuple![page, user], WINDOW)?;
        reference.push_back((t, page, user));

        // Both systems agree at every instant.
        let now = db.now().finite().unwrap();
        while reference
            .front()
            .is_some_and(|&(at, _, _)| at + WINDOW <= now)
        {
            reference.pop_front();
        }
        let in_window = db.execute("SELECT * FROM clicks")?.rows().unwrap().len();
        // The TTL relation is a set; the reference is a bag — distinct
        // (page, user) pairs are what the relation holds.
        let distinct: std::collections::HashSet<(i64, i64)> =
            reference.iter().map(|&(_, p, u)| (p, u)).collect();
        assert_eq!(in_window, distinct.len(), "window mismatch at t={now}");
        checked += 1;

        if t % 10 == 0 && page == 0 {
            let counts = db.read_view("page_counts")?;
            let mut cells: Vec<String> = counts
                .iter()
                .map(|(r, _)| format!("page {} × {}", r.attr(0), r.attr(1)))
                .collect();
            cells.sort();
            println!("t={t:>3}: {}", cells.join(", "));
        }
    }

    // The stream stops; the window drains by itself — no tear-down logic.
    db.tick(WINDOW);
    assert!(db
        .execute("SELECT * FROM clicks")?
        .rows()
        .unwrap()
        .is_empty());
    println!(
        "\nstream ended; window drained itself {WINDOW} ticks later \
         (checked {checked} instants against the reference window)"
    );
    println!(
        "expired automatically: {} tuples, DELETEs written: 0",
        db.stats().expired
    );
    Ok(())
}
