//! Loosely-coupled synchronisation — the paper's Web-Services/mobile
//! motivation, measured.
//!
//! ```sh
//! cargo run --example cache_sync
//! ```
//!
//! A mobile client holds two materialised views over a server database
//! and keeps reading them while the network link flaps. Expiration-aware
//! views maintain themselves locally; the example counts every message
//! and compares against delete-push and polling baselines.

use exptime::core::algebra::Expr;
use exptime::core::materialize::RefreshPolicy;
use exptime::prelude::*;
use exptime::replica::{DeletePushReplica, PollingReplica};

fn build_server() -> DbResult<Database> {
    let mut db = Database::new(DbConfig::default());
    db.execute("CREATE TABLE offers    (item INT, price INT)")?;
    db.execute("CREATE TABLE reserved  (item INT, price INT)")?;
    // 60 offers, staggered lifetimes; a third get reserved for a while.
    for i in 0..60i64 {
        db.insert_ttl("offers", tuple![i, 100 + i], 40 + (i as u64 % 60))?;
        if i % 3 == 0 {
            db.insert_ttl("reserved", tuple![i, 100 + i], 10 + (i as u64 % 20))?;
        }
    }
    Ok(db)
}

fn main() -> DbResult<()> {
    // The client's views: all open offers (monotonic) and offers available
    // for purchase = offers − reserved (non-monotonic: reservations
    // expiring *add* tuples).
    let offers = Expr::base("offers");
    let available = Expr::base("offers").difference(Expr::base("reserved"));

    // ---- expiration-aware replica, with Theorem 3 patching ------------
    let mut srv = build_server()?;
    let mut client = Replica::new(RefreshPolicy::Patch);
    client.subscribe("offers", offers.clone(), &srv)?;
    client.subscribe("available", available.clone(), &srv)?;

    let mut stale_reads = 0;
    for round in 1..=50u64 {
        srv.tick(2);
        // The link is down for rounds 20–30 (a tunnel, say).
        if round == 20 {
            client.link().disconnect();
            println!("t={:>3}: link DOWN", srv.now());
        }
        if round == 30 {
            client.link().reconnect();
            println!("t={:>3}: link UP", srv.now());
        }
        let (offers_now, _) = client.read("offers", &srv)?;
        let (avail_now, outcome) = client.read("available", &srv)?;
        if matches!(outcome, ReadOutcome::Stale(_)) {
            stale_reads += 1;
        }
        if round % 10 == 0 {
            println!(
                "t={:>3}: {} open offers, {} available ({outcome:?})",
                srv.now(),
                offers_now.len(),
                avail_now.len()
            );
        }
    }
    let aware = client.link_stats();
    println!(
        "\nexpiration-aware client: {} messages, {} tuples moved, {} stale reads during outage",
        aware.total_messages(),
        aware.tuples_transferred,
        stale_reads
    );

    // ---- baseline 1: server pushes per-tuple change notices -----------
    let mut srv = build_server()?;
    let mut push_offers = DeletePushReplica::subscribe(offers.clone(), &srv)?;
    let mut push_avail = DeletePushReplica::subscribe(available.clone(), &srv)?;
    for _ in 1..=50u64 {
        srv.tick(2);
        push_offers.server_sync(&srv)?;
        push_avail.server_sync(&srv)?;
    }
    let push_total =
        push_offers.link_stats().total_messages() + push_avail.link_stats().total_messages();
    println!("delete-push baseline:    {push_total} messages");

    // ---- baseline 2: client polls on every read -----------------------
    let mut srv = build_server()?;
    let mut poll_offers = PollingReplica::new(offers, &srv);
    let mut poll_avail = PollingReplica::new(available, &srv);
    for _ in 1..=50u64 {
        srv.tick(2);
        poll_offers.read(&srv)?;
        poll_avail.read(&srv)?;
    }
    let poll_total =
        poll_offers.link_stats().total_messages() + poll_avail.link_stats().total_messages();
    println!("polling baseline:        {poll_total} messages");

    println!(
        "\nreduction vs polling: {:.0}×; vs delete-push: {:.0}×",
        poll_total as f64 / aware.total_messages() as f64,
        push_total as f64 / aware.total_messages() as f64
    );
    assert!(aware.total_messages() < push_total);
    assert!(push_total < poll_total);
    Ok(())
}
