//! Automatic HTTP session management — one of the paper's headline
//! applications ("automatic session management in HTTP servers,
//! short-lived credentials and keys").
//!
//! ```sh
//! cargo run --example session_store
//! ```
//!
//! The sessions table *declares* its expiration behaviour: `TTL 30
//! SLIDING ON ACCESS`. Logins are plain `INSERT`s with no times attached;
//! every ordinary read of a session re-arms it; a `MaxLifetime`
//! constraint enforces a hard cap on credential lifetimes; a logout
//! trigger fires the moment a session dies. The application neither
//! deletes anything nor computes a single expiration time.

use exptime::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const SESSION_TTL: u64 = 30;
const HARD_CAP: u64 = 120;

fn main() -> DbResult<()> {
    let mut db = Database::new(DbConfig::default());
    // The TTL policy lives in the schema: activity is tracked by the
    // engine, not by hand-maintained `UPDATE … SET EXPIRES` bookkeeping.
    db.execute(&format!(
        "CREATE TABLE sessions (sid INT, uid INT) TTL {SESSION_TTL} SLIDING ON ACCESS"
    ))?;
    db.execute(&format!(
        "CREATE TABLE audit (sid INT, uid INT) TTL {HARD_CAP}"
    ))?;

    // Security policy: no credential may be minted with a lifetime beyond
    // the hard cap — not even "never expires".
    db.add_constraint(
        "sessions",
        Constraint::MaxLifetime {
            name: "session_hard_cap".into(),
            ticks: HARD_CAP,
        },
    )?;

    let logouts = Arc::new(AtomicU64::new(0));
    let n = logouts.clone();
    db.on_expire(
        "sessions",
        "on_logout",
        Box::new(move |event| {
            n.fetch_add(1, Ordering::SeqCst);
            // A real server would clear caches / notify presence here.
            let _ = event;
        }),
    );

    // Login burst: 8 users, one session each. No EXPIRES anywhere — the
    // table's policy supplies `now + 30` for both tables.
    for uid in 0..8i64 {
        let sid = 100 + uid;
        db.execute(&format!("INSERT INTO sessions VALUES ({sid}, {uid})"))?;
        db.execute(&format!("INSERT INTO audit VALUES ({sid}, {uid})"))?;
    }
    println!(
        "time {}: {} active sessions",
        db.now(),
        db.execute("SELECT * FROM sessions")?.rows().unwrap().len()
    );
    for status in db.policy_status() {
        println!("  {}: {}", status.table, status.policy);
    }

    // The ops dashboard: sessions per user (aggregation) and "audited but
    // no longer active" (difference) — both maintained as views. (The
    // lint warns W102 here: a materialised view over a sliding base
    // refreshes on every touch.)
    db.execute(
        "CREATE MATERIALIZED VIEW per_user AS
         SELECT uid, COUNT(*) FROM sessions GROUP BY uid",
    )?;
    db.execute(
        "CREATE MATERIALIZED VIEW logged_out AS
         SELECT sid FROM audit EXCEPT SELECT sid FROM sessions",
    )?;

    // Simulated traffic: users 0–3 stay active — their ordinary reads ARE
    // the renewals (sliding on access); users 4–7 go idle and drain out.
    for _ in 0..6 {
        db.tick(10);
        for uid in 0..4i64 {
            let sid = 100 + uid;
            db.execute(&format!("SELECT * FROM sessions WHERE sid = {sid}"))?;
        }
    }

    println!(
        "time {}: {} active sessions (idle ones logged out automatically)",
        db.now(),
        db.execute("SELECT * FROM sessions")?.rows().unwrap().len()
    );
    println!(
        "  logout trigger fired {} times",
        logouts.load(Ordering::SeqCst)
    );
    println!(
        "  sliding touches recorded by the engine: {}",
        db.metrics().counter("policy.sliding_touches").get()
    );

    let per_user = db.read_view("per_user")?;
    println!("  users with a live session: {}", per_user.len());

    let gone = db.read_view("logged_out")?;
    println!("  audited-but-inactive sids: {}", gone.len());
    for (row, _) in gone.iter() {
        print!("    sid {}", row.attr(0));
    }
    println!();

    // The hard cap wins even for very active users: a renewal that would
    // exceed it is rejected by the constraint.
    let too_long = db.insert("sessions", tuple![999i64, 999i64], Time::INFINITY);
    println!(
        "\nminting an immortal credential: {}",
        match &too_long {
            Err(e) => format!("rejected — {e}"),
            Ok(()) => "accepted (BUG)".into(),
        }
    );
    assert!(too_long.is_err());

    // Sliding renewals keep sessions alive only as long as traffic lasts;
    // once it stops, everything drains with no cleanup job.
    db.tick(SESSION_TTL + 1);
    assert!(db
        .execute("SELECT * FROM sessions")?
        .rows()
        .unwrap()
        .is_empty());
    println!(
        "time {}: all sessions gone; total automatic expirations: {}",
        db.now(),
        db.stats().expired
    );
    println!(
        "  per_user view recomputations: {} (W102: every sliding touch dirties it)",
        db.view_stats("per_user")?.recomputations
    );
    Ok(())
}
