//! Quickstart: the paper's running example, end to end, in five minutes.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Builds the Figure 1 database through SQL, shows tuples expiring
//! transparently out of queries (Figure 2), a materialised view
//! maintaining itself with zero recomputation (Theorem 1), and a
//! non-monotonic query going invalid exactly when the paper says it does
//! (Figure 3).

use exptime::prelude::*;

fn show(db: &mut Database, title: &str, sql: &str) {
    let rows = db
        .execute(sql)
        .expect("query")
        .rows()
        .expect("is a query")
        .clone();
    println!("  {title}");
    if rows.is_empty() {
        println!("      ∅");
    }
    for (tuple, texp) in rows.iter() {
        println!("      {tuple}  (expires at {texp})");
    }
}

fn main() -> DbResult<()> {
    let mut db = Database::new(DbConfig::default());

    // --- Figure 1: user profiles with expiration times -----------------
    // Expiration times appear ONLY here, on insertion. Queries below never
    // mention them.
    db.execute_script(
        "CREATE TABLE pol (uid INT, deg INT);
         CREATE TABLE el  (uid INT, deg INT);
         INSERT INTO pol VALUES (1, 25) EXPIRES AT 10;
         INSERT INTO pol VALUES (2, 25) EXPIRES AT 15;
         INSERT INTO pol VALUES (3, 35) EXPIRES AT 10;
         INSERT INTO el  VALUES (1, 75) EXPIRES AT 5;
         INSERT INTO el  VALUES (2, 85) EXPIRES AT 3;
         INSERT INTO el  VALUES (4, 90) EXPIRES AT 2;",
    )?;
    println!("time 0 — the Figure 1 database:");
    show(&mut db, "politics profiles:", "SELECT * FROM pol");
    show(&mut db, "election profiles:", "SELECT * FROM el");

    // --- A materialised view that never needs the base data ------------
    db.execute("CREATE MATERIALIZED VIEW politics_fans AS SELECT uid FROM pol WHERE deg = 25")?;

    // --- Figure 2: queries as time passes ------------------------------
    let join = "SELECT * FROM pol JOIN el ON pol.uid = el.uid";
    show(&mut db, "join at time 0 (Figure 2e):", join);

    db.tick(3);
    println!("\ntime 3:");
    show(&mut db, "join (Figure 2f) — ⟨2,25,2,85⟩ expired:", join);

    db.tick(2);
    println!("\ntime 5:");
    show(
        &mut db,
        "join (Figure 2g) — empty, nobody expired it by hand:",
        join,
    );

    // --- Figure 3: a non-monotonic query -------------------------------
    let hist = "SELECT deg, COUNT(*) FROM pol GROUP BY deg";
    show(&mut db, "interest histogram (Figure 3a):", hist);
    db.tick(5);
    println!("\ntime 10:");
    show(
        &mut db,
        "histogram recomputed — ⟨25,1⟩ as the paper requires:",
        hist,
    );

    // --- Theorem 1 in action -------------------------------------------
    let fans = db.read_view("politics_fans")?;
    println!(
        "\nmaterialised view `politics_fans` at time 10: {} row(s)",
        fans.len()
    );
    let stats = db.view_stats("politics_fans")?;
    println!(
        "  maintained with {} recomputations over {} reads (Theorem 1: monotonic ⇒ zero)",
        stats.recomputations, stats.reads
    );
    assert_eq!(stats.recomputations, 0);

    // --- Everything ends ------------------------------------------------
    db.tick(10);
    println!("\ntime 20:");
    show(
        &mut db,
        "politics profiles — all expired, zero DELETEs issued:",
        "SELECT * FROM pol",
    );
    println!(
        "\nengine stats: {} inserts, {} expired automatically, {} explicit deletes",
        db.stats().inserts,
        db.stats().expired,
        db.stats().deletes
    );
    Ok(())
}
