//! Monitoring data with bounded validity — the paper's "temperature or
//! location samples" motivation, plus a demonstration of how the three
//! aggregate expiration modes differ on live data.
//!
//! ```sh
//! cargo run --example sensor_monitor
//! ```
//!
//! Each sensor reading is valid for a fixed window, declared once on the
//! table (`TTL 20`) — the feed loop attaches no times at all. Dashboards
//! want per-zone minima; the naive rule (Eq. 8) expires a dashboard row as
//! soon as *any* reading in the zone lapses, while the contributing-set
//! rule (Table 1) and the exact ν rule (Eq. 9) keep it alive for as long
//! as the minimum is actually pinned.

use exptime::core::aggregate::{self, AggFunc, AggMode};
use exptime::prelude::*;

const READING_VALIDITY: u64 = 20;

fn main() -> DbResult<()> {
    let mut db = Database::new(DbConfig::default());
    // The validity window is table policy, not per-insert arithmetic.
    db.execute(&format!(
        "CREATE TABLE readings (zone INT, temp INT) TTL {READING_VALIDITY}"
    ))?;

    // Zone 1: the minimum (18°) arrives late, so it outlives the others.
    // Zone 2: all readings agree.
    let feed: &[(u64, i64, i64)] = &[
        (0, 1, 21),
        (2, 1, 24),
        (5, 1, 18), // the minimum — valid until 25
        (1, 2, 30),
        (3, 2, 30),
    ];
    for &(at, zone, temp) in feed {
        if Time::new(at) > db.now() {
            db.advance_to(Time::new(at));
        }
        db.insert_default("readings", tuple![zone, temp])?;
    }

    // Compare the three expiration-time assignments for min(temp) by zone.
    let snapshot = db.snapshot();
    let readings = snapshot.get("readings").unwrap();
    println!("per-zone minimum temperature at time {} —", db.now());
    println!("  expiration time of the dashboard row under each mode:\n");
    println!(
        "  {:<6}{:>6}{:>18}{:>22}{:>14}",
        "zone", "min", "naive (Eq. 8)", "contributing (T. 1)", "exact (ν)"
    );
    for (key, partition) in aggregate::partition(readings, &[0], db.now()) {
        let min = AggFunc::Min(1).apply(&partition).unwrap().unwrap();
        let mut texps = Vec::new();
        for mode in [AggMode::Naive, AggMode::Contributing, AggMode::Exact] {
            texps
                .push(aggregate::result_texp(&partition, AggFunc::Min(1), mode, db.now()).unwrap());
        }
        println!(
            "  {:<6}{:>6}{:>18}{:>22}{:>14}",
            key.attr(0).to_string(),
            min.to_string(),
            texps[0].to_string(),
            texps[1].to_string(),
            texps[2].to_string()
        );
    }

    // A dashboard as a materialised view, read over time: it stays exactly
    // right as readings lapse, with recomputation only on real changes.
    db.execute(
        "CREATE MATERIALIZED VIEW coldest AS
         SELECT zone, MIN(temp) FROM readings GROUP BY zone",
    )?;
    println!("\ndashboard over time:");
    for _ in 0..6 {
        db.tick(5);
        let rows = db.read_view("coldest")?;
        print!("  t={:<4}", db.now().to_string());
        if rows.is_empty() {
            println!("(no live readings)");
        } else {
            let mut cells: Vec<String> = rows
                .iter()
                .map(|(r, _)| format!("zone {} min {}", r.attr(0), r.attr(1)))
                .collect();
            cells.sort();
            println!("{}", cells.join(" | "));
        }
    }
    let stats = db.view_stats("coldest")?;
    println!(
        "\n  view reads: {}, recomputations: {} — the rest was pure local expiry",
        stats.reads, stats.recomputations
    );

    // Stale sensors: zones audited in the catalog but silent now.
    db.execute("CREATE TABLE zones (zone INT)")?;
    for z in 1..=3i64 {
        db.insert("zones", tuple![z], Time::INFINITY)?;
    }
    let silent = db.execute("SELECT zone FROM zones EXCEPT SELECT zone FROM readings")?;
    println!(
        "\nzones with no live readings at t={}: {:?}",
        db.now(),
        silent
            .rows()
            .unwrap()
            .iter()
            .map(|(r, _)| r.attr(0).clone())
            .collect::<Vec<_>>()
    );
    Ok(())
}
